//! # smart-insitu
//!
//! Facade crate for the Rust reproduction of **Smart** — *"a MapReduce-like
//! framework for in-situ scientific analytics"* (Wang, Agrawal, Bicer, Jiang;
//! SC 2015). It re-exports every subsystem of the workspace under one roof so
//! examples and downstream users can depend on a single crate.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-versus-measured record.

pub use smart_analytics as analytics;
pub use smart_baseline as baseline;
pub use smart_comm as comm;
pub use smart_core as core;
pub use smart_ft as ft;
pub use smart_memtrack as memtrack;
pub use smart_minispark as minispark;
pub use smart_pool as pool;
pub use smart_serve as serve;
pub use smart_sim as sim;
pub use smart_spill as spill;
pub use smart_wire as wire;

/// Convenience prelude pulling in the types almost every Smart program needs.
pub mod prelude {
    pub use smart_comm::{run_cluster, Communicator};
    pub use smart_core::{
        Analytics, Chunk, ComMap, Key, KeyMode, RedObj, SchedArgs, Scheduler, StepSpec,
    };
}
