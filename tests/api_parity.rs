//! T1 — API parity with the paper's Table 1.
//!
//! Exercises every runtime-provided function (1–9) and every user-
//! implemented function (1–7) of Table 1 through its Rust counterpart, so
//! a signature regression in any of them fails this suite.

use serde::{Deserialize, Serialize};
use smart_insitu::core::space::SpaceShared;
use smart_insitu::prelude::*;

/// Iterative reduction object in the k-means mold: a persistent `base`
/// (like a centroid) plus distributive fields (`acc`, `n`) that `merge`
/// combines and `post_combine` folds into the base and resets.
#[derive(Clone, Serialize, Deserialize, Default, Debug)]
struct Obj {
    base: f64,
    acc: f64,
    n: u64,
    post_combines: u64,
}

impl RedObj for Obj {
    // user fn (trigger extension of §4)
    fn trigger(&self) -> bool {
        false
    }
}

struct Full;

impl Analytics for Full {
    type In = f64;
    type Red = Obj;
    type Out = f64;
    type Extra = f64;

    // user fn 1: gen_key
    fn gen_key(&self, _c: &Chunk, _d: &[f64], _m: &ComMap<Obj>) -> Key {
        0
    }

    // user fn 2: gen_keys
    fn gen_keys(&self, c: &Chunk, d: &[f64], m: &ComMap<Obj>, keys: &mut Vec<Key>) {
        keys.push(self.gen_key(c, d, m));
    }

    // user fn 3: accumulate (distributive fields only)
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Obj>) {
        let o = obj.as_mut().expect("seeded by process_extra_data");
        o.acc += d[c.local_start];
        o.n += 1;
    }

    // user fn 4: merge (distributive fields only, like Listing 4)
    fn merge(&self, red: &Obj, com: &mut Obj) {
        com.acc += red.acc;
        com.n += red.n;
    }

    // user fn 5: process_extra_data
    fn process_extra_data(&self, extra: Option<&f64>, com: &mut ComMap<Obj>) {
        com.insert(
            0,
            Obj { base: extra.copied().unwrap_or(0.0), acc: 0.0, n: 0, post_combines: 0 },
        );
    }

    // user fn 6: post_combine (fold + reset, like ClusterObj::update)
    fn post_combine(&self, com: &mut ComMap<Obj>) {
        if let Some(o) = com.get_mut(0) {
            o.base += o.acc;
            o.acc = 0.0;
            o.n = 0;
            o.post_combines += 1;
        }
    }

    // user fn 7: convert
    fn convert(&self, obj: &Obj, out: &mut f64) {
        *out = obj.base;
    }
}

/// Runtime fns 1 (SchedArgs) and 2 (Scheduler construction).
fn make_scheduler() -> Scheduler<Full> {
    // SchedArgs(num_threads, chunk_size, extra_data, num_iters)
    let args = SchedArgs::new(2, 1).with_extra(100.0).with_iters(2);
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    Scheduler::new(Full, args, pool).unwrap()
}

#[test]
fn runtime_fn_1_2_5_construct_and_run() {
    let mut s = make_scheduler();
    let data = vec![1.0; 10];
    let mut out = [0.0f64];
    // runtime fn 5: run (single key, time sharing)
    s.run(&data, &mut out).unwrap();
    // extra 100 + 2 iterations × 10 elements
    assert_eq!(out[0], 120.0);
}

#[test]
fn runtime_fn_6_run2_multi_key() {
    let mut s = make_scheduler();
    let data = vec![2.0; 5];
    let mut out = [0.0f64];
    // runtime fn 6: run2 (multi key via gen_keys)
    s.run2(&data, &mut out).unwrap();
    assert_eq!(out[0], 120.0);
}

#[test]
fn runtime_fn_3_set_global_combination() {
    smart_insitu::comm::run_cluster(2, |mut comm| {
        let mut s = make_scheduler();
        // runtime fn 3: enable/disable global combination
        s.set_global_combination(false);
        let data = vec![comm.rank() as f64 + 1.0; 4];
        let mut out = [0.0f64];
        s.run_dist(&mut comm, &data, &mut out).unwrap();
        // local only: extra + 2 iters × (rank+1)×4
        assert_eq!(out[0], 100.0 + 2.0 * 4.0 * (comm.rank() as f64 + 1.0));
    });
}

#[test]
fn runtime_fn_4_get_combination_map() {
    let mut s = make_scheduler();
    let data = vec![3.0; 4];
    s.run(&data, &mut []).unwrap();
    // runtime fn 4: retrieve the combination map
    let map = s.combination_map();
    let obj = map.get(0).expect("key 0");
    assert_eq!(obj.base, 100.0 + 2.0 * 12.0);
    // post_combine ran once per iteration (user fn 6)
    assert_eq!(obj.post_combines, 2);
}

#[test]
fn runtime_fns_7_8_9_space_sharing_feed_and_run() {
    let mut shared = SpaceShared::new(make_scheduler(), 2);
    let feeder = shared.feeder();
    // runtime fn 7: feed
    feeder.feed(&[1.0, 2.0, 3.0]).unwrap();
    feeder.feed(&[4.0]).unwrap();
    feeder.close();
    let mut out = [0.0f64];
    // runtime fn 8: run (space sharing, single key)
    assert!(shared.run_step(&mut out).unwrap());
    // runtime fn 9: run2 (space sharing, multi key)
    assert!(shared.run2_step(&mut out).unwrap());
    assert!(!shared.run_step(&mut out).unwrap());
    // extra 100 + 2 iters × (6 + 4)
    assert_eq!(out[0], 120.0);
}

#[test]
fn chunk_preserves_positional_information() {
    // §5.8: the unit chunk carries array positions (local + global).
    let c = Chunk { local_start: 3, global_start: 1003, len: 2 };
    let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
    assert_eq!(c.slice(&data), &[3.0, 4.0]);
    assert_eq!(c.global_unit(), 501);
}
