//! T1 — API parity with the paper's Table 1.
//!
//! Exercises every runtime-provided function (1–9) and every user-
//! implemented function (1–7) of Table 1 through its Rust counterpart, so
//! a signature regression in any of them fails this suite.

use serde::{Deserialize, Serialize};
use smart_insitu::core::space::SpaceShared;
use smart_insitu::prelude::*;

/// Iterative reduction object in the k-means mold: a persistent `base`
/// (like a centroid) plus distributive fields (`acc`, `n`) that `merge`
/// combines and `post_combine` folds into the base and resets.
#[derive(Clone, Serialize, Deserialize, Default, Debug)]
struct Obj {
    base: f64,
    acc: f64,
    n: u64,
    post_combines: u64,
}

impl RedObj for Obj {
    // user fn (trigger extension of §4)
    fn trigger(&self) -> bool {
        false
    }
}

struct Full;

impl Analytics for Full {
    type In = f64;
    type Red = Obj;
    type Out = f64;
    type Extra = f64;

    // user fn 1: gen_key
    fn gen_key(&self, _c: &Chunk, _d: &[f64], _m: &ComMap<Obj>) -> Key {
        0
    }

    // user fn 2: gen_keys
    fn gen_keys(&self, c: &Chunk, d: &[f64], m: &ComMap<Obj>, keys: &mut Vec<Key>) {
        keys.push(self.gen_key(c, d, m));
    }

    // user fn 3: accumulate (distributive fields only)
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Obj>) {
        let o = obj.as_mut().expect("seeded by process_extra_data");
        o.acc += d[c.local_start];
        o.n += 1;
    }

    // user fn 4: merge (distributive fields only, like Listing 4)
    fn merge(&self, red: &Obj, com: &mut Obj) {
        com.acc += red.acc;
        com.n += red.n;
    }

    // user fn 5: process_extra_data
    fn process_extra_data(&self, extra: Option<&f64>, com: &mut ComMap<Obj>) {
        com.insert(
            0,
            Obj { base: extra.copied().unwrap_or(0.0), acc: 0.0, n: 0, post_combines: 0 },
        );
    }

    // user fn 6: post_combine (fold + reset, like ClusterObj::update)
    fn post_combine(&self, com: &mut ComMap<Obj>) {
        if let Some(o) = com.get_mut(0) {
            o.base += o.acc;
            o.acc = 0.0;
            o.n = 0;
            o.post_combines += 1;
        }
    }

    // user fn 7: convert
    fn convert(&self, obj: &Obj, out: &mut f64) {
        *out = obj.base;
    }
}

/// Runtime fns 1 (SchedArgs) and 2 (Scheduler construction).
fn make_scheduler() -> Scheduler<Full> {
    // SchedArgs(num_threads, chunk_size, extra_data, num_iters)
    let args = SchedArgs::new(2, 1).with_extra(100.0).with_iters(2);
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    Scheduler::new(Full, args, pool).unwrap()
}

#[test]
fn runtime_fn_1_2_5_construct_and_run() {
    let mut s = make_scheduler();
    let data = vec![1.0; 10];
    let mut out = [0.0f64];
    // runtime fn 5: run (single key, time sharing)
    s.run(&data, &mut out).unwrap();
    // extra 100 + 2 iterations × 10 elements
    assert_eq!(out[0], 120.0);
}

#[test]
fn runtime_fn_6_run2_multi_key() {
    let mut s = make_scheduler();
    let data = vec![2.0; 5];
    let mut out = [0.0f64];
    // runtime fn 6: run2 (multi key via gen_keys)
    s.run2(&data, &mut out).unwrap();
    assert_eq!(out[0], 120.0);
}

#[test]
fn runtime_fn_3_set_global_combination() {
    smart_insitu::comm::run_cluster(2, |mut comm| {
        let mut s = make_scheduler();
        // runtime fn 3: enable/disable global combination
        s.set_global_combination(false);
        let data = vec![comm.rank() as f64 + 1.0; 4];
        let mut out = [0.0f64];
        s.run_dist(&mut comm, &data, &mut out).unwrap();
        // local only: extra + 2 iters × (rank+1)×4
        assert_eq!(out[0], 100.0 + 2.0 * 4.0 * (comm.rank() as f64 + 1.0));
    });
}

#[test]
fn runtime_fn_4_get_combination_map() {
    let mut s = make_scheduler();
    let data = vec![3.0; 4];
    s.run(&data, &mut []).unwrap();
    // runtime fn 4: retrieve the combination map
    let map = s.combination_map();
    let obj = map.get(0).expect("key 0");
    assert_eq!(obj.base, 100.0 + 2.0 * 12.0);
    // post_combine ran once per iteration (user fn 6)
    assert_eq!(obj.post_combines, 2);
}

#[test]
fn runtime_fns_7_8_9_space_sharing_feed_and_run() {
    let mut shared = SpaceShared::new(make_scheduler(), 2);
    let feeder = shared.feeder();
    // runtime fn 7: feed
    feeder.feed(&[1.0, 2.0, 3.0]).unwrap();
    feeder.feed(&[4.0]).unwrap();
    feeder.close();
    let mut out = [0.0f64];
    // runtime fn 8: run (space sharing, single key)
    assert!(shared.run_step(&mut out).unwrap());
    // runtime fn 9: run2 (space sharing, multi key)
    assert!(shared.run2_step(&mut out).unwrap());
    assert!(!shared.run_step(&mut out).unwrap());
    // extra 100 + 2 iters × (6 + 4)
    assert_eq!(out[0], 120.0);
}

#[test]
fn chunk_preserves_positional_information() {
    // §5.8: the unit chunk carries array positions (local + global).
    let c = Chunk { local_start: 3, global_start: 1003, len: 2 };
    let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
    assert_eq!(c.slice(&data), &[3.0, 4.0]);
    assert_eq!(c.global_unit(), 501);
}

// ---------------------------------------------------------------------------
// Golden equivalence: every legacy entry point is a one-line delegation onto
// `Scheduler::execute`, so each shim must produce a *bit-identical*
// combination map (and output buffer) to the equivalent `StepSpec` +
// `execute` call — across all three `CombineStrategy` values.
// ---------------------------------------------------------------------------

use smart_insitu::core::pipeline::Pipeline;
use smart_insitu::core::CombineStrategy;

const STRATEGIES: [CombineStrategy; 3] =
    [CombineStrategy::Serial, CombineStrategy::Tree, CombineStrategy::Sharded];

/// Wire-serialize a scheduler's combination map in canonical (sorted) order
/// — the bit-identical comparison form.
fn map_bytes<A: Analytics>(s: &Scheduler<A>) -> Vec<u8> {
    smart_insitu::wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap()
}

fn strat_scheduler(strategy: CombineStrategy) -> Scheduler<Full> {
    let mut s = make_scheduler();
    s.set_combine_strategy(strategy);
    s
}

#[test]
fn golden_local_shims_match_execute() {
    let data: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
    for strategy in STRATEGIES {
        for key_mode in [KeyMode::Single, KeyMode::Multi] {
            let mut legacy = strat_scheduler(strategy);
            let mut core = strat_scheduler(strategy);
            let (mut a, mut b) = ([0.0f64], [0.0f64]);
            match key_mode {
                KeyMode::Single => legacy.run(&data, &mut a).unwrap(),
                KeyMode::Multi => legacy.run2(&data, &mut a).unwrap(),
            }
            core.execute(StepSpec::new(&[(0, &data)]).with_key_mode(key_mode), &mut b).unwrap();
            assert_eq!(a, b, "{strategy:?} {key_mode:?} output diverged");
            assert_eq!(
                map_bytes(&legacy),
                map_bytes(&core),
                "{strategy:?} {key_mode:?} map diverged"
            );
        }
    }
}

#[test]
fn golden_dist_shims_match_execute() {
    for strategy in STRATEGIES {
        smart_insitu::comm::run_cluster(2, move |mut comm| {
            let data: Vec<f64> = (0..24).map(|i| ((i * (comm.rank() + 3)) % 5) as f64).collect();

            // run_dist / run2_dist.
            for key_mode in [KeyMode::Single, KeyMode::Multi] {
                let mut legacy = strat_scheduler(strategy);
                let mut core = strat_scheduler(strategy);
                let (mut a, mut b) = ([0.0f64], [0.0f64]);
                match key_mode {
                    KeyMode::Single => legacy.run_dist(&mut comm, &data, &mut a).unwrap(),
                    KeyMode::Multi => legacy.run2_dist(&mut comm, &data, &mut a).unwrap(),
                }
                core.execute(
                    StepSpec::new(&[(0, &data)]).with_key_mode(key_mode).with_comm(Some(&mut comm)),
                    &mut b,
                )
                .unwrap();
                assert_eq!(a, b, "{strategy:?} {key_mode:?} dist output diverged");
                assert_eq!(
                    map_bytes(&legacy),
                    map_bytes(&core),
                    "{strategy:?} {key_mode:?} dist map diverged"
                );
            }

            // run_parts_dist / run2_parts_dist over two partitions.
            let parts = [(0usize, &data[..12]), (100, &data[12..])];
            for key_mode in [KeyMode::Single, KeyMode::Multi] {
                let mut legacy = strat_scheduler(strategy);
                let mut core = strat_scheduler(strategy);
                let (mut a, mut b) = ([0.0f64], [0.0f64]);
                match key_mode {
                    KeyMode::Single => legacy.run_parts_dist(&mut comm, &parts, &mut a).unwrap(),
                    KeyMode::Multi => legacy.run2_parts_dist(&mut comm, &parts, &mut a).unwrap(),
                }
                core.execute(
                    StepSpec::new(&parts).with_key_mode(key_mode).with_comm(Some(&mut comm)),
                    &mut b,
                )
                .unwrap();
                assert_eq!(a, b, "{strategy:?} {key_mode:?} parts output diverged");
                assert_eq!(
                    map_bytes(&legacy),
                    map_bytes(&core),
                    "{strategy:?} {key_mode:?} parts map diverged"
                );
            }
        });
    }
}

#[test]
fn golden_space_step_shims_match_execute() {
    let steps: Vec<Vec<f64>> =
        (0..3).map(|t| (0..16).map(|i| ((i + t * 5) % 4) as f64).collect()).collect();
    for strategy in STRATEGIES {
        for key_mode in [KeyMode::Single, KeyMode::Multi] {
            let mut shared = SpaceShared::new(strat_scheduler(strategy), 4);
            let feeder = shared.feeder();
            for step in &steps {
                feeder.feed(step).unwrap();
            }
            feeder.close();
            let mut a = [0.0f64];
            loop {
                let more = match key_mode {
                    KeyMode::Single => shared.run_step(&mut a).unwrap(),
                    KeyMode::Multi => shared.run2_step(&mut a).unwrap(),
                };
                if !more {
                    break;
                }
            }

            let mut core = strat_scheduler(strategy);
            let mut b = [0.0f64];
            for step in &steps {
                core.execute(StepSpec::new(&[(0, step)]).with_key_mode(key_mode), &mut b).unwrap();
            }
            assert_eq!(a, b, "{strategy:?} {key_mode:?} space output diverged");
            assert_eq!(
                map_bytes(shared.scheduler()),
                map_bytes(&core),
                "{strategy:?} {key_mode:?} space map diverged"
            );
        }
    }
}

#[test]
fn golden_space_dist_step_shims_match_execute() {
    for strategy in STRATEGIES {
        smart_insitu::comm::run_cluster(2, move |mut comm| {
            let steps: Vec<Vec<f64>> = (0..2)
                .map(|t| (0..8).map(|i| ((i + t + comm.rank()) % 3) as f64).collect())
                .collect();
            for key_mode in [KeyMode::Single, KeyMode::Multi] {
                let mut shared = SpaceShared::new(strat_scheduler(strategy), 4);
                let feeder = shared.feeder();
                for step in &steps {
                    feeder.feed(step).unwrap();
                }
                feeder.close();
                let mut a = [0.0f64];
                loop {
                    let more = match key_mode {
                        KeyMode::Single => shared.run_step_dist(&mut comm, &mut a).unwrap(),
                        KeyMode::Multi => shared.run2_step_dist(&mut comm, &mut a).unwrap(),
                    };
                    if !more {
                        break;
                    }
                }

                let mut core = strat_scheduler(strategy);
                let mut b = [0.0f64];
                for step in &steps {
                    core.execute(
                        StepSpec::new(&[(0, step)])
                            .with_key_mode(key_mode)
                            .with_comm(Some(&mut comm)),
                        &mut b,
                    )
                    .unwrap();
                }
                assert_eq!(a, b, "{strategy:?} {key_mode:?} space-dist output diverged");
                assert_eq!(
                    map_bytes(shared.scheduler()),
                    map_bytes(&core),
                    "{strategy:?} {key_mode:?} space-dist map diverged"
                );
            }
        });
    }
}

/// Pipeline stage 1: per-element doubling keyed by local position.
#[derive(Clone, Serialize, Deserialize, Default)]
struct Val {
    v: f64,
    done: bool,
}
impl RedObj for Val {
    fn trigger(&self) -> bool {
        self.done
    }
}
struct Double;
impl Analytics for Double {
    type In = f64;
    type Red = Val;
    type Out = f64;
    type Extra = ();
    fn gen_keys(&self, c: &Chunk, _d: &[f64], _m: &ComMap<Val>, keys: &mut Vec<Key>) {
        keys.push(c.local_start as Key);
    }
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Val>) {
        *obj = Some(Val { v: 2.0 * d[c.local_start], done: true });
    }
    fn merge(&self, red: &Val, com: &mut Val) {
        com.v = red.v;
    }
    fn convert(&self, obj: &Val, out: &mut f64) {
        *out = obj.v;
    }
}

/// Pipeline stage 2: global sum.
#[derive(Clone, Serialize, Deserialize, Default)]
struct Sum {
    total: f64,
}
impl RedObj for Sum {}
struct Total;
impl Analytics for Total {
    type In = f64;
    type Red = Sum;
    type Out = f64;
    type Extra = ();
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Sum>) {
        obj.get_or_insert_with(Sum::default).total += d[c.local_start];
    }
    fn merge(&self, red: &Sum, com: &mut Sum) {
        com.total += red.total;
    }
    fn convert(&self, obj: &Sum, out: &mut f64) {
        *out = obj.total;
    }
}

fn stage_scheduler<A: Analytics>(analytics: A, strategy: CombineStrategy) -> Scheduler<A> {
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    let mut s = Scheduler::new(analytics, SchedArgs::new(2, 1), pool).unwrap();
    s.set_combine_strategy(strategy);
    s
}

#[test]
fn golden_pipeline_matches_execute() {
    let data: Vec<f64> = (0..30).map(|i| (i % 9) as f64).collect();
    for strategy in STRATEGIES {
        let mut pipeline = Pipeline::new(
            stage_scheduler(Double, strategy),
            stage_scheduler(Total, strategy),
            KeyMode::Multi,
            KeyMode::Single,
            data.len(),
        );
        let mut a = [0.0f64];
        pipeline.run(&data, &mut a).unwrap();

        // The equivalent two execute calls: stage one local-only into an
        // intermediate buffer, stage two over that buffer.
        let mut first = stage_scheduler(Double, strategy);
        first.set_global_combination(false);
        let mut second = stage_scheduler(Total, strategy);
        let mut intermediate = vec![0.0f64; data.len()];
        first
            .execute(StepSpec::new(&[(0, &data)]).with_key_mode(KeyMode::Multi), &mut intermediate)
            .unwrap();
        let mut b = [0.0f64];
        second.execute(StepSpec::new(&[(0, &intermediate)]), &mut b).unwrap();

        assert_eq!(a, b, "{strategy:?} pipeline output diverged");
        assert_eq!(intermediate, pipeline.intermediate(), "{strategy:?} intermediate diverged");
        assert_eq!(
            map_bytes(pipeline.second()),
            map_bytes(&second),
            "{strategy:?} pipeline map diverged"
        );
    }
}

#[test]
fn golden_pipeline_dist_matches_execute() {
    for strategy in STRATEGIES {
        smart_insitu::comm::run_cluster(2, move |mut comm| {
            let data: Vec<f64> = (0..20).map(|i| ((i + comm.rank() * 4) % 6) as f64).collect();
            let mut pipeline = Pipeline::new(
                stage_scheduler(Double, strategy),
                stage_scheduler(Total, strategy),
                KeyMode::Multi,
                KeyMode::Single,
                data.len(),
            );
            let mut a = [0.0f64];
            pipeline.run_dist(&mut comm, &data, &mut a).unwrap();

            let mut first = stage_scheduler(Double, strategy);
            first.set_global_combination(false);
            let mut second = stage_scheduler(Total, strategy);
            let mut intermediate = vec![0.0f64; data.len()];
            first
                .execute(
                    StepSpec::new(&[(0, &data)])
                        .with_key_mode(KeyMode::Multi)
                        .with_comm(Some(&mut comm)),
                    &mut intermediate,
                )
                .unwrap();
            let mut b = [0.0f64];
            second
                .execute(StepSpec::new(&[(0, &intermediate)]).with_comm(Some(&mut comm)), &mut b)
                .unwrap();

            assert_eq!(a, b, "{strategy:?} dist pipeline output diverged");
            assert_eq!(
                map_bytes(pipeline.second()),
                map_bytes(&second),
                "{strategy:?} dist pipeline map diverged"
            );
        });
    }
}

// ---------------------------------------------------------------------------
// SpaceShared drain symmetry: multi-key windowed analytics produces the same
// outputs, step count, and combination map whether the stream is consumed
// step-by-step or drained with the `run*_to_end` variants.
// ---------------------------------------------------------------------------

/// Windowed multi-key analytics: elements fold into `global_index / 4`
/// windows, each window triggering (early emission) once its 4 elements
/// arrived.
#[derive(Clone, Serialize, Deserialize, Default)]
struct Win {
    sum: f64,
    n: u64,
}
impl RedObj for Win {
    fn trigger(&self) -> bool {
        self.n >= 4
    }
}
struct WindowSum;
impl Analytics for WindowSum {
    type In = f64;
    type Red = Win;
    type Out = f64;
    type Extra = ();
    fn gen_keys(&self, c: &Chunk, _d: &[f64], _m: &ComMap<Win>, keys: &mut Vec<Key>) {
        keys.push((c.global_start / 4) as Key);
    }
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Win>) {
        let o = obj.get_or_insert_with(Win::default);
        o.sum += d[c.local_start];
        o.n += 1;
    }
    fn merge(&self, red: &Win, com: &mut Win) {
        com.sum += red.sum;
        com.n += red.n;
    }
    fn convert(&self, obj: &Win, out: &mut f64) {
        *out = obj.sum;
    }
}

fn windowed_space(steps: &[Vec<f64>]) -> SpaceShared<WindowSum> {
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    let sched = Scheduler::new(WindowSum, SchedArgs::new(2, 1), pool).unwrap();
    let shared = SpaceShared::new(sched, steps.len());
    let feeder = shared.feeder();
    for step in steps {
        feeder.feed(step).unwrap();
    }
    feeder.close();
    shared
}

#[test]
fn windowed_drain_step_wise_equals_to_end() {
    let steps: Vec<Vec<f64>> =
        (0..3).map(|t| (0..16).map(|i| (i + t * 16) as f64).collect()).collect();
    let mut step_wise = windowed_space(&steps);
    let mut a = vec![0.0f64; 4];
    let mut count_a = 0;
    while step_wise.run2_step(&mut a).unwrap() {
        count_a += 1;
    }

    let mut to_end = windowed_space(&steps);
    let mut b = vec![0.0f64; 4];
    let count_b = to_end.run2_to_end(&mut b).unwrap();

    assert_eq!(count_a, count_b);
    assert_eq!(count_b, steps.len());
    assert_eq!(a, b);
    assert_eq!(map_bytes(step_wise.scheduler()), map_bytes(to_end.scheduler()));
}

#[test]
fn windowed_drain_dist_step_wise_equals_to_end() {
    smart_insitu::comm::run_cluster(2, |mut comm| {
        let steps: Vec<Vec<f64>> =
            (0..2).map(|t| (0..8).map(|i| (i + t * 8 + comm.rank()) as f64).collect()).collect();
        let mut step_wise = windowed_space(&steps);
        let mut a = vec![0.0f64; 2];
        let mut count_a = 0;
        while step_wise.run2_step_dist(&mut comm, &mut a).unwrap() {
            count_a += 1;
        }

        let mut to_end = windowed_space(&steps);
        let mut b = vec![0.0f64; 2];
        let count_b = to_end.run2_to_end_dist(&mut comm, &mut b).unwrap();

        assert_eq!(count_a, count_b);
        assert_eq!(a, b);
        assert_eq!(map_bytes(step_wise.scheduler()), map_bytes(to_end.scheduler()));
    });
}

#[test]
fn single_key_dist_drain_to_end_counts_steps() {
    smart_insitu::comm::run_cluster(2, |mut comm| {
        let steps: Vec<Vec<f64>> = (0..3).map(|_| vec![1.0; 8]).collect();
        let pool = smart_insitu::pool::shared_pool(1).unwrap();
        let sched = Scheduler::new(Total, SchedArgs::new(1, 1), pool).unwrap();
        let shared = SpaceShared::new(sched, steps.len());
        let feeder = shared.feeder();
        for step in &steps {
            feeder.feed(step).unwrap();
        }
        feeder.close();
        let mut shared = shared;
        let mut out = [0.0f64];
        let count = shared.run_to_end_dist(&mut comm, &mut out).unwrap();
        assert_eq!(count, 3);
        // 2 ranks × 3 steps × 8 ones, globally combined.
        assert_eq!(out[0], 48.0);
    });
}
