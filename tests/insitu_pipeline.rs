//! End-to-end in-situ pipelines: real simulations feeding real analytics
//! across a multi-rank cluster, validated against single-rank oracles.

use smart_insitu::analytics::{Histogram, KMeans, MovingAverage, MutualInformation};
use smart_insitu::comm::run_cluster;
use smart_insitu::prelude::*;
use smart_insitu::sim::{Heat3D, MiniLulesh};

/// Heat3D + histogram over 3 ranks equals the serial pipeline exactly.
#[test]
fn heat3d_histogram_multirank_matches_serial() {
    let (nx, ny, nz, steps) = (12, 12, 12, 4);

    // Serial oracle.
    let mut sim = Heat3D::serial(nx, ny, nz, 0.1);
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    let mut smart =
        Scheduler::new(Histogram::new(0.0, 100.0, 16), SchedArgs::new(1, 1), pool).unwrap();
    let mut expected = vec![0u64; 16];
    for _ in 0..steps {
        let data = sim.step_serial();
        smart.run(data, &mut expected).unwrap();
    }

    // 3-rank in-situ pipeline.
    let results = run_cluster(3, |mut comm| {
        let mut sim = Heat3D::new(nx, ny, nz, 0.1, comm.rank(), comm.size());
        let pool = smart_insitu::pool::shared_pool(2).unwrap();
        let mut smart =
            Scheduler::new(Histogram::new(0.0, 100.0, 16), SchedArgs::new(2, 1), pool).unwrap();
        let mut out = vec![0u64; 16];
        for _ in 0..steps {
            let data = sim.step(&mut comm).unwrap();
            smart.run_dist(&mut comm, data, &mut out).unwrap();
        }
        out
    });

    for (rank, out) in results.iter().enumerate() {
        assert_eq!(out, &expected, "rank {rank}");
    }
}

/// In-situ k-means on Heat3D: every rank converges to identical centroids
/// that equal a serial run over the gathered data.
#[test]
fn heat3d_kmeans_tracks_identically_across_ranks() {
    let (nx, ny, nz) = (8, 8, 8);
    let (k, dims, iters) = (3, 4, 4);
    let init: Vec<f64> = (0..k * dims).map(|i| i as f64 * 7.0).collect();

    // Serial oracle over the full field.
    let mut sim = Heat3D::serial(nx, ny, nz, 0.1);
    let data = sim.step_serial().to_vec();
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    let args = SchedArgs::new(1, dims).with_extra(init.clone()).with_iters(iters);
    let mut smart = Scheduler::new(KMeans::new(k, dims), args, pool).unwrap();
    let mut expected = vec![Vec::new(); k];
    smart.run(&data, &mut expected).unwrap();

    let results = run_cluster(2, |mut comm| {
        let mut sim = Heat3D::new(nx, ny, nz, 0.1, comm.rank(), comm.size());
        let data = sim.step(&mut comm).unwrap().to_vec();
        let pool = smart_insitu::pool::shared_pool(1).unwrap();
        let args = SchedArgs::new(1, dims).with_extra(init.clone()).with_iters(iters);
        let mut smart = Scheduler::new(KMeans::new(k, dims), args, pool).unwrap();
        let mut out = vec![Vec::new(); k];
        smart.run_dist(&mut comm, &data, &mut out).unwrap();
        out
    });

    for out in &results {
        for (a, b) in out.iter().zip(&expected) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "{out:?} vs {expected:?}");
            }
        }
    }
}

/// Window analytics across rank boundaries: moving average with global
/// positional keys equals the oracle over the stitched field, including
/// windows spanning two ranks' partitions.
#[test]
fn lulesh_moving_average_window_spans_rank_boundaries() {
    let edge = 6;
    let window = 5;
    let ranks = 3;
    let total = edge * edge * edge * ranks;

    let results = run_cluster(ranks, |mut comm| {
        let mut sim = MiniLulesh::new(edge, 0.3, comm.rank(), comm.size());
        for _ in 0..3 {
            sim.step(&mut comm).unwrap();
        }
        let data = sim.output().to_vec();
        let offset = sim.partition_offset();
        let pool = smart_insitu::pool::shared_pool(2).unwrap();
        let args = SchedArgs::new(2, 1).with_partition(offset, total);
        let mut smart = Scheduler::new(MovingAverage::new(window, total), args, pool).unwrap();
        let mut out = vec![f64::NAN; total];
        smart.run2_dist(&mut comm, &data, &mut out).unwrap();
        (offset, data, out)
    });

    // Stitch the global field and compute the oracle.
    let mut field = vec![0.0f64; total];
    for (offset, data, _) in &results {
        field[*offset..offset + data.len()].copy_from_slice(data);
    }
    let half = window / 2;
    let oracle: Vec<f64> = (0..total)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(total - 1);
            field[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect();

    // Each rank must hold correct values for every key its partition
    // touches (early-emitted interior keys + residual boundary keys).
    for (offset, data, out) in &results {
        let lo = offset.saturating_sub(half);
        let hi = (offset + data.len() - 1 + half).min(total - 1);
        for key in lo..=hi {
            assert!(
                (out[key] - oracle[key]).abs() < 1e-9,
                "key {key} on rank owning offset {offset}: {} vs {}",
                out[key],
                oracle[key]
            );
        }
    }
}

/// The mutual-information pipeline: a real simulated field against a
/// lagged copy of itself has high MI; against white noise, near-zero.
#[test]
fn mutual_information_pipeline_detects_correlation() {
    let mut sim = Heat3D::serial(10, 10, 10, 0.1);
    for _ in 0..5 {
        sim.step_serial();
    }
    let field = sim.output().to_vec();
    let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9;

    let mi_of = |pairs: Vec<f64>| {
        let app = MutualInformation::new((lo, hi, 8), (lo, hi, 8));
        let pool = smart_insitu::pool::shared_pool(2).unwrap();
        let mut s = Scheduler::new(app.clone(), SchedArgs::new(2, 2), pool).unwrap();
        s.run(&pairs, &mut []).unwrap();
        app.mutual_information(s.combination_map())
    };

    // Self-pairs: (x_i, x_i) — maximal dependence, I = H(X).
    let correlated: Vec<f64> = field.iter().flat_map(|&x| [x, x]).collect();
    // Independent pairs: the field against value-range uniform noise
    // (deterministic Weyl sequence).
    let independent: Vec<f64> = field
        .iter()
        .enumerate()
        .flat_map(|(i, &a)| {
            let noise = lo + (hi - lo) * ((i as f64 * 0.6180339887498949) % 1.0);
            [a, noise]
        })
        .collect();

    let mi_corr = mi_of(correlated);
    let mi_indep = mi_of(independent);
    assert!(mi_corr > 3.0 * mi_indep.max(0.02), "corr {mi_corr} vs independent {mi_indep}");
}
