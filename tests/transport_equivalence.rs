//! PR 8 acceptance: the transport backend is invisible to results. Every
//! deployment that moves bytes between ranks — distributed time sharing,
//! the in-transit pipeline, the multi-tenant service tier, and self-healing
//! fault recovery — must produce **bit-identical** canonical map bytes on
//! the in-process channel mesh, TCP loopback, and Unix domain sockets.
//! Integer-valued inputs keep every f64 merge exact, so the comparisons
//! really are byte equality.

use smart_insitu::analytics::{Histogram, HyperLogLog, Moments};
use smart_insitu::comm::{run_cluster_with, CommConfig, StreamConfig, TransportKind};
use smart_insitu::core::in_transit::{run_in_transit, InTransitConfig, Producer, Topology};
use smart_insitu::core::space::SpaceShared;
use smart_insitu::core::{Analytics, KeyMode, SchedArgs, Scheduler};
use smart_insitu::ft::{run_in_transit_healing, FaultPlan, FtProducer};
use smart_insitu::pool::shared_pool;
use smart_insitu::serve::{
    run_in_transit_serve, CoalesceKey, JobSpec, JobStepResult, Registry, RegistryConfig,
    ServeDriver, TenantQuota,
};

const BACKENDS: [(&str, TransportKind); 3] = [
    ("inproc", TransportKind::InProcess),
    ("tcp", TransportKind::Tcp),
    ("uds", TransportKind::Uds),
];

const PRODUCERS: usize = 4;
const STAGERS: usize = 2;
const PART: usize = 16;
const STEPS: usize = 3;
const BUCKETS: usize = 24;

/// Tight enough that even the 24-bucket shells cross their share and
/// drain to sorted on-disk runs (PR 10's spilling shuffle).
const SPILL_BUDGET: usize = 256;

fn comm_cfg(kind: TransportKind) -> CommConfig {
    CommConfig { transport: Some(kind), ..CommConfig::default() }
}

fn transit_cfg(kind: TransportKind) -> InTransitConfig {
    InTransitConfig::with_window(2).with_comm(comm_cfg(kind))
}

fn element(t: usize, p: usize, i: usize) -> f64 {
    ((t * 31 + p * 7 + i) % 10) as f64
}

fn partition(t: usize, p: usize) -> Vec<f64> {
    (0..PART).map(|i| element(t, p, i)).collect()
}

fn hist_sched(threads: usize) -> Scheduler<Histogram> {
    let pool = shared_pool(threads).unwrap();
    Scheduler::new(Histogram::new(0.0, 10.0, BUCKETS), SchedArgs::new(threads, 1), pool).unwrap()
}

fn map_bytes<A: Analytics>(s: &Scheduler<A>) -> Vec<u8> {
    smart_insitu::wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap()
}

/// Distributed time sharing, in-transit staging, and (comm-free control)
/// space sharing of the same histogram, on one backend.
fn placements_on(kind: TransportKind) -> [Vec<u8>; 3] {
    // Distributed time sharing: one rank per producer.
    let time = {
        let per_rank = run_cluster_with(PRODUCERS, comm_cfg(kind), |mut comm| {
            let mut s = hist_sched(2);
            let mut out = vec![0u64; BUCKETS];
            for t in 0..STEPS {
                let data = partition(t, comm.rank());
                s.run_dist(&mut comm, &data, &mut out).unwrap();
            }
            map_bytes(&s)
        });
        for rank in 1..per_rank.len() {
            assert_eq!(per_rank[rank], per_rank[0], "time-sharing rank {rank} diverged");
        }
        per_rank.into_iter().next().unwrap()
    };

    // Space sharing moves no inter-rank bytes — it anchors the comparison.
    let space = {
        let mut shared = SpaceShared::new(hist_sched(2), 2);
        let feeder = shared.feeder();
        let producer = std::thread::spawn(move || {
            for t in 0..STEPS {
                let step: Vec<f64> = (0..PRODUCERS).flat_map(|p| partition(t, p)).collect();
                feeder.feed(&step).unwrap();
            }
            feeder.close();
        });
        let mut out = vec![0u64; BUCKETS];
        while shared.run_step(&mut out).unwrap() {}
        producer.join().unwrap();
        map_bytes(shared.scheduler())
    };

    // In transit: producers stream partitions to staging ranks over `kind`.
    let transit = {
        let outcome = run_in_transit(
            Topology::new(PRODUCERS, STAGERS),
            transit_cfg(kind),
            KeyMode::Single,
            |prod: &mut Producer<f64>| {
                for t in 0..STEPS {
                    prod.feed(prod.index() * PART, &partition(t, prod.index()))?;
                }
                Ok(())
            },
            |_s| Ok((hist_sched(1), vec![0u64; BUCKETS])),
        );
        let (_producers, stagers) = outcome.into_result().unwrap();
        for s in 1..stagers.len() {
            assert_eq!(stagers[s].map_bytes, stagers[0].map_bytes, "stager {s} diverged");
        }
        stagers.into_iter().next().unwrap().map_bytes
    };

    [time, space, transit]
}

#[test]
fn three_placements_are_bit_identical_across_backends() {
    let reference = placements_on(TransportKind::InProcess);
    assert_eq!(reference[0], reference[1], "time vs space sharing");
    assert_eq!(reference[0], reference[2], "time sharing vs in transit");
    for &(name, kind) in &BACKENDS[1..] {
        let got = placements_on(kind);
        assert_eq!(got, reference, "backend {name} diverged from inproc");
    }
}

/// A histogram scheduler whose reduction spills: shells drain to sorted
/// runs and the combination map lives on disk between steps.
fn spilled_hist_sched(threads: usize) -> Scheduler<Histogram> {
    let mut s = hist_sched(threads);
    s.set_spill_budget(Some(SPILL_BUDGET)).unwrap();
    s
}

/// The same three placements with the spilling shuffle engaged on every
/// rank/stager; canonical bytes come off the on-disk combination runs.
fn spilled_placements_on(kind: TransportKind) -> [Vec<u8>; 3] {
    let time = {
        let per_rank = run_cluster_with(PRODUCERS, comm_cfg(kind), |mut comm| {
            let mut s = spilled_hist_sched(2);
            let mut out = vec![0u64; BUCKETS];
            for t in 0..STEPS {
                let data = partition(t, comm.rank());
                s.run_dist(&mut comm, &data, &mut out).unwrap();
            }
            // The persistent map must really be out of core.
            assert!(s.combination_map().is_empty(), "spilled map must not be resident");
            s.canonical_map_bytes().unwrap()
        });
        for rank in 1..per_rank.len() {
            assert_eq!(per_rank[rank], per_rank[0], "spilled time-sharing rank {rank} diverged");
        }
        per_rank.into_iter().next().unwrap()
    };

    let space = {
        let mut shared = SpaceShared::new(spilled_hist_sched(2), 2);
        let feeder = shared.feeder();
        let producer = std::thread::spawn(move || {
            for t in 0..STEPS {
                let step: Vec<f64> = (0..PRODUCERS).flat_map(|p| partition(t, p)).collect();
                feeder.feed(&step).unwrap();
            }
            feeder.close();
        });
        let mut out = vec![0u64; BUCKETS];
        while shared.run_step(&mut out).unwrap() {}
        producer.join().unwrap();
        shared.scheduler().canonical_map_bytes().unwrap()
    };

    let transit = {
        let outcome = run_in_transit(
            Topology::new(PRODUCERS, STAGERS),
            transit_cfg(kind),
            KeyMode::Single,
            |prod: &mut Producer<f64>| {
                for t in 0..STEPS {
                    prod.feed(prod.index() * PART, &partition(t, prod.index()))?;
                }
                Ok(())
            },
            |_s| Ok((spilled_hist_sched(1), vec![0u64; BUCKETS])),
        );
        let (_producers, stagers) = outcome.into_result().unwrap();
        for s in 1..stagers.len() {
            assert_eq!(stagers[s].map_bytes, stagers[0].map_bytes, "spilled stager {s} diverged");
        }
        stagers.into_iter().next().unwrap().map_bytes
    };

    [time, space, transit]
}

#[test]
fn spilled_placements_are_bit_identical_to_the_resident_reference() {
    let resident = placements_on(TransportKind::InProcess);
    for &(name, kind) in &BACKENDS[..2] {
        let spilled = spilled_placements_on(kind);
        for (placement, bytes) in ["time", "space", "transit"].iter().zip(&spilled) {
            assert_eq!(
                bytes, &resident[0],
                "spilled {placement} sharing on {name} diverged from the resident run"
            );
        }
    }
}

/// The service tier over one backend: per-job, per-step `(out, map)` bytes.
fn serve_on(kind: TransportKind) -> Vec<Vec<JobStepResult>> {
    let topo = Topology::new(PRODUCERS, STAGERS);
    let hist_key = CoalesceKey::new("histogram", "0:10:24");
    type Made =
        smart_insitu::serve::SmartResult<(ServeDriver<f64>, Vec<smart_insitu::serve::JobHandle>)>;
    let make_serve = |_s: usize| -> Made {
        let registry: Registry<f64> = Registry::new(RegistryConfig::default());
        registry.add_tenant("ops", TenantQuota::unlimited());
        registry.add_tenant("science", TenantQuota::unlimited());
        let h1 = registry.submit(
            JobSpec::new(Histogram::new(0.0, 10.0, BUCKETS), SchedArgs::new(1, 1), BUCKETS)
                .with_tenant("ops")
                .with_coalesce(hist_key.clone()),
        )?;
        let mo = registry
            .submit(JobSpec::new(Moments, SchedArgs::new(1, 1), 0).with_tenant("science"))?;
        // The same histogram under the spilling shuffle: its per-step
        // results must be byte-identical to the resident job's.
        let h2 = registry.submit(
            JobSpec::new(Histogram::new(0.0, 10.0, BUCKETS), SchedArgs::new(1, 1), BUCKETS)
                .with_tenant("ops")
                .with_spill_budget(SPILL_BUDGET),
        )?;
        // A mergeable-summary app as an ordinary tenant job, also spilled.
        let hll = registry.submit(
            JobSpec::new(HyperLogLog::new(10), SchedArgs::new(1, 1), 1)
                .with_tenant("science")
                .with_spill_budget(SPILL_BUDGET),
        )?;
        let driver = ServeDriver::new(registry, shared_pool(1).unwrap());
        Ok((driver, vec![h1, mo, h2, hll]))
    };

    let outcome = run_in_transit_serve(
        topo,
        transit_cfg(kind).with_stream(StreamConfig::with_window(2)),
        |prod: &mut Producer<f64>| {
            for t in 0..STEPS {
                prod.feed(prod.index() * PART, &partition(t, prod.index()))?;
            }
            Ok(())
        },
        make_serve,
    );
    let (_producers, stagers) = outcome.into_result().unwrap();
    let mut per_stager: Vec<Vec<Vec<JobStepResult>>> = stagers
        .into_iter()
        .map(|stager| stager.handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>())
        .collect();
    for s in 1..per_stager.len() {
        for (job, (got, want)) in per_stager[s].iter().zip(&per_stager[0]).enumerate() {
            assert_eq!(got.len(), want.len(), "stager {s} job {job} step count");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.out, w.out, "stager {s} job {job} out bytes");
                assert_eq!(g.map, w.map, "stager {s} job {job} map bytes");
            }
        }
    }
    // Job 2 is job 0 with the spilling shuffle engaged — the budget must
    // not change a single byte of any step's output or map.
    let rows = &per_stager[0];
    assert_eq!(rows[2].len(), rows[0].len(), "spilled histogram step count");
    for (step, (spilled, resident)) in rows[2].iter().zip(&rows[0]).enumerate() {
        assert_eq!(spilled.out, resident.out, "spilled histogram out diverged at step {step}");
        assert_eq!(spilled.map, resident.map, "spilled histogram map diverged at step {step}");
    }
    per_stager.swap_remove(0)
}

#[test]
fn serve_tier_is_bit_identical_across_backends() {
    let reference = serve_on(TransportKind::InProcess);
    for &(name, kind) in &BACKENDS[1..] {
        let got = serve_on(kind);
        assert_eq!(got.len(), reference.len(), "backend {name} job count");
        for (job, (g_steps, r_steps)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g_steps.len(), r_steps.len(), "backend {name} job {job} steps");
            for (g, r) in g_steps.iter().zip(r_steps) {
                assert_eq!(g.out, r.out, "backend {name} job {job} out bytes");
                assert_eq!(g.map, r.map, "backend {name} job {job} map bytes");
            }
        }
    }
}

/// Kill stager 1 mid-run and let the topology heal; return the survivor's
/// healed map bytes plus the uninterrupted reference bytes, both on `kind`.
/// With `spill` set, every stager runs under the spilling shuffle, so
/// rollback and replay happen with the combination map on disk.
fn healed_on_with(kind: TransportKind, spill: Option<usize>) -> (Vec<u8>, Vec<u8>) {
    let topo = Topology::new(PRODUCERS, STAGERS);
    let steps = 6usize;
    let run = |plan: FaultPlan| {
        run_in_transit_healing(
            topo,
            transit_cfg(kind),
            KeyMode::Single,
            plan,
            |prod: &mut FtProducer<f64>| {
                let offset = prod.index() * PART;
                for t in 0..steps {
                    prod.feed(offset, &partition(t, prod.index()))?;
                }
                Ok(prod.index())
            },
            move |_s| {
                let mut sched = hist_sched(2);
                sched.set_spill_budget(spill)?;
                Ok((sched, vec![0u64; BUCKETS]))
            },
        )
    };

    let reference = run(FaultPlan::none());
    let ref_stagers: Vec<_> = reference.stagers.into_iter().map(|s| s.unwrap()).collect();
    assert_eq!(ref_stagers[0].map_bytes, ref_stagers[1].map_bytes);

    let outcome = run(FaultPlan::kill_stager(topo, 1, 2));
    assert!(outcome.stagers[1].is_err(), "stager 1 must die of its injected fault");
    let survivor = outcome.stagers[0].as_ref().expect("stager 0 survives and heals");
    assert!(survivor.heals >= 1, "the death must cost at least one heal retry");
    assert_eq!(
        survivor.map_bytes, ref_stagers[0].map_bytes,
        "healed map must equal the uninterrupted run's"
    );
    (survivor.map_bytes.clone(), ref_stagers.into_iter().next().unwrap().map_bytes)
}

#[test]
fn ft_recovery_is_bit_identical_across_backends() {
    let (healed_ref, clean_ref) = healed_on_with(TransportKind::InProcess, None);
    assert_eq!(healed_ref, clean_ref);
    for &(name, kind) in &BACKENDS[1..] {
        let (healed, clean) = healed_on_with(kind, None);
        assert_eq!(clean, clean_ref, "backend {name} clean run diverged");
        assert_eq!(healed, healed_ref, "backend {name} healed run diverged");
    }
}

/// Self-healing with the spilling shuffle engaged: the stager dies, the
/// survivor rolls back to a snapshot streamed off its on-disk combination
/// run, replays, and still lands on the byte-exact resident result.
#[test]
fn ft_recovery_with_runs_on_disk_is_bit_identical() {
    let (_, resident_clean) = healed_on_with(TransportKind::InProcess, None);
    for (name, kind) in [("inproc", TransportKind::InProcess), ("tcp", TransportKind::Tcp)] {
        let (healed, clean) = healed_on_with(kind, Some(SPILL_BUDGET));
        assert_eq!(clean, resident_clean, "{name}: spilled clean run diverged from resident");
        assert_eq!(healed, clean, "{name}: spilled healed run diverged from its clean run");
    }
}
