//! Miri target suite: the unsafe-heavy paths, kept small enough that
//! `cargo +nightly miri test --test miri_subset` finishes in CI minutes.
//!
//! Covers exactly the code whose soundness rests on manual argument rather
//! than the type system: `SharedSlice`'s `UnsafeCell` slice and its
//! disjointness contract, `RedMap`'s open-addressed storage, `smart-wire`
//! encode/decode round trips, and the `memtrack` counting allocator. The
//! loom suites check *schedules*; this suite checks *pointer discipline*
//! under Miri's aliasing and validity rules.

use smart_insitu::core::{RedMap, SharedSlice};
use smart_insitu::{memtrack, wire};

// Register the counting allocator so Miri also exercises the GlobalAlloc
// wrapper for every allocation this test binary makes.
#[global_allocator]
static ALLOC: memtrack::TrackingAlloc = memtrack::TrackingAlloc::new();

#[test]
fn shared_slice_single_thread_writes() {
    let mut buf = vec![0u64; 16];
    {
        let shared = SharedSlice::new(&mut buf);
        for i in 0..16 {
            // SAFETY: single thread, distinct indices.
            unsafe { shared.write(i, (i * i) as u64) };
        }
        // SAFETY: single thread.
        let v = unsafe { shared.with_mut(3, |v| *v) };
        assert_eq!(v, 9);
    }
    assert_eq!(buf[15], 225);
}

#[test]
fn shared_slice_cross_thread_disjoint_writes() {
    let mut buf = vec![0usize; 64];
    {
        let shared = SharedSlice::new(&mut buf);
        let shared = &shared;
        std::thread::scope(|s| {
            for t in 0..2 {
                s.spawn(move || {
                    for i in (t..64).step_by(2) {
                        // SAFETY: threads own interleaved, disjoint indices.
                        unsafe { shared.write(i, i + 1) };
                    }
                });
            }
        });
    }
    assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
}

#[test]
fn redmap_insert_get_remove_drain() {
    let mut map: RedMap<u64> = RedMap::new();
    for k in 0..200 {
        map.insert(k, k as u64 * 3);
    }
    assert_eq!(map.len(), 200);
    assert_eq!(map.get(77), Some(&231));
    *map.slot_mut(77) = Some(232);
    assert_eq!(map.remove(13), Some(39));
    assert!(!map.contains_key(13));
    let mut entries = map.drain_entries();
    entries.sort_unstable_by_key(|&(k, _)| k);
    assert_eq!(entries.len(), 199);
    assert_eq!(entries.iter().find(|&&(k, _)| k == 77), Some(&(77, 232)));
    assert!(map.is_empty());
}

#[test]
fn redmap_grows_through_collisions() {
    let mut map: RedMap<Vec<u8>> = RedMap::with_capacity(4);
    for k in (0..64).rev() {
        map.insert(k, vec![k as u8; 3]);
    }
    for k in 0..64 {
        assert_eq!(map.get(k), Some(&vec![k as u8; 3]));
    }
}

#[test]
fn wire_roundtrips_preserve_values() {
    let floats: Vec<f64> = (0..50).map(|i| i as f64 * 0.5 - 3.0).collect();
    let bytes = wire::to_bytes(&floats).unwrap();
    assert_eq!(bytes.len() as u64, wire::encoded_len(&floats).unwrap());
    let back: Vec<f64> = wire::from_bytes(&bytes).unwrap();
    assert_eq!(back, floats);

    let entries: Vec<(u64, Vec<u32>)> = (0..20).map(|k| (k, (0..k as u32).collect())).collect();
    let bytes = wire::to_bytes(&entries).unwrap();
    let back: Vec<(u64, Vec<u32>)> = wire::from_bytes(&bytes).unwrap();
    assert_eq!(back, entries);
}

#[test]
fn memtrack_counts_through_the_wrapper() {
    let before_calls = memtrack::alloc_calls();
    let v = vec![0u8; 1 << 16];
    assert!(memtrack::is_tracking());
    assert!(memtrack::alloc_calls() > before_calls);
    assert!(memtrack::current_bytes() >= 1 << 16);
    drop(v);
    let scope = memtrack::MemScope::begin();
    let w = vec![1u8; 4096];
    drop(w);
    let stats = scope.finish();
    assert!(stats.peak_above_entry >= 4096);
}
