//! Miri target suite: the unsafe-heavy paths, kept small enough that
//! `cargo +nightly miri test --test miri_subset` finishes in CI minutes.
//!
//! Covers exactly the code whose soundness rests on manual argument rather
//! than the type system: `SharedSlice`'s `UnsafeCell` slice and its
//! disjointness contract, `RedMap`'s open-addressed storage, `smart-wire`
//! encode/decode round trips, and the `memtrack` counting allocator. The
//! loom suites check *schedules*; this suite checks *pointer discipline*
//! under Miri's aliasing and validity rules.

use smart_insitu::core::{fold_entries_view, Analytics, Chunk, Key, RedMap, RedObj, SharedSlice};
use smart_insitu::wire::EntriesCursor;
use smart_insitu::{memtrack, wire};

// Register the counting allocator so Miri also exercises the GlobalAlloc
// wrapper for every allocation this test binary makes.
#[global_allocator]
static ALLOC: memtrack::TrackingAlloc = memtrack::TrackingAlloc::new();

#[test]
fn shared_slice_single_thread_writes() {
    let mut buf = vec![0u64; 16];
    {
        let shared = SharedSlice::new(&mut buf);
        for i in 0..16 {
            // SAFETY: single thread, distinct indices.
            unsafe { shared.write(i, (i * i) as u64) };
        }
        // SAFETY: single thread.
        let v = unsafe { shared.with_mut(3, |v| *v) };
        assert_eq!(v, 9);
    }
    assert_eq!(buf[15], 225);
}

#[test]
fn shared_slice_cross_thread_disjoint_writes() {
    let mut buf = vec![0usize; 64];
    {
        let shared = SharedSlice::new(&mut buf);
        let shared = &shared;
        std::thread::scope(|s| {
            for t in 0..2 {
                s.spawn(move || {
                    for i in (t..64).step_by(2) {
                        // SAFETY: threads own interleaved, disjoint indices.
                        unsafe { shared.write(i, i + 1) };
                    }
                });
            }
        });
    }
    assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
}

#[test]
fn redmap_insert_get_remove_drain() {
    let mut map: RedMap<u64> = RedMap::new();
    for k in 0..200 {
        map.insert(k, k as u64 * 3);
    }
    assert_eq!(map.len(), 200);
    assert_eq!(map.get(77), Some(&231));
    *map.slot_mut(77) = Some(232);
    assert_eq!(map.remove(13), Some(39));
    assert!(!map.contains_key(13));
    let mut entries = map.drain_entries();
    entries.sort_unstable_by_key(|&(k, _)| k);
    assert_eq!(entries.len(), 199);
    assert_eq!(entries.iter().find(|&&(k, _)| k == 77), Some(&(77, 232)));
    assert!(map.is_empty());
}

#[test]
fn redmap_grows_through_collisions() {
    let mut map: RedMap<Vec<u8>> = RedMap::with_capacity(4);
    for k in (0..64).rev() {
        map.insert(k, vec![k as u8; 3]);
    }
    for k in 0..64 {
        assert_eq!(map.get(k), Some(&vec![k as u8; 3]));
    }
}

#[test]
fn wire_roundtrips_preserve_values() {
    let floats: Vec<f64> = (0..50).map(|i| i as f64 * 0.5 - 3.0).collect();
    let bytes = wire::to_bytes(&floats).unwrap();
    assert_eq!(bytes.len() as u64, wire::encoded_len(&floats).unwrap());
    let back: Vec<f64> = wire::from_bytes(&bytes).unwrap();
    assert_eq!(back, floats);

    let entries: Vec<(u64, Vec<u32>)> = (0..20).map(|k| (k, (0..k as u32).collect())).collect();
    let bytes = wire::to_bytes(&entries).unwrap();
    let back: Vec<(u64, Vec<u32>)> = wire::from_bytes(&bytes).unwrap();
    assert_eq!(back, entries);
}

/// Heap-bearing reduction object, so the wire view's borrowed reads and
/// the owned-decode fallback both run under Miri's aliasing rules.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct VecSum(Vec<u64>);
impl RedObj for VecSum {}

struct VecAdd;
impl Analytics for VecAdd {
    type In = u64;
    type Red = VecSum;
    type Out = ();
    type Extra = ();

    fn accumulate(&self, _c: &Chunk, _d: &[u64], _k: Key, obj: &mut Option<VecSum>) {
        obj.get_or_insert_with(|| VecSum(Vec::new()));
    }

    fn merge(&self, red: &VecSum, com: &mut VecSum) {
        if com.0.len() < red.0.len() {
            com.0.resize(red.0.len(), 0);
        }
        for (a, b) in com.0.iter_mut().zip(&red.0) {
            *a += b;
        }
    }

    /// Zero-copy override: fold the encoded `Vec<u64>` into `com` straight
    /// off the wire buffer — the borrowed path `fold_entries_view` exists
    /// for, and exactly one encoded `Self::Red` consumed per contract.
    fn merge_wire(
        &self,
        de: &mut smart_insitu::wire::Deserializer<'_>,
        com: &mut VecSum,
    ) -> smart_insitu::wire::Result<()> {
        use serde::Deserialize;
        let n = u64::deserialize(&mut *de)? as usize;
        if com.0.len() < n {
            com.0.resize(n, 0);
        }
        for slot in com.0.iter_mut().take(n) {
            *slot += u64::deserialize(&mut *de)?;
        }
        Ok(())
    }
}

#[test]
fn entries_cursor_zero_entry_payload() {
    let bytes = wire::to_bytes(&Vec::<(i64, VecSum)>::new()).unwrap();
    let mut cur = EntriesCursor::new(&bytes).unwrap();
    assert_eq!(cur.remaining(), 0);
    assert_eq!(cur.next_key().unwrap(), None);
    cur.finish().unwrap();

    // The view fold over an empty payload passes the accumulator through.
    let acc = vec![(3i64, VecSum(vec![1, 2]))];
    let out = fold_entries_view(&VecAdd, acc.clone(), &bytes).unwrap();
    assert_eq!(out, acc);
}

#[test]
fn entries_cursor_truncated_buffers_error_not_panic() {
    let entries = vec![(1i64, VecSum(vec![5, 6, 7])), (4, VecSum(vec![])), (9, VecSum(vec![8]))];
    let bytes = wire::to_bytes(&entries).unwrap();
    // Every strict prefix — cuts inside the count, a key, a value length,
    // and value payloads — must surface as a typed error somewhere in the
    // walk (never an out-of-bounds read, which Miri would flag).
    for cut in 0..bytes.len() {
        let walk = || -> wire::Result<Vec<(i64, VecSum)>> {
            let mut cur = EntriesCursor::new(&bytes[..cut])?;
            let mut got = Vec::new();
            while let Some(key) = cur.next_key()? {
                got.push((key, cur.value::<VecSum>()?));
            }
            cur.finish()?;
            Ok(got)
        };
        assert!(walk().is_err(), "truncation at {cut} went undetected");
        // The same prefix through the merge-join fold must also error.
        assert!(fold_entries_view(&VecAdd, Vec::new(), &bytes[..cut]).is_err());
    }
}

#[test]
fn entries_cursor_max_count_prefixes_are_rejected() {
    let mut bytes = wire::to_bytes(&vec![(1i64, 2u64), (3, 4)]).unwrap();
    // An absurd count fails the at-least-8-bytes-per-entry plausibility
    // check at construction.
    let good_prefix: [u8; 8] = bytes[..8].try_into().unwrap();
    bytes[..8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(EntriesCursor::new(&bytes).is_err());

    // A plausible-but-wrong count (one extra entry) survives construction
    // and must then die as EOF mid-walk, not walk off the buffer.
    bytes[..8].copy_from_slice(&3u64.to_le_bytes());
    let mut cur = EntriesCursor::new(&bytes).unwrap();
    let mut err = None;
    loop {
        match cur.next_key() {
            Ok(Some(_)) => match cur.value::<u64>() {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            },
            Ok(None) => break,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(err.is_some(), "over-count prefix went undetected");

    // Restore the true count: the full walk must succeed again.
    bytes[..8].copy_from_slice(&good_prefix);
    let mut cur = EntriesCursor::new(&bytes).unwrap();
    while let Some(_k) = cur.next_key().unwrap() {
        let _: u64 = cur.value().unwrap();
    }
    cur.finish().unwrap();
}

#[test]
fn merge_wire_view_fold_matches_owned_merge() {
    // Overlapping, disjoint-low and disjoint-high keys, so the merge-join
    // exercises all three arms: copy-from-acc, in-place merge_wire, and
    // owned decode of a new key.
    let acc = vec![(1i64, VecSum(vec![10])), (5, VecSum(vec![1, 1])), (9, VecSum(vec![7]))];
    let incoming = vec![(0i64, VecSum(vec![2])), (5, VecSum(vec![3, 4, 5])), (12, VecSum(vec![6]))];
    let bytes = wire::to_bytes(&incoming).unwrap();

    let got = fold_entries_view(&VecAdd, acc.clone(), &bytes).unwrap();

    // Reference: owned decode + merge through the same operator.
    let mut expect = acc;
    for (k, red) in wire::from_bytes::<Vec<(i64, VecSum)>>(&bytes).unwrap() {
        match expect.iter_mut().find(|(ka, _)| *ka == k) {
            Some((_, com)) => VecAdd.merge(&red, com),
            None => expect.push((k, red)),
        }
    }
    expect.sort_by_key(|&(k, _)| k);
    assert_eq!(got, expect);
}

#[test]
fn memtrack_counts_through_the_wrapper() {
    let before_calls = memtrack::alloc_calls();
    let v = vec![0u8; 1 << 16];
    assert!(memtrack::is_tracking());
    assert!(memtrack::alloc_calls() > before_calls);
    assert!(memtrack::current_bytes() >= 1 << 16);
    drop(v);
    let scope = memtrack::MemScope::begin();
    let w = vec![1u8; 4096];
    drop(w);
    let stats = scope.finish();
    assert!(stats.peak_above_entry >= 4096);
}
