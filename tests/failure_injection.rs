//! Failure injection across the stack: crashed ranks, closed streams,
//! misuse of the scheduler, and memory-budget violations must surface as
//! typed errors (or clean panics), never hangs or corruption.

use serde::{Deserialize, Serialize};
use smart_insitu::analytics::Histogram;
use smart_insitu::comm::{run_cluster, CommError};
use smart_insitu::core::space::{CircularBuffer, SpaceShared};
use smart_insitu::core::SmartError;
use smart_insitu::memtrack::Budget;
use smart_insitu::prelude::*;

fn hist_scheduler() -> Scheduler<Histogram> {
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    Scheduler::new(Histogram::new(0.0, 1.0, 4), SchedArgs::new(1, 1), pool).unwrap()
}

#[test]
fn dead_rank_surfaces_as_peer_gone_not_a_hang() {
    let results = run_cluster(2, |mut comm| {
        if comm.rank() == 0 {
            // Rank 0 exits immediately; its drop broadcasts a death notice.
            Ok(())
        } else {
            // Rank 1 blocks on rank 0 and must be woken with PeerGone.
            match comm.recv::<u64>(0, 42) {
                Err(CommError::PeerGone { peer: 0 }) => Err("peer gone as expected"),
                other => panic!("expected PeerGone, got {other:?}"),
            }
        }
    });
    assert!(results[0].is_ok());
    assert_eq!(results[1], Err("peer gone as expected"));
}

#[test]
fn rank_panic_propagates_to_launcher() {
    let caught = std::panic::catch_unwind(|| {
        run_cluster(3, |comm| {
            if comm.rank() == 2 {
                panic!("injected failure");
            }
        })
    });
    assert!(caught.is_err());
}

#[test]
fn chunk_mismatch_is_reported_not_truncated() {
    let mut s = hist_scheduler();
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    let mut s2 = Scheduler::new(
        Histogram::new(0.0, 1.0, 4),
        SchedArgs::new(1, 3), // chunk of 3
        pool,
    )
    .unwrap();
    assert!(matches!(
        s2.run(&[0.1, 0.2, 0.3, 0.4], &mut []),
        Err(SmartError::ChunkMismatch { input_len: 4, chunk_size: 3 })
    ));
    // Well-formed input still works on the other scheduler.
    s.run(&[0.5], &mut []).unwrap();
}

#[test]
fn convert_key_out_of_range_is_reported() {
    // Histogram over 4 buckets but only 2 output slots.
    let mut s = hist_scheduler();
    let mut too_small = vec![0u64; 2];
    let err = s.run(&[0.95], &mut too_small).unwrap_err();
    assert!(matches!(err, SmartError::KeyOutOfRange { key: 3, out_len: 2 }));
}

/// An analytics that forgets to create its reduction object.
struct Broken;

#[derive(Clone, Serialize, Deserialize)]
struct Never;
impl RedObj for Never {}

impl Analytics for Broken {
    type In = f64;
    type Red = Never;
    type Out = f64;
    type Extra = ();
    fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, _obj: &mut Option<Never>) {
        // bug: leaves the slot empty
    }
    fn merge(&self, _red: &Never, _com: &mut Never) {}
}

#[test]
fn empty_accumulate_is_detected() {
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    let mut s = Scheduler::new(Broken, SchedArgs::new(1, 1), pool).unwrap();
    let err = s.run(&[1.0], &mut []).unwrap_err();
    assert!(matches!(err, SmartError::EmptyAccumulate { key: 0 }));
}

#[test]
fn feeding_a_closed_stream_fails_fast() {
    let shared = SpaceShared::new(hist_scheduler(), 1);
    let feeder = shared.feeder();
    feeder.close();
    assert!(matches!(feeder.feed(&[1.0]), Err(SmartError::StreamClosed)));
}

#[test]
fn consumer_drains_then_sees_end_of_stream_after_close() {
    let buffer: CircularBuffer<u32> = CircularBuffer::new(2);
    buffer.push(1).unwrap();
    buffer.push(2).unwrap();
    buffer.close();
    assert_eq!(buffer.pop(), Some(1));
    assert_eq!(buffer.pop(), Some(2));
    assert_eq!(buffer.pop(), None);
}

#[test]
fn budget_violation_reports_usage() {
    let budget = Budget::new(1024);
    let err = budget.check(4096).unwrap_err();
    assert_eq!(err.limit, 1024);
    assert_eq!(err.used, 4096);
    assert!(err.to_string().contains("simulated OOM"));
}

#[test]
fn zero_length_inputs_are_harmless_everywhere() {
    // Scheduler on empty input.
    let mut s = hist_scheduler();
    let mut out = vec![0u64; 4];
    s.run(&[], &mut out).unwrap();
    assert_eq!(out, vec![0; 4]);

    // Cluster of one rank doing nothing.
    let r = run_cluster(1, |comm| comm.size());
    assert_eq!(r, vec![1]);
}

#[test]
fn scheduler_is_reusable_after_an_error() {
    let pool = smart_insitu::pool::shared_pool(1).unwrap();
    let mut s = Scheduler::new(Histogram::new(0.0, 1.0, 4), SchedArgs::new(1, 2), pool).unwrap();
    // Odd-length input errors...
    assert!(s.run(&[0.1], &mut []).is_err());
    // ...but the scheduler stays usable.
    s.run(&[0.1, 0.2], &mut []).unwrap();
    assert_eq!(s.combination_map().len(), 1);
}

#[test]
fn stager_death_mid_stream_surfaces_peer_gone_to_all_producers() {
    use smart_insitu::comm::{StreamConfig, StreamReceiver, StreamSender};

    // Three producers stream to one staging rank; the stager consumes one
    // chunk from each and dies. Every producer must be woken out of its
    // credit wait (or send) with PeerGone — never a hang.
    let producers = 3usize;
    let results = run_cluster(producers + 1, move |mut comm| {
        if comm.rank() < producers {
            let mut tx = StreamSender::<f64>::new(producers, StreamConfig::with_window(2));
            for t in 0..1000 {
                tx.feed(&mut comm, 0, &[t as f64; 64])?;
            }
            tx.finish(&mut comm).map(|_| ())
        } else {
            let mut rxs: Vec<StreamReceiver<f64>> =
                (0..producers).map(StreamReceiver::new).collect();
            for rx in &mut rxs {
                rx.recv(&mut comm)?.expect("one chunk per producer");
            }
            Ok(()) // returning drops the communicator: death mid-stream
        }
    });
    assert!(results[producers].is_ok(), "stager consumed its chunks first");
    for (p, r) in results[..producers].iter().enumerate() {
        assert_eq!(
            *r,
            Err(CommError::PeerGone { peer: producers }),
            "producer {p} must see the stager's death"
        );
    }
}

#[test]
fn stager_scheduler_error_does_not_hang_the_transit_run() {
    use smart_insitu::core::in_transit::{run_in_transit, InTransitConfig, Producer, Topology};
    use smart_insitu::core::KeyMode;

    // The stager's scheduler rejects the chunk geometry (length 3 with
    // chunk_size 2): the stager errors out and its producers surface
    // PeerGone instead of waiting forever on credits.
    let outcome = run_in_transit(
        Topology::new(2, 1),
        InTransitConfig::with_window(1),
        KeyMode::Single,
        |prod: &mut Producer<f64>| {
            for t in 0..50 {
                prod.feed(0, &[t as f64; 3])?;
            }
            Ok(())
        },
        |_s| {
            let pool = smart_insitu::pool::shared_pool(1)?;
            let sched = Scheduler::new(Histogram::new(0.0, 1.0, 4), SchedArgs::new(1, 2), pool)?;
            Ok((sched, Vec::new()))
        },
    );
    assert!(matches!(
        outcome.stagers[0],
        Err(SmartError::ChunkMismatch { input_len: 3, chunk_size: 2 })
    ));
    for p in &outcome.producers {
        // The producer's PeerGone arrives annotated with the rank and step
        // that observed the dead stager.
        assert!(
            matches!(
                p,
                Err(SmartError::Context { source, .. })
                    if matches!(source.as_ref(), SmartError::Comm(CommError::PeerGone { .. }))
            ),
            "producer must not hang on a failed stager: {p:?}"
        );
    }
}
