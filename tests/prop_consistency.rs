//! Property tests at the whole-runtime level: for random data, thread
//! counts, rank counts, and chunk sizes, the distributed parallel pipeline
//! must agree with a sequential oracle.

use proptest::prelude::*;
use smart_insitu::analytics::{GridAggregation, Histogram, MovingAverage};
use smart_insitu::prelude::*;

fn hist_oracle(data: &[f64], buckets: usize) -> Vec<u64> {
    let h = Histogram::new(-1000.0, 1000.0, buckets);
    let mut counts = vec![0u64; buckets];
    for &v in data {
        counts[h.bucket_of(v)] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Histogram over any (ranks, threads) grid equals the oracle.
    #[test]
    fn distributed_histogram_equals_oracle(
        data in proptest::collection::vec(-1000.0f64..1000.0, 1..400),
        ranks in 1usize..5,
        threads in 1usize..4,
        buckets in 1usize..40,
    ) {
        let expected = hist_oracle(&data, buckets);
        let results = smart_insitu::comm::run_cluster(ranks, |mut comm| {
            let share = data.len() / comm.size();
            let lo = comm.rank() * share;
            let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let mut s = Scheduler::new(
                Histogram::new(-1000.0, 1000.0, buckets),
                SchedArgs::new(threads, 1),
                pool,
            )
            .unwrap();
            let mut out = vec![0u64; buckets];
            s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            out
        });
        for out in results {
            prop_assert_eq!(&out, &expected);
        }
    }

    /// Moving average with global keys over rank partitions equals the
    /// whole-array oracle on every key a rank's partition touches.
    #[test]
    fn distributed_moving_average_equals_oracle(
        data in proptest::collection::vec(-10.0f64..10.0, 4..200),
        ranks in 1usize..4,
        hw in 1usize..4,
    ) {
        let window = 2 * hw + 1;
        let n = data.len();
        let oracle: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(hw);
                let hi = (i + hw).min(n - 1);
                data[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
            })
            .collect();

        let results = smart_insitu::comm::run_cluster(ranks, |mut comm| {
            let share = n / comm.size();
            let lo = comm.rank() * share;
            let hi = if comm.rank() + 1 == comm.size() { n } else { lo + share };
            let pool = smart_insitu::pool::shared_pool(2).unwrap();
            let args = SchedArgs::new(2, 1).with_partition(lo, n);
            let mut s = Scheduler::new(MovingAverage::new(window, n), args, pool).unwrap();
            let mut out = vec![f64::NAN; n];
            s.run2_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            (lo, hi, out)
        });
        for (lo, hi, out) in results {
            if lo == hi {
                continue; // empty partition on over-decomposed input
            }
            let key_lo = lo.saturating_sub(hw);
            let key_hi = (hi - 1 + hw).min(n - 1);
            for key in key_lo..=key_hi {
                prop_assert!(
                    (out[key] - oracle[key]).abs() < 1e-9,
                    "key {key}: {} vs {}", out[key], oracle[key]
                );
            }
        }
    }

    /// Chunked processing (chunk_size > 1) never splits a unit chunk:
    /// grid aggregation over chunk-aligned groups equals its oracle for
    /// every chunk size that divides the input.
    #[test]
    fn chunk_sizes_never_split_units(
        groups in 1usize..50,
        chunk in 1usize..6,
        threads in 1usize..4,
    ) {
        let data: Vec<f64> = (0..groups * chunk).map(|i| i as f64).collect();
        let app = GridAggregation::new(chunk, data.len());
        let cells = app.cells();
        let pool = smart_insitu::pool::shared_pool(threads).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(threads, 1), pool).unwrap();
        let mut out = vec![0.0; cells];
        s.run(&data, &mut out).unwrap();
        for (g, v) in out.iter().enumerate() {
            let lo = g * chunk;
            let hi = ((g + 1) * chunk).min(data.len());
            let mean = data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            prop_assert!((v - mean).abs() < 1e-9);
        }
    }

    /// The early-emission optimization never changes results, for any
    /// thread count and window.
    #[test]
    fn trigger_is_semantically_invisible(
        data in proptest::collection::vec(-5.0f64..5.0, 1..150),
        hw in 1usize..4,
        threads in 1usize..4,
    ) {
        let window = 2 * hw + 1;
        let n = data.len();
        let run = |disable: bool| {
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let args = SchedArgs::new(threads, 1).with_trigger_disabled(disable);
            let mut s = Scheduler::new(MovingAverage::new(window, n), args, pool).unwrap();
            let mut out = vec![0.0; n];
            s.run2(&data, &mut out).unwrap();
            out
        };
        prop_assert_eq!(run(false), run(true));
    }
}
