//! Property tests at the whole-runtime level: for random data, thread
//! counts, rank counts, and chunk sizes, the distributed parallel pipeline
//! must agree with a sequential oracle.

use proptest::prelude::*;
use smart_insitu::analytics::{
    CountMin, GridAggregation, Histogram, HyperLogLog, MovingAverage, ReservoirSample, TDigest,
};
use smart_insitu::prelude::*;

/// Fold `values` into one reduction object of `app` as a single chunk
/// whose global offset is `global_start` (None on an empty slice).
fn fold_opt<A: Analytics<In = f64>>(
    app: &A,
    values: &[f64],
    global_start: usize,
) -> Option<A::Red> {
    let chunk = Chunk { local_start: 0, global_start, len: values.len() };
    let mut obj = None;
    if !values.is_empty() {
        app.accumulate(&chunk, values, 0, &mut obj);
    }
    obj
}

fn fold<A: Analytics<In = f64>>(app: &A, values: &[f64], global_start: usize) -> A::Red {
    fold_opt(app, values, global_start).expect("non-empty fold")
}

fn hist_oracle(data: &[f64], buckets: usize) -> Vec<u64> {
    let h = Histogram::new(-1000.0, 1000.0, buckets);
    let mut counts = vec![0u64; buckets];
    for &v in data {
        counts[h.bucket_of(v)] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Histogram over any (ranks, threads) grid equals the oracle.
    #[test]
    fn distributed_histogram_equals_oracle(
        data in proptest::collection::vec(-1000.0f64..1000.0, 1..400),
        ranks in 1usize..5,
        threads in 1usize..4,
        buckets in 1usize..40,
    ) {
        let expected = hist_oracle(&data, buckets);
        let results = smart_insitu::comm::run_cluster(ranks, |mut comm| {
            let share = data.len() / comm.size();
            let lo = comm.rank() * share;
            let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let mut s = Scheduler::new(
                Histogram::new(-1000.0, 1000.0, buckets),
                SchedArgs::new(threads, 1),
                pool,
            )
            .unwrap();
            let mut out = vec![0u64; buckets];
            s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            out
        });
        for out in results {
            prop_assert_eq!(&out, &expected);
        }
    }

    /// Moving average with global keys over rank partitions equals the
    /// whole-array oracle on every key a rank's partition touches.
    #[test]
    fn distributed_moving_average_equals_oracle(
        data in proptest::collection::vec(-10.0f64..10.0, 4..200),
        ranks in 1usize..4,
        hw in 1usize..4,
    ) {
        let window = 2 * hw + 1;
        let n = data.len();
        let oracle: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(hw);
                let hi = (i + hw).min(n - 1);
                data[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
            })
            .collect();

        let results = smart_insitu::comm::run_cluster(ranks, |mut comm| {
            let share = n / comm.size();
            let lo = comm.rank() * share;
            let hi = if comm.rank() + 1 == comm.size() { n } else { lo + share };
            let pool = smart_insitu::pool::shared_pool(2).unwrap();
            let args = SchedArgs::new(2, 1).with_partition(lo, n);
            let mut s = Scheduler::new(MovingAverage::new(window, n), args, pool).unwrap();
            let mut out = vec![f64::NAN; n];
            s.run2_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            (lo, hi, out)
        });
        for (lo, hi, out) in results {
            if lo == hi {
                continue; // empty partition on over-decomposed input
            }
            let key_lo = lo.saturating_sub(hw);
            let key_hi = (hi - 1 + hw).min(n - 1);
            for key in key_lo..=key_hi {
                prop_assert!(
                    (out[key] - oracle[key]).abs() < 1e-9,
                    "key {key}: {} vs {}", out[key], oracle[key]
                );
            }
        }
    }

    /// Chunked processing (chunk_size > 1) never splits a unit chunk:
    /// grid aggregation over chunk-aligned groups equals its oracle for
    /// every chunk size that divides the input.
    #[test]
    fn chunk_sizes_never_split_units(
        groups in 1usize..50,
        chunk in 1usize..6,
        threads in 1usize..4,
    ) {
        let data: Vec<f64> = (0..groups * chunk).map(|i| i as f64).collect();
        let app = GridAggregation::new(chunk, data.len());
        let cells = app.cells();
        let pool = smart_insitu::pool::shared_pool(threads).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(threads, 1), pool).unwrap();
        let mut out = vec![0.0; cells];
        s.run(&data, &mut out).unwrap();
        for (g, v) in out.iter().enumerate() {
            let lo = g * chunk;
            let hi = ((g + 1) * chunk).min(data.len());
            let mean = data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            prop_assert!((v - mean).abs() < 1e-9);
        }
    }

    /// Count-Min merges commute and associate (bit-exactly, so the
    /// spilling shuffle and the distributed combine may reorder them
    /// freely), equal the single-pass fold of the concatenation, and never
    /// undercount.
    #[test]
    fn countmin_merge_commutes_and_associates(
        a in proptest::collection::vec(-50.0f64..50.0, 1..120),
        b in proptest::collection::vec(-50.0f64..50.0, 1..120),
        c in proptest::collection::vec(-50.0f64..50.0, 1..120),
    ) {
        let app = CountMin::new(32, 4);
        let (sa, sb, sc) = (fold(&app, &a, 0), fold(&app, &b, 0), fold(&app, &c, 0));
        // (a ⊕ b) ⊕ c …
        let mut left = sa.clone();
        app.merge(&sb, &mut left);
        app.merge(&sc, &mut left);
        // … versus (c ⊕ b) ⊕ a.
        let mut right = sc.clone();
        app.merge(&sb, &mut right);
        app.merge(&sa, &mut right);
        prop_assert_eq!(&left, &right);
        let whole: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &fold(&app, &whole, 0));
        let probe = whole[0];
        let truth = whole.iter().filter(|v| v.to_bits() == probe.to_bits()).count() as u64;
        prop_assert!(left.estimate(probe) >= truth, "Count-Min must never undercount");
    }

    /// A HyperLogLog merge is exactly the sketch of the union: registers
    /// are element-wise maxima, so merge order is invisible.
    #[test]
    fn hll_merge_is_the_union(
        a in proptest::collection::vec(0.0f64..1e6, 1..200),
        b in proptest::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let app = HyperLogLog::new(8);
        let (sa, sb) = (fold(&app, &a, 0), fold(&app, &b, 0));
        let mut ab = sa.clone();
        app.merge(&sb, &mut ab);
        let mut ba = sb.clone();
        app.merge(&sa, &mut ba);
        prop_assert_eq!(&ab, &ba, "HLL merge must commute");
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &fold(&app, &whole, 0));
    }

    /// The bottom-k reservoir is a *set function* of the stream: cutting
    /// it at any point and merging the halves reproduces the whole-stream
    /// sample bit-for-bit.
    #[test]
    fn reservoir_sample_is_split_invariant(
        n in 1usize..300,
        cut in 0usize..301,
        k in 1usize..40,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let values: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
        let cut = cut % (n + 1);
        let app = ReservoirSample::new(k, seed);
        let whole = fold(&app, &values, 0);
        let (head, tail) = values.split_at(cut);
        let parts = [fold_opt(&app, head, 0), fold_opt(&app, tail, cut)];
        let mut merged = None;
        for part in parts.into_iter().flatten() {
            match &mut merged {
                None => merged = Some(part),
                Some(m) => app.merge(&part, m),
            }
        }
        prop_assert_eq!(merged.expect("non-empty stream"), whole);
    }

    /// Merging t-digests keeps quantile answers inside the rank-error
    /// envelope. Ties make an estimate's true rank an interval
    /// `[v < est, v <= est]`; q must land within tolerance of it.
    #[test]
    fn tdigest_merge_stays_within_rank_error(
        a in proptest::collection::vec(-100.0f64..100.0, 10..300),
        b in proptest::collection::vec(-100.0f64..100.0, 10..300),
    ) {
        let app = TDigest::new(50.0);
        let mut merged = fold(&app, &a, 0);
        app.merge(&fold(&app, &b, 0), &mut merged);
        let mut sorted: Vec<f64> = a.iter().chain(&b).copied().collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for q in [0.25, 0.5, 0.75] {
            let est = merged.quantile(q).unwrap();
            let lo = sorted.iter().filter(|&&v| v < est).count() as f64 / n;
            let hi = sorted.iter().filter(|&&v| v <= est).count() as f64 / n;
            prop_assert!(
                q >= lo - 0.1 && q <= hi + 0.1,
                "q={} estimate {} has rank [{}, {}]", q, est, lo, hi
            );
        }
    }

    /// The early-emission optimization never changes results, for any
    /// thread count and window.
    #[test]
    fn trigger_is_semantically_invisible(
        data in proptest::collection::vec(-5.0f64..5.0, 1..150),
        hw in 1usize..4,
        threads in 1usize..4,
    ) {
        let window = 2 * hw + 1;
        let n = data.len();
        let run = |disable: bool| {
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let args = SchedArgs::new(threads, 1).with_trigger_disabled(disable);
            let mut s = Scheduler::new(MovingAverage::new(window, n), args, pool).unwrap();
            let mut out = vec![0.0; n];
            s.run2(&data, &mut out).unwrap();
            out
        };
        prop_assert_eq!(run(false), run(true));
    }
}
