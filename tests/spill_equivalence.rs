//! PR 10 acceptance: the spilling shuffle is invisible to results. With a
//! budget tight enough to force several sorted on-disk runs per step, every
//! spill-safe analytics app must produce canonical map bytes
//! **bit-identical** to the unbounded in-memory run — across thread
//! counts, combine strategies, and transport backends. Integer-valued
//! inputs keep every f64 merge exact, so the comparisons really are byte
//! equality. The one deliberately inexact app, the t-digest, is held to
//! its rank-error bound instead.

use smart_insitu::analytics::{
    CountMin, Histogram, HyperLogLog, Moments, ReservoirSample, TDigest,
};
use smart_insitu::comm::{run_cluster_with, CommConfig, TransportKind};
use smart_insitu::core::{Analytics, CombineStrategy, SchedArgs, Scheduler};
use smart_insitu::pool::shared_pool;

const STEPS: usize = 3;
const RANKS: usize = 4;
const PART: usize = 2048; // elements per rank per step
const KEYS: usize = 997; // histogram buckets == live reduction keys
const BUDGET: usize = 16 << 10;

fn element(t: usize, r: usize, i: usize) -> f64 {
    ((t * 31 + r * 13 + i * 7) % KEYS) as f64
}

fn partition(t: usize, r: usize) -> Vec<f64> {
    (0..PART).map(|i| element(t, r, i)).collect()
}

fn step_concat(t: usize) -> Vec<f64> {
    (0..RANKS).flat_map(|r| partition(t, r)).collect()
}

fn hist() -> Histogram {
    Histogram::new(0.0, KEYS as f64, KEYS)
}

/// Drive `make()`'s app over the synthetic stream on one process and
/// return `(canonical map bytes, spill runs written)`.
fn run_local<A>(
    make: &dyn Fn() -> A,
    out_len: usize,
    threads: usize,
    strategy: CombineStrategy,
    budget: Option<usize>,
) -> (Vec<u8>, usize)
where
    A: Analytics<In = f64>,
    A::Out: Default,
{
    let pool = shared_pool(threads).unwrap();
    let mut s = Scheduler::new(make(), SchedArgs::new(threads, 1), pool).unwrap();
    s.set_combine_strategy(strategy);
    s.set_collect_stats(true);
    s.set_spill_budget(budget).unwrap();
    let mut out: Vec<A::Out> = (0..out_len).map(|_| A::Out::default()).collect();
    let mut runs = 0;
    for t in 0..STEPS {
        s.run(&step_concat(t), &mut out).unwrap();
        runs += s.last_stats().spill_runs;
    }
    if budget.is_some() {
        // Engaged, the persistent combination map lives on disk: the
        // resident view must be empty even though the canonical bytes
        // below are non-trivial.
        assert!(s.combination_map().is_empty(), "spilled map must not be resident");
    }
    (s.canonical_map_bytes().unwrap(), runs)
}

#[test]
fn spilled_histogram_matches_resident_across_threads_and_strategies() {
    let (reference, no_runs) = run_local(&hist, KEYS, 2, CombineStrategy::default(), None);
    assert_eq!(no_runs, 0, "unbounded run must write no spill runs");
    for threads in [1usize, 2, 4] {
        for strategy in [CombineStrategy::Sharded, CombineStrategy::Gossip] {
            let (bytes, runs) = run_local(&hist, KEYS, threads, strategy, Some(BUDGET));
            assert!(
                runs >= 2,
                "budget must force at least two runs (threads={threads}, {strategy:?}, got {runs})"
            );
            assert_eq!(bytes, reference, "threads={threads} {strategy:?} diverged");
        }
    }
}

/// Every sketch summary lives under key 0, so a deliberately tiny budget
/// pushes even the single-entry shells out of core. Count-Min,
/// HyperLogLog, and the bottom-k reservoir merge exactly; Moments rides
/// along as the plain-statistics control.
#[test]
fn sketch_apps_spill_bit_identically() {
    fn check<A>(make: &dyn Fn() -> A, name: &str)
    where
        A: Analytics<In = f64>,
        A::Out: Default,
    {
        let (reference, _) = run_local(make, 1, 2, CombineStrategy::default(), None);
        for threads in [1usize, 4] {
            let (spilled, _) = run_local(make, 1, threads, CombineStrategy::Sharded, Some(64));
            assert_eq!(spilled, reference, "{name} (threads={threads}) diverged under spill");
        }
    }
    check(&|| CountMin::new(64, 4), "count-min");
    check(&|| HyperLogLog::new(10), "hyperloglog");
    check(&|| ReservoirSample::new(32, 7), "reservoir");
    check(&|| Moments, "moments");
}

/// The t-digest trades bit-identity for bounded rank error: spilled and
/// resident plans may cluster differently, but both must answer quantile
/// queries within the digest's accuracy envelope.
#[test]
fn tdigest_spills_within_rank_error() {
    let run = |budget: Option<usize>| {
        let pool = shared_pool(2).unwrap();
        let mut s = Scheduler::new(TDigest::new(100.0), SchedArgs::new(2, 1), pool).unwrap();
        s.set_spill_budget(budget).unwrap();
        let mut out = [0.0f64];
        for t in 0..STEPS {
            s.run(&step_concat(t), &mut out).unwrap();
        }
        s.canonical_entries().unwrap().into_iter().next().expect("one digest").1
    };
    let resident = run(None);
    let spilled = run(Some(64));

    let mut sorted: Vec<f64> = (0..STEPS).flat_map(step_concat).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    for q in [0.1, 0.5, 0.9] {
        for (name, digest) in [("resident", &resident), ("spilled", &spilled)] {
            let est = digest.quantile(q).unwrap();
            // The input has heavy ties, so an estimate's true rank is an
            // interval [v < est, v <= est]; q must fall within 3% of it.
            let lo = sorted.iter().filter(|&&v| v < est).count() as f64 / n;
            let hi = sorted.iter().filter(|&&v| v <= est).count() as f64 / n;
            assert!(
                q >= lo - 0.03 && q <= hi + 0.03,
                "{name} digest q={q}: estimate {est} has rank [{lo}, {hi}]"
            );
        }
    }
}

/// Distributed time sharing with per-rank spilling: each rank's shells
/// drain to its own run store, the globally combined map is streamed back
/// out of core, and every rank's canonical bytes equal the unbounded
/// cluster's — on the in-process mesh and TCP loopback alike.
#[test]
fn spilled_distributed_runs_match_unbounded_across_backends() {
    fn dist_on(
        kind: TransportKind,
        strategy: CombineStrategy,
        budget: Option<usize>,
    ) -> (Vec<u8>, usize) {
        let cfg = CommConfig { transport: Some(kind), ..CommConfig::default() };
        let per_rank = run_cluster_with(RANKS, cfg, move |mut comm| {
            let pool = shared_pool(2).unwrap();
            let mut s = Scheduler::new(hist(), SchedArgs::new(2, 1), pool).unwrap();
            s.set_combine_strategy(strategy);
            s.set_collect_stats(true);
            s.set_spill_budget(budget).unwrap();
            let mut out = vec![0u64; KEYS];
            let mut runs = 0;
            for t in 0..STEPS {
                let data = partition(t, comm.rank());
                s.run_dist(&mut comm, &data, &mut out).unwrap();
                runs += s.last_stats().spill_runs;
            }
            (s.canonical_map_bytes().unwrap(), runs)
        });
        let mut min_runs = usize::MAX;
        for (rank, (bytes, runs)) in per_rank.iter().enumerate() {
            assert_eq!(bytes, &per_rank[0].0, "rank {rank} diverged");
            min_runs = min_runs.min(*runs);
        }
        (per_rank.into_iter().next().unwrap().0, min_runs)
    }

    let (reference, none) = dist_on(TransportKind::InProcess, CombineStrategy::default(), None);
    assert_eq!(none, 0, "unbounded cluster must write no spill runs");
    for (name, kind) in [("inproc", TransportKind::InProcess), ("tcp", TransportKind::Tcp)] {
        for strategy in [CombineStrategy::Sharded, CombineStrategy::Gossip] {
            let (bytes, min_runs) = dist_on(kind, strategy, Some(BUDGET));
            assert!(
                min_runs >= 2,
                "every rank must spill at least twice ({name}, {strategy:?}, got {min_runs})"
            );
            assert_eq!(bytes, reference, "{name} {strategy:?} diverged from unbounded");
        }
    }
}
