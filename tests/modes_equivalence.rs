//! The paper's "same analytics code everywhere" guarantee: time sharing,
//! space sharing, copy-input, trigger-disabled, and offline deployments of
//! the same application must produce identical results.

use smart_insitu::analytics::{Histogram, MovingMedian};
use smart_insitu::baseline::OfflineStore;
use smart_insitu::core::space::SpaceShared;
use smart_insitu::prelude::*;
use smart_insitu::sim::MiniLulesh;

fn simulate_steps(steps: usize) -> Vec<Vec<f64>> {
    let mut sim = MiniLulesh::serial(8, 0.3);
    (0..steps).map(|_| sim.step_serial().to_vec()).collect()
}

fn hist_scheduler(threads: usize) -> Scheduler<Histogram> {
    let pool = smart_insitu::pool::shared_pool(threads).unwrap();
    Scheduler::new(Histogram::new(0.0, 10.0, 24), SchedArgs::new(threads, 1), pool).unwrap()
}

#[test]
fn time_sharing_space_sharing_and_offline_agree() {
    let steps = simulate_steps(6);

    // Time sharing (zero copy).
    let mut time_out = vec![0u64; 24];
    let mut s = hist_scheduler(2);
    for step in &steps {
        s.run(step, &mut time_out).unwrap();
    }

    // Space sharing (through the circular buffer, concurrent producer).
    let mut space_out = vec![0u64; 24];
    {
        let mut shared = SpaceShared::new(hist_scheduler(2), 2);
        let feeder = shared.feeder();
        let steps_clone = steps.clone();
        let producer = std::thread::spawn(move || {
            for step in &steps_clone {
                feeder.feed(step).unwrap();
            }
            feeder.close();
        });
        shared.run_to_end(&mut space_out).unwrap();
        producer.join().unwrap();
    }

    // Offline (store first, analyze after).
    let mut offline_out = vec![0u64; 24];
    {
        let store = OfflineStore::temp("modes-test").unwrap();
        for (i, step) in steps.iter().enumerate() {
            store.write_step(0, i, step).unwrap();
        }
        let mut s = hist_scheduler(2);
        for i in 0..steps.len() {
            let data = store.read_step(0, i).unwrap();
            s.run(&data, &mut offline_out).unwrap();
        }
        store.destroy().unwrap();
    }

    assert_eq!(time_out, space_out, "time vs space sharing");
    assert_eq!(time_out, offline_out, "in-situ vs offline");
}

#[test]
fn copy_input_equals_zero_copy() {
    let steps = simulate_steps(4);
    let mut zero = vec![0u64; 24];
    let mut copied = vec![0u64; 24];

    let mut a = hist_scheduler(2);
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    let mut b = Scheduler::new(
        Histogram::new(0.0, 10.0, 24),
        SchedArgs::new(2, 1).with_copy_input(true),
        pool,
    )
    .unwrap();

    for step in &steps {
        a.run(step, &mut zero).unwrap();
        b.run(step, &mut copied).unwrap();
    }
    assert_eq!(zero, copied);
}

#[test]
fn early_emission_equals_no_trigger_for_window_analytics() {
    let steps = simulate_steps(3);
    let n = steps[0].len();

    for threads in [1, 3] {
        let run = |disable: bool, data: &[f64]| -> Vec<f64> {
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let args = SchedArgs::new(threads, 1).with_trigger_disabled(disable);
            let mut s = Scheduler::new(MovingMedian::new(7, n), args, pool).unwrap();
            let mut out = vec![0.0f64; n];
            s.run2(data, &mut out).unwrap();
            out
        };
        for step in &steps {
            let optimized = run(false, step);
            let unoptimized = run(true, step);
            assert_eq!(optimized, unoptimized, "threads={threads}");
        }
    }
}

#[test]
fn thread_count_never_changes_exact_counts() {
    let steps = simulate_steps(3);
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4] {
        let mut out = vec![0u64; 24];
        let mut s = hist_scheduler(threads);
        for step in &steps {
            s.run(step, &mut out).unwrap();
        }
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "threads={threads}"),
        }
    }
}
