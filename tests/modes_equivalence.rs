//! The paper's "same analytics code everywhere" guarantee: time sharing,
//! space sharing, copy-input, trigger-disabled, and offline deployments of
//! the same application must produce identical results.

use smart_insitu::analytics::{Histogram, MovingMedian};
use smart_insitu::baseline::OfflineStore;
use smart_insitu::core::space::SpaceShared;
use smart_insitu::prelude::*;
use smart_insitu::sim::MiniLulesh;

fn simulate_steps(steps: usize) -> Vec<Vec<f64>> {
    let mut sim = MiniLulesh::serial(8, 0.3);
    (0..steps).map(|_| sim.step_serial().to_vec()).collect()
}

fn hist_scheduler(threads: usize) -> Scheduler<Histogram> {
    let pool = smart_insitu::pool::shared_pool(threads).unwrap();
    Scheduler::new(Histogram::new(0.0, 10.0, 24), SchedArgs::new(threads, 1), pool).unwrap()
}

#[test]
fn time_sharing_space_sharing_and_offline_agree() {
    let steps = simulate_steps(6);

    // Time sharing (zero copy).
    let mut time_out = vec![0u64; 24];
    let mut s = hist_scheduler(2);
    for step in &steps {
        s.run(step, &mut time_out).unwrap();
    }

    // Space sharing (through the circular buffer, concurrent producer).
    let mut space_out = vec![0u64; 24];
    {
        let mut shared = SpaceShared::new(hist_scheduler(2), 2);
        let feeder = shared.feeder();
        let steps_clone = steps.clone();
        let producer = std::thread::spawn(move || {
            for step in &steps_clone {
                feeder.feed(step).unwrap();
            }
            feeder.close();
        });
        shared.run_to_end(&mut space_out).unwrap();
        producer.join().unwrap();
    }

    // Offline (store first, analyze after).
    let mut offline_out = vec![0u64; 24];
    {
        let store = OfflineStore::temp("modes-test").unwrap();
        for (i, step) in steps.iter().enumerate() {
            store.write_step(0, i, step).unwrap();
        }
        let mut s = hist_scheduler(2);
        for i in 0..steps.len() {
            let data = store.read_step(0, i).unwrap();
            s.run(&data, &mut offline_out).unwrap();
        }
        store.destroy().unwrap();
    }

    assert_eq!(time_out, space_out, "time vs space sharing");
    assert_eq!(time_out, offline_out, "in-situ vs offline");
}

#[test]
fn copy_input_equals_zero_copy() {
    let steps = simulate_steps(4);
    let mut zero = vec![0u64; 24];
    let mut copied = vec![0u64; 24];

    let mut a = hist_scheduler(2);
    let pool = smart_insitu::pool::shared_pool(2).unwrap();
    let mut b = Scheduler::new(
        Histogram::new(0.0, 10.0, 24),
        SchedArgs::new(2, 1).with_copy_input(true),
        pool,
    )
    .unwrap();

    for step in &steps {
        a.run(step, &mut zero).unwrap();
        b.run(step, &mut copied).unwrap();
    }
    assert_eq!(zero, copied);
}

#[test]
fn early_emission_equals_no_trigger_for_window_analytics() {
    let steps = simulate_steps(3);
    let n = steps[0].len();

    for threads in [1, 3] {
        let run = |disable: bool, data: &[f64]| -> Vec<f64> {
            let pool = smart_insitu::pool::shared_pool(threads).unwrap();
            let args = SchedArgs::new(threads, 1).with_trigger_disabled(disable);
            let mut s = Scheduler::new(MovingMedian::new(7, n), args, pool).unwrap();
            let mut out = vec![0.0f64; n];
            s.run2(data, &mut out).unwrap();
            out
        };
        for step in &steps {
            let optimized = run(false, step);
            let unoptimized = run(true, step);
            assert_eq!(optimized, unoptimized, "threads={threads}");
        }
    }
}

#[test]
fn thread_count_never_changes_exact_counts() {
    let steps = simulate_steps(3);
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4] {
        let mut out = vec![0u64; 24];
        let mut s = hist_scheduler(threads);
        for step in &steps {
            s.run(step, &mut out).unwrap();
        }
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "threads={threads}"),
        }
    }
}

/// The in-transit placement must be indistinguishable from the in-situ
/// ones at the combination-map level: dedicated staging ranks fed over the
/// streaming transport compute bit-for-bit the map that time sharing and
/// space sharing compute. Integer-valued inputs keep every f64 merge exact,
/// so the comparison really is byte equality of the serialized maps.
mod in_transit_agrees_with_in_situ {
    use super::*;
    use smart_insitu::analytics::KMeans;
    use smart_insitu::comm::{run_cluster, StreamConfig};
    use smart_insitu::core::in_transit::{run_in_transit, InTransitConfig, Producer, Topology};
    use smart_insitu::core::KeyMode;

    const PRODUCERS: usize = 4;
    const STAGERS: usize = 2;
    const PART: usize = 16; // elements per producer per step
    const STEPS: usize = 3;
    const WINDOW: usize = 2;

    fn element(t: usize, p: usize, i: usize) -> f64 {
        ((t * 31 + p * 7 + i) % 10) as f64
    }

    fn partition(t: usize, p: usize) -> Vec<f64> {
        (0..PART).map(|i| element(t, p, i)).collect()
    }

    fn step_concat(t: usize) -> Vec<f64> {
        (0..PRODUCERS).flat_map(|p| partition(t, p)).collect()
    }

    fn map_bytes<A: Analytics>(s: &Scheduler<A>) -> Vec<u8> {
        smart_insitu::wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap()
    }

    /// Run all three placements of the same analytics and return their
    /// canonical combination-map bytes (time, space, transit).
    fn three_placements<A, F>(make: F, key_mode: KeyMode, out_len: usize) -> [Vec<u8>; 3]
    where
        A: Analytics<In = f64> + 'static,
        A::Out: Default,
        F: Fn(usize) -> Scheduler<A> + Sync,
    {
        // Time sharing: one rank per producer, one `run*_dist` per step.
        let time = {
            let make = &make;
            let per_rank = run_cluster(PRODUCERS, move |mut comm| {
                let mut s = make(comm.size());
                let mut out: Vec<A::Out> = (0..out_len).map(|_| A::Out::default()).collect();
                for t in 0..STEPS {
                    let data = partition(t, comm.rank());
                    match key_mode {
                        KeyMode::Single => s.run_dist(&mut comm, &data, &mut out).unwrap(),
                        KeyMode::Multi => s.run2_dist(&mut comm, &data, &mut out).unwrap(),
                    }
                }
                map_bytes(&s)
            });
            for rank in 1..per_rank.len() {
                assert_eq!(per_rank[rank], per_rank[0], "time-sharing rank {rank} diverged");
            }
            per_rank.into_iter().next().unwrap()
        };

        // Space sharing: a concurrent producer feeds whole time-steps
        // through the circular buffer; one `run*_step` call per step keeps
        // the step structure (and thus `post_combine` cadence) identical.
        let space = {
            let mut shared = SpaceShared::new(make(1), 2);
            let feeder = shared.feeder();
            let producer = std::thread::spawn(move || {
                for t in 0..STEPS {
                    feeder.feed(&step_concat(t)).unwrap();
                }
                feeder.close();
            });
            let mut out: Vec<A::Out> = (0..out_len).map(|_| A::Out::default()).collect();
            loop {
                let more = match key_mode {
                    KeyMode::Single => shared.run_step(&mut out).unwrap(),
                    KeyMode::Multi => shared.run2_step(&mut out).unwrap(),
                };
                if !more {
                    break;
                }
            }
            producer.join().unwrap();
            map_bytes(shared.scheduler())
        };

        // In transit: producers stream their partitions to staging ranks
        // that run the scheduler over the whole staging group.
        let transit = {
            let config = InTransitConfig::default().with_stream(StreamConfig::with_window(WINDOW));
            let outcome = run_in_transit(
                Topology::new(PRODUCERS, STAGERS),
                config,
                key_mode,
                |prod: &mut Producer<f64>| {
                    for t in 0..STEPS {
                        prod.feed(prod.index() * PART, &partition(t, prod.index()))?;
                    }
                    Ok(())
                },
                |_s| {
                    let sched = make(1);
                    let out: Vec<A::Out> = (0..out_len).map(|_| A::Out::default()).collect();
                    Ok((sched, out))
                },
            );
            let (_producers, stagers) = outcome.into_result().unwrap();
            for s in 1..stagers.len() {
                assert_eq!(stagers[s].map_bytes, stagers[0].map_bytes, "stager {s} diverged");
            }
            // The credit window bounds the staging-side buffer: at no
            // point may more than `window` un-consumed steps of one
            // producer's payload sit on the stager.
            let payload = smart_insitu::wire::encoded_len(&partition(0, 0)).unwrap();
            for stager in &stagers {
                for stream in &stager.streams {
                    assert!(
                        stream.buffered_bytes_peak <= (WINDOW as u64) * payload,
                        "buffered {} > window bound {}",
                        stream.buffered_bytes_peak,
                        (WINDOW as u64) * payload
                    );
                }
            }
            stagers.into_iter().next().unwrap().map_bytes
        };

        [time, space, transit]
    }

    #[test]
    fn histogram_maps_are_bit_identical_across_placements() {
        let [time, space, transit] = three_placements(
            |_ranks| {
                let pool = smart_insitu::pool::shared_pool(2).unwrap();
                Scheduler::new(Histogram::new(0.0, 10.0, 24), SchedArgs::new(2, 1), pool).unwrap()
            },
            KeyMode::Single,
            24,
        );
        assert_eq!(time, space, "histogram: time vs space sharing");
        assert_eq!(time, transit, "histogram: in-situ vs in-transit");
    }

    #[test]
    fn kmeans_maps_are_bit_identical_across_placements() {
        let (k, dims, iters) = (3usize, 4usize, 4usize);
        let init: Vec<f64> = (0..k * dims).map(|i| (i * 5 % 11) as f64).collect();
        let [time, space, transit] = three_placements(
            move |_ranks| {
                let pool = smart_insitu::pool::shared_pool(2).unwrap();
                let args = SchedArgs::new(2, dims).with_extra(init.clone()).with_iters(iters);
                Scheduler::new(KMeans::new(k, dims), args, pool).unwrap()
            },
            KeyMode::Single,
            k,
        );
        assert_eq!(time, space, "k-means: time vs space sharing");
        assert_eq!(time, transit, "k-means: in-situ vs in-transit");
    }
}
