//! In-situ k-means over a real simulation on a (simulated) cluster — the
//! paper's flagship scenario: Listing 1's three added lines, here in their
//! Rust form, inside an SPMD region.
//!
//! Four ranks each run a Heat3D slab; after every time-step the freshly
//! simulated partition is analyzed in place (time sharing, zero copy), and
//! global combination gives every rank the cluster centroids of the whole
//! distributed field. The centroids visibly track the heat diffusion — the
//! paper's "k-means tracks the movement of centroids in different
//! time-steps" use case.
//!
//! ```sh
//! cargo run --release --example insitu_kmeans
//! ```

use smart_insitu::analytics::KMeans;
use smart_insitu::comm::run_cluster;
use smart_insitu::prelude::*;
use smart_insitu::sim::Heat3D;

const RANKS: usize = 4;
const STEPS: usize = 12;
const K: usize = 4;
const DIMS: usize = 4;

fn main() {
    let (nx, ny, nz) = (24, 24, 24);

    let per_rank_tracks = run_cluster(RANKS, |mut comm| {
        // --- simulation setup (unchanged by Smart) ----------------------
        let mut sim = Heat3D::new(nx, ny, nz, 0.1, comm.rank(), comm.size());

        // --- the 3 lines of Listing 1 -----------------------------------
        let init: Vec<f64> = (0..K * DIMS).map(|i| (i / DIMS) as f64 * 25.0 + 12.5).collect();
        let args = SchedArgs::new(2, DIMS).with_extra(init).with_iters(5);
        let mut smart =
            Scheduler::new(KMeans::new(K, DIMS), args, smart_insitu::pool::shared_pool(2).unwrap())
                .expect("scheduler");

        let mut track = Vec::new();
        let mut out = vec![Vec::new(); K];
        for _ in 0..STEPS {
            let data = sim.step(&mut comm).expect("simulation step");
            smart.run_dist(&mut comm, data, &mut out).expect("analytics");
            // Record the mean centroid temperature this step.
            let mean: f64 =
                out.iter().map(|c| c.iter().sum::<f64>() / DIMS as f64).sum::<f64>() / K as f64;
            track.push(mean);
        }
        track
    });

    // Global combination means every rank holds identical centroids.
    for track in &per_rank_tracks[1..] {
        assert_eq!(track, &per_rank_tracks[0], "ranks must agree after global combination");
    }

    println!("mean centroid temperature per time-step (heat diffusing from a hot block):");
    for (step, mean) in per_rank_tracks[0].iter().enumerate() {
        let bar = "#".repeat((mean / 2.0).round() as usize);
        println!("step {step:>2}: {mean:>7.3} | {bar}");
    }
    println!("\nall {RANKS} ranks converged to identical centroids at every step.");
}
