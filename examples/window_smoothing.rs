//! Window-based in-situ preprocessing (paper §4): smooth a noisy signal
//! with three window kernels — moving average, Gaussian, Savitzky–Golay —
//! and show what the early-emission optimization saves.
//!
//! ```sh
//! cargo run --release --example window_smoothing
//! ```

use smart_insitu::analytics::{GaussianSmoother, MovingAverage, SavitzkyGolay};
use smart_insitu::prelude::*;

const N: usize = 200_000;
const WINDOW: usize = 25;

fn variance(v: &[f64]) -> f64 {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

fn run_window<A>(app: A, data: &[f64], disable_trigger: bool) -> (Vec<f64>, usize)
where
    A: Analytics<In = f64, Out = f64, Extra = ()>,
{
    let pool = smart_insitu::pool::shared_pool(2).expect("pool");
    let args = SchedArgs::new(2, 1).with_trigger_disabled(disable_trigger);
    let mut s = Scheduler::new(app, args, pool).expect("scheduler");
    let mut out = vec![0.0f64; data.len()];
    s.run2(data, &mut out).expect("run2");
    (out, s.combination_map().len())
}

fn main() {
    // A slow sine wave buried in deterministic high-frequency noise.
    let data: Vec<f64> = (0..N)
        .map(|i| {
            let t = i as f64 / N as f64;
            (t * std::f64::consts::TAU * 3.0).sin()
                + 0.5 * (((i * 2654435761) % 997) as f64 / 997.0 - 0.5)
        })
        .collect();
    let noisy_var = variance(&data);

    println!("signal: {N} samples, window {WINDOW}, input variance {noisy_var:.4}\n");
    println!("{:<18} {:>12} {:>22}", "kernel", "out variance", "objects left in map");

    let (avg, avg_left) = run_window(MovingAverage::new(WINDOW, N), &data, false);
    println!("{:<18} {:>12.4} {:>22}", "moving-average", variance(&avg), avg_left);

    let (gauss, g_left) = run_window(GaussianSmoother::new(WINDOW, N), &data, false);
    println!("{:<18} {:>12.4} {:>22}", "gaussian", variance(&gauss), g_left);

    let (sg, sg_left) = run_window(SavitzkyGolay::new(WINDOW, 2, N), &data, false);
    println!("{:<18} {:>12.4} {:>22}", "savitzky-golay", variance(&sg), sg_left);

    // The optimization's effect: without the trigger, every window's
    // reduction object survives to the combination map.
    let (_, no_trigger_left) = run_window(MovingAverage::new(WINDOW, N), &data, true);
    println!(
        "\nearly emission kept {avg_left} objects live; disabling the trigger kept {no_trigger_left} \
         (paper §4: O(window) vs O(input))."
    );
    assert!(no_trigger_left >= N);
    assert!(avg_left < N / 100);

    // Savitzky–Golay preserves the waveform better than plain averaging:
    // compare against the clean sine.
    let clean: Vec<f64> =
        (0..N).map(|i| ((i as f64 / N as f64) * std::f64::consts::TAU * 3.0).sin()).collect();
    let rmse = |a: &[f64]| {
        (a.iter().zip(&clean).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / N as f64).sqrt()
    };
    println!(
        "\nRMSE vs clean signal: moving-average {:.4}, gaussian {:.4}, savitzky-golay {:.4}",
        rmse(&avg),
        rmse(&gauss),
        rmse(&sg)
    );
}
