//! The Fig. 1 story as a program: the *same* Smart analytics code runs
//! in-situ (on the live simulation buffer) and offline (store first,
//! analyze after), produces identical results, and pays very different
//! I/O costs.
//!
//! ```sh
//! cargo run --release --example offline_vs_insitu
//! ```

use smart_insitu::analytics::Histogram;
use smart_insitu::baseline::OfflineStore;
use smart_insitu::prelude::*;
use smart_insitu::sim::Heat3D;
use std::time::Instant;

const STEPS: usize = 8;

fn histogram_scheduler() -> Scheduler<Histogram> {
    let pool = smart_insitu::pool::shared_pool(2).expect("pool");
    Scheduler::new(Histogram::new(0.0, 100.0, 20), SchedArgs::new(2, 1), pool).expect("scheduler")
}

fn main() {
    // ---------------- in-situ ------------------------------------------
    let started = Instant::now();
    let mut sim = Heat3D::serial(32, 32, 32, 0.1);
    let mut smart = histogram_scheduler();
    let mut insitu_out = vec![0u64; 20];
    for _ in 0..STEPS {
        let data = sim.step_serial();
        smart.run(data, &mut insitu_out).expect("in-situ analytics");
    }
    let insitu_time = started.elapsed();

    // ---------------- offline ------------------------------------------
    let started = Instant::now();
    let store = OfflineStore::temp("example").expect("store");
    let mut sim = Heat3D::serial(32, 32, 32, 0.1);
    for step in 0..STEPS {
        let data = sim.step_serial();
        store.write_step(0, step, data).expect("write");
    }
    let stored = store.stored_bytes().expect("stored bytes");
    let mut smart = histogram_scheduler();
    let mut offline_out = vec![0u64; 20];
    for step in 0..STEPS {
        let data = store.read_step(0, step).expect("read");
        smart.run(&data, &mut offline_out).expect("offline analytics");
    }
    let offline_time = started.elapsed();
    store.destroy().expect("cleanup");

    // ---------------- comparison ----------------------------------------
    assert_eq!(insitu_out, offline_out, "identical analytics code, identical results");
    println!("same Smart histogram code, two deployment modes, identical results:\n");
    println!("  in-situ : {:>10.2?}  (no storage touched)", insitu_time);
    println!(
        "  offline : {:>10.2?}  ({} written to and read back from disk)",
        offline_time,
        smart_insitu::memtrack::fmt_bytes(stored as usize),
    );
    println!(
        "\nin-situ avoided {} of I/O traffic — on a parallel file system shared by a \
         whole machine, that is the paper's up-to-10.4x gap (Fig. 1).",
        smart_insitu::memtrack::fmt_bytes(2 * stored as usize),
    );
}
