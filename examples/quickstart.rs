//! Quickstart: a complete Smart analytics program in ~40 lines.
//!
//! Builds an equi-width histogram over data produced by the sequential
//! emulator — the same setup as the paper's Spark comparison (§5.2) —
//! using 2 analytics threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smart_insitu::analytics::Histogram;
use smart_insitu::prelude::*;
use smart_insitu::sim::NormalEmulator;

fn main() {
    // "Simulation": 10 time-steps of 100k normally distributed doubles.
    let mut emulator = NormalEmulator::standard(42);

    // Smart scheduler: 2 threads, unit chunk of 1 element.
    let app = Histogram::new(-4.0, 4.0, 32);
    let pool = smart_insitu::pool::shared_pool(2).expect("pool");
    let mut smart = Scheduler::new(app, SchedArgs::new(2, 1), pool).expect("scheduler");

    let mut out = vec![0u64; 32];
    for _step in 0..10 {
        let data = emulator.step(100_000);
        // Time sharing: analyze the buffer in place, no copy.
        smart.run(&data, &mut out).expect("analytics");
    }

    // Render the histogram.
    let peak = *out.iter().max().unwrap() as f64;
    println!("histogram of 1M standard-normal samples (32 buckets over [-4, 4)):\n");
    for (i, &count) in out.iter().enumerate() {
        let x = -4.0 + 8.0 * (i as f64 + 0.5) / 32.0;
        let bar = "#".repeat((count as f64 / peak * 60.0).round() as usize);
        println!("{x:>6.2} | {bar} {count}");
    }
    let total: u64 = out.iter().sum();
    assert_eq!(total, 1_000_000);
    println!("\ntotal samples: {total}");
}
