//! Two chained Smart-job patterns from the paper:
//!
//! 1. **Pre-job** (§3.5): the histogram listing assumes the value range "can
//!    be taken as a priori knowledge or be retrieved by an earlier Smart
//!    analytics job". Stage A runs `ValueRange` across the cluster; its
//!    global result parameterizes the histogram that follows.
//! 2. **Pipeline** (§3.1): a Savitzky–Golay preprocessing job with *local*
//!    output (global combination off) feeds a 3-D grid aggregation job via
//!    [`Pipeline`] — the "smoothing, filtering, reorganization" chain.
//!
//! ```sh
//! cargo run --release --example adaptive_histogram
//! ```

use smart_insitu::analytics::{Dims3, Grid3DAggregation, Histogram, SavitzkyGolay, ValueRange};
use smart_insitu::comm::run_cluster;
use smart_insitu::core::pipeline::{KeyMode, Pipeline};
use smart_insitu::prelude::*;
use smart_insitu::sim::MiniLulesh;

const RANKS: usize = 2;
const EDGE: usize = 12;
const BUCKETS: usize = 16;

fn main() {
    let results = run_cluster(RANKS, |mut comm| {
        let mut sim = MiniLulesh::new(EDGE, 0.3, comm.rank(), comm.size());
        for _ in 0..10 {
            sim.step(&mut comm).expect("simulate");
        }
        let data = sim.output().to_vec();
        let total = data.len() * comm.size();
        let offset = sim.partition_offset();

        // ---- stage A: the range pre-job --------------------------------
        let pool = smart_insitu::pool::shared_pool(2).unwrap();
        let mut range_job =
            Scheduler::new(ValueRange, SchedArgs::new(2, 1), pool).expect("range job");
        range_job.run_dist(&mut comm, &data, &mut []).expect("range");
        let (min, max) = ValueRange::range(range_job.combination_map()).expect("non-empty field");

        // ---- stage B: histogram parameterized by stage A ---------------
        let pool = smart_insitu::pool::shared_pool(2).unwrap();
        let hist = Histogram::new(min, max + 1e-12, BUCKETS);
        let mut hist_job = Scheduler::new(hist, SchedArgs::new(2, 1), pool).expect("hist job");
        let mut counts = vec![0u64; BUCKETS];
        hist_job.run_dist(&mut comm, &data, &mut counts).expect("histogram");

        // ---- stage C: smoothing → 3-D block aggregation pipeline --------
        let dims = Dims3 { nx: EDGE, ny: EDGE, nz: EDGE * comm.size() };
        let smooth = SavitzkyGolay::new(7, 2, total);
        let agg = Grid3DAggregation::new(dims, (EDGE / 2, EDGE / 2, EDGE / 2));
        let blocks = agg.num_blocks();
        let p1 = Scheduler::new(
            smooth,
            SchedArgs::new(2, 1).with_partition(offset, total),
            smart_insitu::pool::shared_pool(2).unwrap(),
        )
        .expect("smoother");
        let p2 = Scheduler::new(
            agg,
            SchedArgs::new(2, 1).with_partition(offset, total),
            smart_insitu::pool::shared_pool(2).unwrap(),
        )
        .expect("aggregator");
        let mut pipeline = Pipeline::new(p1, p2, KeyMode::Multi, KeyMode::Single, total)
            .with_second_input_range(offset..offset + data.len());
        let mut coarse = vec![0.0f64; blocks];
        pipeline.run_dist(&mut comm, &data, &mut coarse).expect("pipeline");

        ((min, max), counts, coarse)
    });

    // All ranks agree on every global result.
    for r in &results[1..] {
        assert_eq!(r.0, results[0].0);
        assert_eq!(r.1, results[0].1);
    }

    // Early emission converts each completed block on the rank that
    // finished it (only split-spanning residuals travel), so the global
    // view overlays the per-rank outputs.
    let ((min, max), counts, _) = &results[0];
    let blocks = results[0].2.len();
    let coarse: Vec<f64> = (0..blocks)
        .map(|b| {
            results.iter().map(|r| r.2[b]).fold(0.0f64, |acc, v| if v != 0.0 { v } else { acc })
        })
        .collect();
    let coarse = &coarse;
    println!("value range found by the pre-job: [{min:.4}, {max:.4}]\n");
    println!("adaptive histogram ({BUCKETS} buckets over the discovered range):");
    let peak = *counts.iter().max().unwrap() as f64;
    for (i, &c) in counts.iter().enumerate() {
        let x = min + (max - min) * (i as f64 + 0.5) / BUCKETS as f64;
        let bar = "#".repeat((c as f64 / peak * 50.0).round() as usize);
        println!("{x:>9.4} | {bar} {c}");
    }
    let total: u64 = counts.iter().sum();
    assert_eq!(total as usize, EDGE * EDGE * EDGE * RANKS);

    println!("\nsmoothed multi-resolution view ({} blocks):", coarse.len());
    let cmax = coarse.iter().cloned().fold(f64::MIN, f64::max);
    for (b, &v) in coarse.iter().enumerate() {
        let bar = "#".repeat(((v / cmax) * 40.0).max(0.0).round() as usize);
        println!("block {b:>2}: {v:>8.4} | {bar}");
    }
}
