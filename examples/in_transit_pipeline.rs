//! In-transit pipeline: Heat3D on 4 simulation ranks streaming to 2
//! dedicated staging ranks that histogram the temperature field.
//!
//! The paper's two placements (§3.2) co-locate analytics with the
//! simulation; this example exercises the third placement added by
//! `smart_core::in_transit`. The simulation ranks keep their halo exchange
//! on the world communicator and pay only wire serialization plus
//! credit-window backpressure per time-step, while the staging ranks run
//! the full Smart pipeline (reduction map → local combination → global
//! combination) among themselves.
//!
//! ```sh
//! cargo run --release --example in_transit_pipeline
//! ```

use smart_insitu::analytics::Histogram;
use smart_insitu::core::{
    run_in_transit, InTransitConfig, KeyMode, Producer, SchedArgs, Scheduler, SmartError, Topology,
};
use smart_insitu::sim::Heat3D;

const GRID: usize = 24; // 24³ global grid, slab-decomposed over the producers
const R: f64 = 0.15; // stencil parameter, stable for r ≤ 1/6
const STEPS: usize = 12;
const PRODUCERS: usize = 4;
const STAGERS: usize = 2;
const WINDOW: usize = 2; // credit window: steps of lookahead per producer
const BUCKETS: usize = 24;

fn main() {
    let topo = Topology::new(PRODUCERS, STAGERS);
    let outcome = run_in_transit(
        topo,
        InTransitConfig::with_window(WINDOW),
        KeyMode::Single,
        |prod: &mut Producer<f64>| {
            // Each producer owns a Z-slab and exchanges ghost planes with
            // its neighbours exactly as it would without analytics.
            let mut sim = Heat3D::new(GRID, GRID, GRID, R, prod.index(), prod.producers());
            let offset = sim.partition_offset();
            for _ in 0..STEPS {
                let field = sim.step(prod.comm()).map_err(SmartError::Comm)?;
                // Hand the time-step to the stager; returns as soon as the
                // data is serialized, blocking only on the credit window.
                prod.feed(offset, field)?;
            }
            Ok(sim.partition_len())
        },
        |_stager| {
            let pool = smart_insitu::pool::shared_pool(2)?;
            let app = Histogram::new(0.0, 100.0, BUCKETS);
            let sched = Scheduler::new(app, SchedArgs::new(2, 1), pool)?;
            Ok((sched, vec![0u64; BUCKETS]))
        },
    );

    let (producers, stagers) = outcome.into_result().expect("in-transit run");

    // Global combination ran among the staging ranks: they agree bit for bit.
    for s in 1..stagers.len() {
        assert_eq!(stagers[s].map_bytes, stagers[0].map_bytes, "stager {s} diverged");
        assert_eq!(stagers[s].out, stagers[0].out);
    }
    let out = &stagers[0].out;
    let total: u64 = out.iter().sum();
    assert_eq!(total as usize, STEPS * GRID * GRID * GRID, "every sample histogrammed");

    println!(
        "Heat3D {GRID}³ on {PRODUCERS} simulation ranks → {STAGERS} staging ranks, \
         {STEPS} steps, credit window {WINDOW}\n"
    );
    println!("temperature histogram ({BUCKETS} buckets over [0, 100)), √-scaled bars:\n");
    let peak = *out.iter().max().unwrap() as f64;
    for (i, &count) in out.iter().enumerate() {
        let t = 100.0 * (i as f64 + 0.5) / BUCKETS as f64;
        let bar = "#".repeat(((count as f64 / peak).sqrt() * 56.0).round() as usize);
        println!("{t:>6.1} | {bar} {count}");
    }

    println!("\ntransport:");
    for (s, stager) in stagers.iter().enumerate() {
        let stats = &stager.stats;
        println!(
            "  stager {s}: {} steps, {} KiB received, recv-busy {:.1?}, \
             producers' send-busy {:.1?}",
            stager.steps,
            stats.transit_bytes / 1024,
            stats.transit_recv_busy,
            stats.transit_send_busy,
        );
        for (rx, p) in stager.streams.iter().zip(topo.producers_of(s)) {
            // The credit window bounds the staging-side buffer: at most
            // WINDOW un-consumed time-step payloads per producer.
            let step_bytes =
                smart_insitu::wire::encoded_len(&vec![0.0f64; producers[p].result]).unwrap();
            let bound = WINDOW as u64 * step_bytes;
            assert!(
                rx.buffered_bytes_peak <= bound,
                "producer {p}: buffered peak {} exceeds credit-window bound {bound}",
                rx.buffered_bytes_peak
            );
            println!(
                "    producer {p}: buffered peak {} B ≤ window bound {bound} B \
                 (credit waits on the sim side: {:.1?})",
                rx.buffered_bytes_peak, producers[p].stream.credit_wait
            );
        }
    }
}
