//! Multi-tenant service tier: three tenants share one Heat3D stream.
//!
//! One simulation, one staged scan per time-step, many analytics jobs —
//! the `smart-serve` deployment model. Tenants get token-bucket quotas,
//! jobs carry priorities and step budgets, two of the jobs declare the
//! same reduction and are coalesced into a single execution, and the
//! registry accounts latency and result bytes per tenant.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use smart_insitu::analytics::{Histogram, Moments};
use smart_insitu::serve::{
    CoalesceKey, JobSpec, Registry, RegistryConfig, SchedArgs, ServeDriver, SmartError, TenantQuota,
};
use smart_insitu::sim::Heat3D;

const GRID: usize = 20; // 20³ grid on a single simulation rank
const R: f64 = 0.15;
const STEPS: usize = 10;
const BUCKETS: usize = 32;
const THREADS: usize = 2;

fn main() {
    // Admission: a small registry with three tenants. `ops` gets a burst
    // of 1 and no refill — its second submission must bounce.
    let registry: Registry<f64> = Registry::new(RegistryConfig { max_active: 8 });
    registry.add_tenant("ops", TenantQuota::new(1, 0));
    registry.add_tenant("science", TenantQuota::new(4, 1));
    registry.add_tenant("archive", TenantQuota::unlimited());

    // `ops` and `science` want the same histogram over the temperature
    // field: same reduction, so they coalesce into one execution per step.
    let hist = CoalesceKey::new("histogram", "0:100:32");
    let spec_hist = || {
        JobSpec::new(Histogram::new(0.0, 100.0, BUCKETS), SchedArgs::new(THREADS, 1), BUCKETS)
            .with_coalesce(hist.clone())
    };
    let ops_hist =
        registry.submit(spec_hist().with_tenant("ops").with_priority(9)).expect("ops histogram");
    let sci_hist = registry
        .submit(spec_hist().with_tenant("science").with_priority(1))
        .expect("science histogram");
    // `science` also tracks the field's moments, but only for the first
    // half of the run.
    let sci_moments = registry
        .submit(
            JobSpec::new(Moments, SchedArgs::new(THREADS, 1), 0)
                .with_tenant("science")
                .with_steps(STEPS / 2),
        )
        .expect("science moments");
    // `archive` keeps a coarse histogram with a hard deadline.
    let archive = registry
        .submit(
            JobSpec::new(Histogram::new(0.0, 100.0, 8), SchedArgs::new(THREADS, 1), 8)
                .with_tenant("archive")
                .with_deadline(STEPS),
        )
        .expect("archive histogram");

    // A second `ops` submission exceeds the tenant's burst: typed
    // rejection, nothing queued, nothing stalled.
    match registry.submit(spec_hist().with_tenant("ops")) {
        Err(SmartError::QuotaExceeded { tenant, needed, available }) => {
            println!("rejected: tenant `{tenant}` needs {needed} token(s), has {available}");
        }
        other => panic!("expected a quota rejection, got {other:?}"),
    }

    // The stream: one driver staging each Heat3D step once for all jobs.
    let pool = smart_insitu::pool::shared_pool(THREADS).expect("pool");
    let mut driver = ServeDriver::new(registry.clone(), pool);
    driver.set_collect_stats(true);
    let mut sim = Heat3D::serial(GRID, GRID, GRID, R);
    for _ in 0..STEPS {
        let field = sim.step_serial();
        driver.step(&[(0, field)], None).expect("serve step");
    }
    let stats = driver.finish();

    // Per-job results: the coalesced pair is bit-identical.
    let ops_steps = ops_hist.join().expect("ops job");
    let sci_steps = sci_hist.join().expect("science job");
    assert_eq!(ops_steps.len(), STEPS);
    assert_eq!(
        ops_steps.last().map(|r| &r.out),
        sci_steps.last().map(|r| &r.out),
        "coalesced jobs see the same histogram"
    );
    assert_eq!(sci_moments.join().expect("moments job").len(), STEPS / 2);
    assert_eq!(archive.join().expect("archive job").len(), STEPS);

    println!(
        "\n{STEPS} steps served to {} jobs; staged {} KiB total (once per step, shared by all)",
        stats.jobs.len(),
        stats.staged_bytes / 1024
    );
    println!("\nper-tenant accounting:");
    println!(
        "{:<10} {:>6} {:>9} {:>9} {:>6} {:>12} {:>12}",
        "tenant", "jobs", "rejected", "job-steps", "done", "result bytes", "busy"
    );
    for tenant in registry.tenants() {
        let u = registry.usage(&tenant).expect("registered tenant");
        println!(
            "{:<10} {:>6} {:>9} {:>9} {:>6} {:>12} {:>12}",
            tenant,
            u.submitted,
            u.rejected,
            u.steps,
            u.completed,
            u.result_bytes,
            format!("{:.1?}", u.busy),
        );
    }
}
