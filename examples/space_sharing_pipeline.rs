//! Space-sharing mode (paper Listing 2 / Fig. 4): the simulation and the
//! analytics run *concurrently* as producer and consumer of a bounded
//! circular buffer, each on its own core group.
//!
//! A MiniLulesh blast simulation feeds energy fields into the buffer while
//! a moving-median smoother (robust to the shock front's impulse noise)
//! drains it. The simulation blocks when the buffer is full — exactly the
//! paper's back-pressure semantics.
//!
//! ```sh
//! cargo run --release --example space_sharing_pipeline
//! ```

use smart_insitu::analytics::MovingMedian;
use smart_insitu::core::space::SpaceShared;
use smart_insitu::prelude::*;
use smart_insitu::sim::MiniLulesh;

const STEPS: usize = 30;
const EDGE: usize = 16;
const WINDOW: usize = 11;

fn main() {
    let n = EDGE * EDGE * EDGE;

    // Analytics task: 2 dedicated threads, buffer of 3 time-steps.
    let app = MovingMedian::new(WINDOW, n);
    let pool = smart_insitu::pool::shared_pool(2).expect("pool");
    let scheduler = Scheduler::new(app, SchedArgs::new(2, 1), pool).expect("scheduler");
    let mut analytics = SpaceShared::new(scheduler, 3);
    let feeder = analytics.feeder();

    // Simulation task (producer): its own thread, its own pool in a real
    // deployment; the feed blocks when analytics falls behind.
    let producer = std::thread::spawn(move || {
        let mut sim = MiniLulesh::serial(EDGE, 0.3);
        let sim_pool = smart_insitu::pool::ThreadPool::new(2).expect("sim pool");
        for _ in 0..STEPS {
            let data = sim.step_parallel(&sim_pool, 2);
            feeder.feed(data).expect("feed");
        }
        feeder.close();
        sim.time()
    });

    // Consumer: drain every buffered time-step.
    let mut out = vec![0.0f64; n];
    let mut processed = 0usize;
    let mut peak_energy_track = Vec::new();
    loop {
        // Window analytics treat each time-step independently.
        analytics.scheduler_mut().reset();
        if !analytics.run2_step(&mut out).expect("analytics step") {
            break;
        }
        processed += 1;
        let peak = out.iter().cloned().fold(f64::MIN, f64::max);
        peak_energy_track.push(peak);
    }

    let sim_time = producer.join().expect("producer");
    println!("space-sharing pipeline processed {processed}/{STEPS} time-steps");
    println!("simulated physical time: {sim_time:.4}");
    println!("\nsmoothed peak energy per step (median window {WINDOW}):");
    for (step, peak) in peak_energy_track.iter().enumerate().step_by(3) {
        let bar = "#".repeat((peak * 400.0).min(70.0) as usize);
        println!("step {step:>2}: {peak:>8.4} | {bar}");
    }
    assert_eq!(processed, STEPS);
}
