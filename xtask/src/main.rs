//! `cargo xtask` — repo automation.
//!
//! The only subcommand today is `lint`: a plain-text invariant pass over the
//! workspace sources (no rustc plugins, no external parser — line scanning
//! with comment stripping), enforcing rules the compiler cannot:
//!
//! * **no-direct-sync** — all lock/channel/thread primitives come from the
//!   `smart-sync` facade, so the loom build swaps every one of them for
//!   model-checked shims. Direct `std::sync`, `std::thread`, `parking_lot`
//!   or `crossbeam` use outside the facade would silently escape the model
//!   checker.
//! * **no-direct-net** — raw sockets (`std::net`, `std::os::unix::net`,
//!   `TcpStream`/`TcpListener`/`UnixStream`/`UnixListener`) appear only
//!   under `crates/comm/src/transport/`. Everything else speaks through
//!   the `Transport` trait, so backends stay swappable (`SMART_TRANSPORT`)
//!   and the death-notice/EOS semantics are enforced in exactly one place.
//! * **safety-comment** — every `unsafe {` block and `unsafe impl` carries
//!   a `// SAFETY:` comment (mirrors `clippy::undocumented_unsafe_blocks`,
//!   which does not cover `unsafe impl` on stable).
//! * **measured-paths** — inside `crates/core/src`, `Instant::now` and
//!   `encoded_len` appear only in `observer.rs` (the Stopwatch/measurement
//!   gateway). This is the PR-3 invariant: with stats collection off the
//!   execution core performs *zero* measurement work.
//! * **no-lock-unwrap** — no `.lock().unwrap()` / `.lock().expect(`: facade
//!   mutexes are not poisoning (parking_lot surface), so unwrapping a lock
//!   result means someone bypassed the facade or is cargo-culting std.
//! * **no-fs-writes** — runtime code mutates the filesystem only through
//!   the `smart-ft` checkpoint store (`crates/ft/src/store.rs`). Durable
//!   state written anywhere else is invisible to the recovery driver, so a
//!   restart could not see it; deliberate exceptions (the offline baseline
//!   models file I/O as its cost) carry an explicit suppression.
//! * **kernel-hot-loop** — no per-element heap allocation (`Vec::new`,
//!   `vec![`, `Box::new`, `.to_vec()`, `with_capacity`, `String::from`,
//!   `format!`, `.collect()`) and no `Instant::now` inside `fn reduce_batch*`
//!   bodies. These kernels run per batch of 4096 chunks in the reduce hot
//!   loop; an allocation there is a per-batch (often per-element) malloc the
//!   whole batching seam exists to avoid. Reusable buffers come from
//!   `BatchSink::take_scratch`/`restore_scratch`.
//! * **serve-admission** — inside `crates/serve/src`, only `driver.rs` may
//!   construct a `Scheduler`. Every other path must go through
//!   `Registry::submit`, or the service tier's admission control (quotas,
//!   the active-job cap, per-tenant accounting) silently stops meaning
//!   anything.
//!
//! Suppress a finding by putting `lint:allow(<rule>)` in a comment on the
//! offending line or the line directly above it.
//!
//! `cargo xtask lint` first runs a built-in self-test seeding one violation
//! per rule (so a broken scanner fails loudly, not silently), then scans the
//! tree and reports findings with `path:line: [rule] message`.

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug)]
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            selftest();
            let root = workspace_root();
            let findings = scan_tree(&root);
            if findings.is_empty() {
                eprintln!("xtask lint: self-test ok, tree clean");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (expected: lint)");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            std::process::exit(2);
        }
    }
}

/// The workspace root: parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask sits in the workspace root").to_path_buf()
}

/// Collect the `.rs` files the lint pass covers: everything under `crates/`,
/// `src/`, `tests/`, and `examples/`, excluding build output.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn scan_tree(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in collect_sources(root) {
        let Ok(content) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_file(&rel, &content));
    }
    findings
}

/// Strip `//` comments. Naive about `//` inside string literals, which can
/// only hide code after a URL-bearing string — a false negative, never a
/// false positive.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// `true` if a `lint:allow(rule)` suppression covers `idx` (same line or the
/// line above).
fn suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let needle = format!("lint:allow({rule})");
    lines[idx].contains(&needle) || (idx > 0 && lines[idx - 1].contains(&needle))
}

/// Paths with test/bench/example code: the sync and measurement invariants
/// target runtime code only.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Scan one file. `path` is workspace-relative with `/` separators.
fn scan_file(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = content.lines().collect();

    // Everything from the first `#[cfg(test)]` down is treated as test code.
    // Convention in this repo: in-file test modules close out the file.
    let test_from = lines.iter().position(|l| l.contains("#[cfg(test)]")).unwrap_or(lines.len());

    let in_facade = path.starts_with("crates/sync/");
    // The allocator cannot depend on the facade: it must not allocate or
    // yield inside alloc paths, and must work before any model is running.
    let sync_exempt = in_facade || path.starts_with("crates/memtrack/") || is_test_path(path);

    // kernel-hot-loop body tracking: `pending` between the `fn reduce_batch*`
    // signature and its opening brace, `depth >= 1` inside the body.
    let mut kernel_pending = false;
    let mut kernel_depth: i32 = 0;

    for (idx, raw) in lines.iter().enumerate() {
        let line = strip_comment(raw);
        let lineno = idx + 1;
        let in_test_region = idx >= test_from || is_test_path(path);

        // --- kernel-hot-loop --------------------------------------------
        // Track whether this line belongs to a `fn reduce_batch*` body via
        // brace depth (naive about braces in string literals, like the rest
        // of this scanner — `format!` strings are forbidden in kernels
        // anyway).
        if !in_test_region {
            let was_in_kernel = kernel_depth > 0 || kernel_pending;
            if kernel_depth == 0 && !kernel_pending && line.contains("fn reduce_batch") {
                kernel_pending = true;
            }
            if kernel_pending || kernel_depth > 0 {
                for c in line.chars() {
                    match c {
                        '{' => {
                            kernel_pending = false;
                            kernel_depth += 1;
                        }
                        '}' if kernel_depth > 0 => kernel_depth -= 1,
                        _ => {}
                    }
                }
            }
            if was_in_kernel || kernel_depth > 0 {
                for pat in [
                    "Vec::new(",
                    "vec![",
                    "Box::new(",
                    ".to_vec()",
                    "with_capacity(",
                    "String::from(",
                    "format!(",
                    "Instant::now(",
                    ".collect()",
                ] {
                    if line.contains(pat) && !suppressed(&lines, idx, "kernel-hot-loop") {
                        findings.push(Finding {
                            path: path.to_owned(),
                            line: lineno,
                            rule: "kernel-hot-loop",
                            message: format!(
                                "`{pat}` inside a reduce_batch kernel body allocates (or \
                                 measures) per batch in the reduce hot loop; reuse \
                                 `BatchSink::take_scratch` or hoist out of the kernel"
                            ),
                        });
                        break;
                    }
                }
            }
        }

        // --- no-direct-sync ---------------------------------------------
        if !sync_exempt && !in_test_region {
            for pat in ["std::sync", "std::thread", "parking_lot", "crossbeam"] {
                if line.contains(pat) && !suppressed(&lines, idx, "no-direct-sync") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "no-direct-sync",
                        message: format!(
                            "`{pat}` outside the smart-sync facade escapes loom model checking; \
                             import from `smart_sync` instead"
                        ),
                    });
                    break;
                }
            }
        }

        // --- no-direct-net ----------------------------------------------
        if !path.starts_with("crates/comm/src/transport/") && !in_test_region {
            for pat in [
                "std::net",
                "std::os::unix::net",
                "TcpStream",
                "TcpListener",
                "UnixStream",
                "UnixListener",
            ] {
                if line.contains(pat) && !suppressed(&lines, idx, "no-direct-net") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "no-direct-net",
                        message: format!(
                            "`{pat}` outside `crates/comm/src/transport/` opens a socket the \
                             Transport abstraction cannot see; add or extend a transport \
                             backend instead"
                        ),
                    });
                    break;
                }
            }
        }

        // --- safety-comment ---------------------------------------------
        // `unsafe impl` and `unsafe {` need a `// SAFETY:` comment on the
        // same line or an immediately preceding comment run.
        let needs_safety = line.contains("unsafe impl")
            || line.contains("unsafe {")
            || line.trim_end().ends_with("unsafe");
        if needs_safety && !has_safety_comment(&lines, idx) {
            findings.push(Finding {
                path: path.to_owned(),
                line: lineno,
                rule: "safety-comment",
                message: "unsafe block/impl without a `// SAFETY:` comment".to_owned(),
            });
        }

        // --- measured-paths ---------------------------------------------
        if path.starts_with("crates/core/src/") && !path.ends_with("observer.rs") && !in_test_region
        {
            for pat in ["Instant::now", "encoded_len"] {
                if line.contains(pat) && !suppressed(&lines, idx, "measured-paths") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "measured-paths",
                        message: format!(
                            "`{pat}` in the execution core outside observer.rs breaks the \
                             stats-off-means-zero-measurement invariant"
                        ),
                    });
                    break;
                }
            }
        }

        // --- serve-admission --------------------------------------------
        if path.starts_with("crates/serve/src/")
            && !path.ends_with("driver.rs")
            && !in_test_region
            && line.contains("Scheduler::new(")
            && !suppressed(&lines, idx, "serve-admission")
        {
            findings.push(Finding {
                path: path.to_owned(),
                line: lineno,
                rule: "serve-admission",
                message: "`Scheduler::new(` in the service tier outside driver.rs bypasses \
                          admission control; submit a `JobSpec` through `Registry::submit` \
                          instead"
                    .to_owned(),
            });
        }

        // --- no-fs-writes -----------------------------------------------
        if path != "crates/ft/src/store.rs" && !in_test_region {
            for pat in [
                "fs::write",
                "fs::create_dir",
                "fs::rename",
                "fs::copy",
                "fs::remove",
                "fs::hard_link",
                "File::create",
                "OpenOptions",
            ] {
                if line.contains(pat) && !suppressed(&lines, idx, "no-fs-writes") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "no-fs-writes",
                        message: format!(
                            "`{pat}` outside the smart-ft checkpoint store writes state the \
                             recovery driver cannot see; go through `smart_ft::store::CkptStore`"
                        ),
                    });
                    break;
                }
            }
        }

        // --- no-lock-unwrap ---------------------------------------------
        if !in_facade
            && !in_test_region
            && (line.contains(".lock().unwrap()") || line.contains(".lock().expect("))
            && !suppressed(&lines, idx, "no-lock-unwrap")
        {
            findings.push(Finding {
                path: path.to_owned(),
                line: lineno,
                rule: "no-lock-unwrap",
                message: "facade mutexes do not poison; `.lock().unwrap()` means a std mutex \
                          bypassed the facade"
                    .to_owned(),
            });
        }
    }
    findings
}

/// `true` if line `idx` is covered by a `SAFETY:` comment — inline, or in
/// the comment/attribute run immediately above it.
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("SAFETY") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            if t.contains("SAFETY") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

// --- self-test ---------------------------------------------------------------

/// Seed one violation per rule (plus one clean counterpart) and assert the
/// scanner catches exactly the seeded ones. Runs before every tree scan so a
/// regression in the scanner can never report a dirty tree as clean.
fn selftest() {
    let check = |name: &str, src: &str, rule: &str, expect: usize| {
        let hits = scan_file(name, src).into_iter().filter(|f| f.rule == rule).count();
        assert_eq!(
            hits, expect,
            "self-test: rule `{rule}` on `{name}` fired {hits}×, expected {expect}"
        );
    };

    // no-direct-sync: fires on runtime code, silent in the facade, in test
    // files, and under a suppression.
    let seeded = "use std::sync::Mutex;\nfn f() {}\n";
    check("crates/core/src/seeded.rs", seeded, "no-direct-sync", 1);
    check("crates/sync/src/seeded.rs", seeded, "no-direct-sync", 0);
    check("crates/core/tests/seeded.rs", seeded, "no-direct-sync", 0);
    check(
        "crates/core/src/seeded.rs",
        "// lint:allow(no-direct-sync): allocator hook\nuse std::sync::Mutex;\n",
        "no-direct-sync",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    use std::thread;\n}\n",
        "no-direct-sync",
        0,
    );

    // no-direct-net: fires on raw socket use in runtime code, silent inside
    // the transport backends, in test files, and under a suppression.
    let netty = "fn f() { let l = std::net::TcpListener::bind(addr)?; }\n";
    check("crates/core/src/seeded.rs", netty, "no-direct-net", 1);
    check("crates/comm/src/communicator.rs", netty, "no-direct-net", 1);
    check("crates/comm/src/transport/tcp.rs", netty, "no-direct-net", 0);
    check("crates/comm/tests/seeded.rs", netty, "no-direct-net", 0);
    check(
        "crates/serve/src/seeded.rs",
        "use std::os::unix::net::UnixStream;\n",
        "no-direct-net",
        1,
    );
    check(
        "crates/core/src/seeded.rs",
        "// lint:allow(no-direct-net): doc reference\nfn f() { let s: TcpStream = x; }\n",
        "no-direct-net",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n",
        "no-direct-net",
        0,
    );

    // safety-comment: fires on an undocumented block and an undocumented
    // impl, silent when a SAFETY comment precedes either.
    check("crates/core/src/seeded.rs", "fn f() { unsafe { g() } }\n", "safety-comment", 1);
    check("crates/core/src/seeded.rs", "unsafe impl Send for T {}\n", "safety-comment", 1);
    check(
        "crates/core/src/seeded.rs",
        "// SAFETY: g has no preconditions.\nfn f() { unsafe { g() } }\n",
        "safety-comment",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "// SAFETY: T owns no thread-bound state.\nunsafe impl Send for T {}\n",
        "safety-comment",
        0,
    );

    // measured-paths: fires in core, silent in observer.rs, other crates,
    // test regions, and under a suppression.
    let timed = "fn f() { let t = Instant::now(); }\n";
    check("crates/core/src/reduce.rs", timed, "measured-paths", 1);
    check("crates/core/src/combine.rs", "let n = encoded_len(&x);\n", "measured-paths", 1);
    check("crates/core/src/observer.rs", timed, "measured-paths", 0);
    check("crates/comm/src/cost.rs", timed, "measured-paths", 0);
    check(
        "crates/core/src/combine.rs",
        "// lint:allow(measured-paths): gated on `measure`\nlet n = encoded_len(&x);\n",
        "measured-paths",
        0,
    );

    // no-lock-unwrap: fires on runtime code, silent in tests.
    let locky = "fn f() { let g = m.lock().unwrap(); }\n";
    check("crates/core/src/seeded.rs", locky, "no-lock-unwrap", 1);
    check(
        "crates/core/src/seeded.rs",
        "fn f() { let g = m.lock().expect(\"poisoned\"); }\n",
        "no-lock-unwrap",
        1,
    );
    check("crates/core/tests/seeded.rs", locky, "no-lock-unwrap", 0);

    // no-fs-writes: fires on runtime code, silent in the checkpoint store,
    // in test regions, and under a suppression.
    let writer = "fn f() { std::fs::write(p, b).unwrap(); }\n";
    check("crates/core/src/seeded.rs", writer, "no-fs-writes", 1);
    check("crates/ft/src/store.rs", writer, "no-fs-writes", 0);
    check("crates/core/tests/seeded.rs", writer, "no-fs-writes", 0);
    check("crates/core/src/seeded.rs", "let f = File::create(p)?;\n", "no-fs-writes", 1);
    check("crates/core/src/seeded.rs", "fs::remove_dir_all(&dir)?;\n", "no-fs-writes", 1);
    check(
        "crates/baseline/src/offline.rs",
        "// lint:allow(no-fs-writes): the offline baseline models file I/O\nfs::create_dir_all(&d)?;\n",
        "no-fs-writes",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    fn f() { fs::rename(a, b).unwrap(); }\n}\n",
        "no-fs-writes",
        0,
    );

    // kernel-hot-loop: fires on allocation or timing inside any
    // `fn reduce_batch*` body, silent outside kernels, after the body
    // closes, in test files, and under a suppression.
    let hot = "fn reduce_batch(&self) {\n    let v = Vec::new();\n}\n";
    check("crates/analytics/src/seeded.rs", hot, "kernel-hot-loop", 1);
    check(
        "crates/analytics/src/seeded.rs",
        "fn reduce_batch(&self) {\n    sink.reduce_default(self, data, batch);\n}\n",
        "kernel-hot-loop",
        0,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "fn other() {\n    let v = Vec::new();\n}\n",
        "kernel-hot-loop",
        0,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "fn reduce_batch(&self) {\n    let t = Instant::now();\n}\n",
        "kernel-hot-loop",
        1,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "unsafe fn reduce_batch_avx2(&self) {\n    let s = format!(\"x\");\n}\n",
        "kernel-hot-loop",
        1,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "fn reduce_batch(&self) {\n    if x {\n        let k = keys.to_vec();\n    }\n}\n",
        "kernel-hot-loop",
        1,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "fn reduce_batch(&self) {\n    x();\n}\nfn helper() {\n    let v = Vec::new();\n}\n",
        "kernel-hot-loop",
        0,
    );
    check("crates/analytics/tests/seeded.rs", hot, "kernel-hot-loop", 0);
    check(
        "crates/analytics/src/seeded.rs",
        "fn reduce_batch(&self) {\n    // lint:allow(kernel-hot-loop): one-time setup\n    \
         let v = Vec::new();\n}\n",
        "kernel-hot-loop",
        0,
    );
    check(
        "crates/analytics/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    fn reduce_batch(&self) { let v = Vec::new(); }\n}\n",
        "kernel-hot-loop",
        0,
    );

    // serve-admission: fires in the service tier outside driver.rs, silent
    // in driver.rs, in other crates, in test regions, and under a
    // suppression.
    let direct = "fn f() { let s = Scheduler::new(a, args, pool)?; }\n";
    check("crates/serve/src/registry.rs", direct, "serve-admission", 1);
    check("crates/serve/src/transit.rs", direct, "serve-admission", 1);
    check("crates/serve/src/driver.rs", direct, "serve-admission", 0);
    check("crates/core/src/seeded.rs", direct, "serve-admission", 0);
    check("crates/serve/tests/seeded.rs", direct, "serve-admission", 0);
    check(
        "crates/serve/src/registry.rs",
        "#[cfg(test)]\nmod tests {\n    fn f() { let s = Scheduler::new(a, args, pool)?; }\n}\n",
        "serve-admission",
        0,
    );
    check(
        "crates/serve/src/registry.rs",
        "// lint:allow(serve-admission): doc example\nfn f() { let s = Scheduler::new(a, args, pool)?; }\n",
        "serve-admission",
        0,
    );

    // Comment stripping: mentions in docs never fire.
    check(
        "crates/core/src/seeded.rs",
        "//! Never calls `Instant::now` or `std::sync` directly.\n",
        "no-direct-sync",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "//! Never calls `Instant::now` or `std::sync` directly.\n",
        "measured-paths",
        0,
    );
}
