//! `cargo xtask` — repo automation.
//!
//! Subcommands:
//!
//! * `lint` — the workspace invariant pass. Two engines run back to back,
//!   each self-testing against a seeded violation corpus first:
//!
//!   1. the plain-text scanner below (line scanning with comment
//!      stripping), for rules that are genuinely line-shaped;
//!   2. the AST-grade analyzer in `crates/lint` (`smart-lint`): the
//!      lock-order graph (acquired-while-holding edges diffed against
//!      `lint/lock-order.toml`, cycles rejected), the panic-freedom audit
//!      for `comm`/`core`/`ft`/`serve`, the tag-namespace proofs over
//!      `comm::tags`, and the token-level rules migrated from this file
//!      (`no-direct-sync`, `no-lock-unwrap`, `kernel-hot-loop` — now
//!      immune to strings, comments, and line splits).
//!
//! * `lock-order [--write]` — print the current lock-order edge set as
//!   TOML (`--write` regenerates `lint/lock-order.toml`). Run it after
//!   deliberately adding a nested-lock region, review the diff, commit.
//!
//! Text rules still enforced here:
//!
//! * **no-direct-net** — raw sockets (`std::net`, `std::os::unix::net`,
//!   `TcpStream`/`TcpListener`/`UnixStream`/`UnixListener`) appear only
//!   under `crates/comm/src/transport/`. Everything else speaks through
//!   the `Transport` trait, so backends stay swappable (`SMART_TRANSPORT`)
//!   and the death-notice/EOS semantics are enforced in exactly one place.
//! * **safety-comment** — every `unsafe {` block and `unsafe impl` carries
//!   a `// SAFETY:` comment (mirrors `clippy::undocumented_unsafe_blocks`,
//!   which does not cover `unsafe impl` on stable).
//! * **measured-paths** — inside `crates/core/src`, `Instant::now` and
//!   `encoded_len` appear only in `observer.rs` (the Stopwatch/measurement
//!   gateway). This is the PR-3 invariant: with stats collection off the
//!   execution core performs *zero* measurement work.
//! * **no-fs-writes** — runtime code mutates the filesystem only through
//!   the `smart-ft` checkpoint store (`crates/ft/src/store.rs`) and the
//!   `smart-spill` run store (`crates/spill/src/store.rs`). Durable state
//!   written anywhere else is invisible to the recovery driver, so a
//!   restart could not see it; deliberate exceptions (the offline baseline
//!   models file I/O as its cost) carry an explicit suppression.
//! * **serve-admission** — inside `crates/serve/src`, only `driver.rs` may
//!   construct a `Scheduler`. Every other path must go through
//!   `Registry::submit`, or the service tier's admission control (quotas,
//!   the active-job cap, per-tenant accounting) silently stops meaning
//!   anything.
//!
//! Suppress a finding by putting `lint:allow(<rule>)` in a comment on the
//! offending line or the line directly above it. Findings from both
//! engines share the `path:line: [rule] message` format.

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug)]
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            selftest();
            smart_lint::selftest();
            let root = workspace_root();
            let mut findings: Vec<String> =
                scan_tree(&root).iter().map(|f| f.to_string()).collect();
            findings.extend(smart_lint::check_workspace(&root).iter().map(|f| f.to_string()));
            findings.sort();
            if findings.is_empty() {
                eprintln!("xtask lint: self-tests ok, tree clean");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
                std::process::exit(1);
            }
        }
        Some("lock-order") => {
            let root = workspace_root();
            let toml = smart_lint::lock_order_toml(&root);
            if args.next().as_deref() == Some("--write") {
                let path = root.join("lint/lock-order.toml");
                if let Some(dir) = path.parent() {
                    // lint:allow(no-fs-writes): repo tooling writing the
                    // reviewed lock-order artifact, not runtime state.
                    let _ = std::fs::create_dir_all(dir);
                }
                // lint:allow(no-fs-writes): see above.
                std::fs::write(&path, &toml).expect("write lint/lock-order.toml");
                eprintln!("wrote {}", path.display());
            } else {
                print!("{toml}");
            }
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (expected: lint, lock-order)");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: cargo xtask lint | cargo xtask lock-order [--write]");
            std::process::exit(2);
        }
    }
}

/// The workspace root: parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask sits in the workspace root").to_path_buf()
}

/// Collect the `.rs` files the lint pass covers: everything under `crates/`,
/// `src/`, `tests/`, and `examples/`, excluding build output.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn scan_tree(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in collect_sources(root) {
        let Ok(content) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_file(&rel, &content));
    }
    findings
}

/// Strip `//` comments. Naive about `//` inside string literals, which can
/// only hide code after a URL-bearing string — a false negative, never a
/// false positive.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// `true` if a `lint:allow(rule)` suppression covers `idx` (same line or the
/// line above).
fn suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let needle = format!("lint:allow({rule})");
    lines[idx].contains(&needle) || (idx > 0 && lines[idx - 1].contains(&needle))
}

/// Paths with test/bench/example code: the sync and measurement invariants
/// target runtime code only.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Scan one file. `path` is workspace-relative with `/` separators.
fn scan_file(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = content.lines().collect();

    // Everything from the first `#[cfg(test)]` down is treated as test code.
    // Convention in this repo: in-file test modules close out the file.
    let test_from = lines.iter().position(|l| l.contains("#[cfg(test)]")).unwrap_or(lines.len());

    for (idx, raw) in lines.iter().enumerate() {
        let line = strip_comment(raw);
        let lineno = idx + 1;
        let in_test_region = idx >= test_from || is_test_path(path);

        // --- no-direct-net ----------------------------------------------
        if !path.starts_with("crates/comm/src/transport/") && !in_test_region {
            for pat in [
                "std::net",
                "std::os::unix::net",
                "TcpStream",
                "TcpListener",
                "UnixStream",
                "UnixListener",
            ] {
                if line.contains(pat) && !suppressed(&lines, idx, "no-direct-net") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "no-direct-net",
                        message: format!(
                            "`{pat}` outside `crates/comm/src/transport/` opens a socket the \
                             Transport abstraction cannot see; add or extend a transport \
                             backend instead"
                        ),
                    });
                    break;
                }
            }
        }

        // --- safety-comment ---------------------------------------------
        // `unsafe impl` and `unsafe {` need a `// SAFETY:` comment on the
        // same line or an immediately preceding comment run.
        let needs_safety = line.contains("unsafe impl")
            || line.contains("unsafe {")
            || line.trim_end().ends_with("unsafe");
        if needs_safety && !has_safety_comment(&lines, idx) {
            findings.push(Finding {
                path: path.to_owned(),
                line: lineno,
                rule: "safety-comment",
                message: "unsafe block/impl without a `// SAFETY:` comment".to_owned(),
            });
        }

        // --- measured-paths ---------------------------------------------
        if path.starts_with("crates/core/src/") && !path.ends_with("observer.rs") && !in_test_region
        {
            for pat in ["Instant::now", "encoded_len"] {
                if line.contains(pat) && !suppressed(&lines, idx, "measured-paths") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "measured-paths",
                        message: format!(
                            "`{pat}` in the execution core outside observer.rs breaks the \
                             stats-off-means-zero-measurement invariant"
                        ),
                    });
                    break;
                }
            }
        }

        // --- serve-admission --------------------------------------------
        if path.starts_with("crates/serve/src/")
            && !path.ends_with("driver.rs")
            && !in_test_region
            && line.contains("Scheduler::new(")
            && !suppressed(&lines, idx, "serve-admission")
        {
            findings.push(Finding {
                path: path.to_owned(),
                line: lineno,
                rule: "serve-admission",
                message: "`Scheduler::new(` in the service tier outside driver.rs bypasses \
                          admission control; submit a `JobSpec` through `Registry::submit` \
                          instead"
                    .to_owned(),
            });
        }

        // --- no-fs-writes -----------------------------------------------
        // Sanctioned write sites: the checkpoint store and the spill run
        // store — both CRC-framed, atomically-committed, recovery-visible.
        let fs_write_site = path == "crates/ft/src/store.rs" || path == "crates/spill/src/store.rs";
        if !fs_write_site && !in_test_region {
            for pat in [
                "fs::write",
                "fs::create_dir",
                "fs::rename",
                "fs::copy",
                "fs::remove",
                "fs::hard_link",
                "File::create",
                "OpenOptions",
            ] {
                if line.contains(pat) && !suppressed(&lines, idx, "no-fs-writes") {
                    findings.push(Finding {
                        path: path.to_owned(),
                        line: lineno,
                        rule: "no-fs-writes",
                        message: format!(
                            "`{pat}` outside the smart-ft checkpoint store and the smart-spill \
                             run store writes state the recovery driver cannot see; go through \
                             `smart_ft::store::CkptStore` or `smart_spill::SpillStore`"
                        ),
                    });
                    break;
                }
            }
        }
    }
    findings
}

/// `true` if line `idx` is covered by a `SAFETY:` comment — inline, or in
/// the comment/attribute run immediately above it.
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("SAFETY") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            if t.contains("SAFETY") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

// --- self-test ---------------------------------------------------------------

/// Seed one violation per rule (plus one clean counterpart) and assert the
/// scanner catches exactly the seeded ones. Runs before every tree scan so a
/// regression in the scanner can never report a dirty tree as clean.
fn selftest() {
    let check = |name: &str, src: &str, rule: &str, expect: usize| {
        let hits = scan_file(name, src).into_iter().filter(|f| f.rule == rule).count();
        assert_eq!(
            hits, expect,
            "self-test: rule `{rule}` on `{name}` fired {hits}×, expected {expect}"
        );
    };

    // no-direct-net: fires on raw socket use in runtime code, silent inside
    // the transport backends, in test files, and under a suppression.
    let netty = "fn f() { let l = std::net::TcpListener::bind(addr)?; }\n";
    check("crates/core/src/seeded.rs", netty, "no-direct-net", 1);
    check("crates/comm/src/communicator.rs", netty, "no-direct-net", 1);
    check("crates/comm/src/transport/tcp.rs", netty, "no-direct-net", 0);
    check("crates/comm/tests/seeded.rs", netty, "no-direct-net", 0);
    check(
        "crates/serve/src/seeded.rs",
        "use std::os::unix::net::UnixStream;\n",
        "no-direct-net",
        1,
    );
    check(
        "crates/core/src/seeded.rs",
        "// lint:allow(no-direct-net): doc reference\nfn f() { let s: TcpStream = x; }\n",
        "no-direct-net",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n",
        "no-direct-net",
        0,
    );

    // safety-comment: fires on an undocumented block and an undocumented
    // impl, silent when a SAFETY comment precedes either.
    check("crates/core/src/seeded.rs", "fn f() { unsafe { g() } }\n", "safety-comment", 1);
    check("crates/core/src/seeded.rs", "unsafe impl Send for T {}\n", "safety-comment", 1);
    check(
        "crates/core/src/seeded.rs",
        "// SAFETY: g has no preconditions.\nfn f() { unsafe { g() } }\n",
        "safety-comment",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "// SAFETY: T owns no thread-bound state.\nunsafe impl Send for T {}\n",
        "safety-comment",
        0,
    );

    // measured-paths: fires in core, silent in observer.rs, other crates,
    // test regions, and under a suppression.
    let timed = "fn f() { let t = Instant::now(); }\n";
    check("crates/core/src/reduce.rs", timed, "measured-paths", 1);
    check("crates/core/src/combine.rs", "let n = encoded_len(&x);\n", "measured-paths", 1);
    check("crates/core/src/observer.rs", timed, "measured-paths", 0);
    check("crates/comm/src/cost.rs", timed, "measured-paths", 0);
    check(
        "crates/core/src/combine.rs",
        "// lint:allow(measured-paths): gated on `measure`\nlet n = encoded_len(&x);\n",
        "measured-paths",
        0,
    );

    // no-fs-writes: fires on runtime code, silent in the checkpoint store,
    // in test regions, and under a suppression.
    let writer = "fn f() { std::fs::write(p, b).unwrap(); }\n";
    check("crates/core/src/seeded.rs", writer, "no-fs-writes", 1);
    check("crates/ft/src/store.rs", writer, "no-fs-writes", 0);
    check("crates/spill/src/store.rs", writer, "no-fs-writes", 0);
    check("crates/core/tests/seeded.rs", writer, "no-fs-writes", 0);
    check("crates/core/src/seeded.rs", "let f = File::create(p)?;\n", "no-fs-writes", 1);
    // The spill store being sanctioned must not loosen the rule elsewhere:
    // a raw create in the execution core still fires.
    check("crates/core/src/spill.rs", "let f = File::create(p)?;\n", "no-fs-writes", 1);
    check("crates/core/src/seeded.rs", "fs::remove_dir_all(&dir)?;\n", "no-fs-writes", 1);
    check(
        "crates/baseline/src/offline.rs",
        "// lint:allow(no-fs-writes): the offline baseline models file I/O\nfs::create_dir_all(&d)?;\n",
        "no-fs-writes",
        0,
    );
    check(
        "crates/core/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    fn f() { fs::rename(a, b).unwrap(); }\n}\n",
        "no-fs-writes",
        0,
    );

    // serve-admission: fires in the service tier outside driver.rs, silent
    // in driver.rs, in other crates, in test regions, and under a
    // suppression.
    let direct = "fn f() { let s = Scheduler::new(a, args, pool)?; }\n";
    check("crates/serve/src/registry.rs", direct, "serve-admission", 1);
    check("crates/serve/src/transit.rs", direct, "serve-admission", 1);
    check("crates/serve/src/driver.rs", direct, "serve-admission", 0);
    check("crates/core/src/seeded.rs", direct, "serve-admission", 0);
    check("crates/serve/tests/seeded.rs", direct, "serve-admission", 0);
    check(
        "crates/serve/src/registry.rs",
        "#[cfg(test)]\nmod tests {\n    fn f() { let s = Scheduler::new(a, args, pool)?; }\n}\n",
        "serve-admission",
        0,
    );
    check(
        "crates/serve/src/registry.rs",
        "// lint:allow(serve-admission): doc example\nfn f() { let s = Scheduler::new(a, args, pool)?; }\n",
        "serve-admission",
        0,
    );

    // Comment stripping: mentions in docs never fire.
    check(
        "crates/core/src/seeded.rs",
        "//! Never calls `Instant::now` or `std::sync` directly.\n",
        "measured-paths",
        0,
    );
}
