//! Heartbeat-style failure detection over a [`Communicator`].
//!
//! The transport already turns sends/receives against a dropped rank into
//! [`CommError::PeerGone`], so detection needs no side channel: a probe is
//! a ping message plus a bounded [`Communicator::recv_timeout`] wait for
//! the pong. [`Probe::NoReply`] is deliberately distinct from
//! [`Probe::Dead`] — a silent peer may just be busy between
//! [`serve_pings`] calls; only transport-level death is treated as fatal,
//! and it is recorded in the communicator's alive set as a side effect.

use smart_comm::{CommError, CommResult, Communicator, Tag};
use std::time::Duration;

/// Base tag for fault-tolerance point-to-point traffic — the `FT_PING`
/// namespace claimed in `smart_comm::tags`. Sits above user tags and below
/// the streaming transport's `STREAM_BASE`.
pub const FT_TAG_BASE: Tag = smart_comm::tags::FT_PING_BASE;

const PING: Tag = FT_TAG_BASE | 1;
const PONG: Tag = FT_TAG_BASE | 2;

/// Outcome of one [`probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The peer answered the ping.
    Alive,
    /// The transport reports the peer gone; it has been marked dead in the
    /// communicator's alive set.
    Dead,
    /// No answer within the timeout. Inconclusive: the peer may be alive
    /// but not serving pings right now.
    NoReply,
}

/// Ping `peer` and wait up to `timeout` for its pong. Requires the peer to
/// run [`serve_pings`] (or otherwise answer `PING` with a `PONG`).
pub fn probe(comm: &mut Communicator, peer: usize, timeout: Duration) -> CommResult<Probe> {
    match comm.send(peer, PING, &()) {
        Ok(()) => {}
        Err(CommError::PeerGone { .. }) => {
            comm.mark_dead(peer);
            return Ok(Probe::Dead);
        }
        Err(e) => return Err(e),
    }
    match comm.recv_timeout::<()>(peer, PONG, timeout) {
        Ok(Some(())) => Ok(Probe::Alive),
        Ok(None) => Ok(Probe::NoReply),
        Err(CommError::PeerGone { .. }) => {
            comm.mark_dead(peer);
            Ok(Probe::Dead)
        }
        Err(e) => Err(e),
    }
}

/// Answer every pending ping from every live peer; returns how many were
/// answered. Call this from a rank's idle points so its peers' probes see
/// [`Probe::Alive`]. Peers discovered dead while draining are marked dead
/// and skipped, never an error.
pub fn serve_pings(comm: &mut Communicator) -> CommResult<usize> {
    let me = comm.rank();
    let peers: Vec<usize> = (0..comm.size()).filter(|&r| r != me && comm.is_alive(r)).collect();
    let mut served = 0;
    for peer in peers {
        loop {
            match comm.try_recv::<()>(peer, PING) {
                Ok(Some(())) => {
                    // Best effort: the peer may die between its ping and
                    // our pong.
                    match comm.send(peer, PONG, &()) {
                        Ok(()) | Err(CommError::PeerGone { .. }) => served += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok(None) => break,
                Err(CommError::PeerGone { .. }) => {
                    comm.mark_dead(peer);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(served)
}

/// Probe `peer` up to `attempts` times, `interval` apart, until the
/// transport confirms its death. Returns `true` once the peer is confirmed
/// dead (and marked so), `false` if it still looked alive-or-silent after
/// every attempt.
pub fn await_death(
    comm: &mut Communicator,
    peer: usize,
    interval: Duration,
    attempts: usize,
) -> CommResult<bool> {
    for _ in 0..attempts {
        if probe(comm, peer, interval)? == Probe::Dead {
            return Ok(true);
        }
    }
    Ok(false)
}
