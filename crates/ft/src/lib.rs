//! Fault tolerance for the Smart runtime: reduction-object checkpointing,
//! rank-failure recovery, and self-healing in-transit topologies.
//!
//! The paper's runtime assumes a reliable machine; at the scales in-situ
//! analytics targets, ranks die. This crate adds the recovery layer on top
//! of the existing seams instead of threading failure handling through the
//! execution core:
//!
//! - [`store`] — versioned, CRC-validated, atomically-written snapshots of
//!   the combined reduction object (the *only* state the programming model
//!   accumulates across steps, which is what makes checkpoints this small).
//! - [`recover`] — [`run_recoverable`] wraps a step loop with periodic
//!   snapshots and resume-on-restart; a resumed run's combination map is
//!   bit-identical to an uninterrupted one.
//! - [`detect`] — heartbeat probes over the communicator's existing
//!   timeout/`PeerGone` machinery.
//! - [`mod@retry`] — bounded exponential backoff for transient failures.
//! - [`heal`] — [`run_in_transit_healing`], the in-transit drive that
//!   survives stager death by rerouting credit-windowed streams (replaying
//!   their unacknowledged suffix) to the rebalanced surviving stagers.
//! - [`inject`] — deterministic fail-stop fault injection
//!   ([`FaultPlan`]) so all of the above is testable.
//!
//! The failure model, the commit protocol, and the correctness argument
//! live in DESIGN.md ("Failure model & recovery").

pub mod detect;
pub mod heal;
pub mod inject;
pub mod recover;
pub mod retry;
pub mod store;

pub use detect::{await_death, probe, serve_pings, Probe, FT_TAG_BASE};
pub use heal::{run_in_transit_healing, FtProducer, HealOutcome, HealedStagerOutcome, FT_CTL_BASE};
pub use inject::FaultPlan;
pub use recover::{run_recoverable, RecoverError, RecoveryConfig, RecoveryReport};
pub use retry::{retry, RetryPolicy};
pub use store::{crc32, decode, encode, CkptError, CkptRecord, CkptStore};
