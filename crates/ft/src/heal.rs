//! Self-healing in-transit drive: stager death mid-run reroutes the
//! orphaned producer streams to surviving stagers without losing or
//! double-counting a single chunk.
//!
//! # Protocol
//!
//! The drive layers three mechanisms over the plain in-transit mode
//! (`smart_core::run_in_transit`):
//!
//! **Replay-buffer failover (producer side).** Streams run with
//! `retain_unacked` forced on: every sent chunk stays buffered until the
//! stager acknowledges it. When a send or ack-wait surfaces `PeerGone`, the
//! producer consults [`Topology::rebalanced_stager_of`] over the alive set
//! its own communicator observed and calls `StreamSender::failover`, which
//! re-queues the unacknowledged suffix for the replacement stager. The
//! alive scan is deterministic from the alive mask, so the producer and the
//! adopting stager converge on the same reroute with no coordinator.
//!
//! **Deferred crediting as a commit protocol (stager side).** Stagers pull
//! chunks with `recv_deferred` and withhold the acknowledgement until the
//! round that consumed the chunk has *globally committed*. An acknowledged
//! chunk is therefore durably merged into every survivor's combination map
//! and must never be replayed; an unacknowledged one is replayed to the
//! adopter and either consumed (its round never committed) or skip-acked
//! (its round committed — the replay is a duplicate).
//!
//! **Heal rounds (staging group).** Each round runs
//! sync → adopt → activity vote → execute → commit over control exchanges
//! on the staging communicator. Deaths are fail-stop at round boundaries
//! (see [`FaultPlan`]), so every survivor observes a death in the *same*
//! exchange: the group agrees on the dead set, deterministically adopts the
//! orphaned streams, rolls the scheduler back to its pre-round snapshot if
//! the round had started, and retries the round over the surviving
//! topology. Global combination uses [`CombineStrategy::Gossip`] — the one
//! strategy whose collective survives a shrinking rank set.

use crate::inject::FaultPlan;
use serde::de::DeserializeOwned;
use serde::Serialize;
use smart_comm::{
    CommError, Communicator, StreamReceiver, StreamRecvStats, StreamSendStats, StreamSender, Tag,
};
use smart_core::{
    Analytics, CombineStrategy, InTransitConfig, KeyMode, ProducerOutcome, RunStats, Scheduler,
    SmartError, SmartResult, StepSpec, Topology,
};

/// Base tag for the heal drive's control exchanges on the staging
/// communicator — the `FT_CTL` namespace claimed in `smart_comm::tags`,
/// disjoint from user tags, `FT_TAG_BASE` heartbeats, and the streaming
/// transport's `STREAM_BASE`.
pub const FT_CTL_BASE: Tag = smart_comm::tags::FT_CTL_BASE;

const OP_SYNC: u64 = 1;
const OP_ACTIVE: u64 = 2;
const OP_COMMIT: u64 = 3;

/// The simulation side's handle inside [`run_in_transit_healing`]: like
/// `smart_core::Producer`, but [`feed`](Self::feed) survives stager death
/// by rerouting the stream (replaying its unacknowledged suffix) to the
/// clockwise-next surviving stager.
pub struct FtProducer<In> {
    comm: Communicator,
    tx: Option<StreamSender<In>>,
    index: usize,
    topo: Topology,
    steps_fed: usize,
    plan: FaultPlan,
}

impl<In: Serialize> FtProducer<In> {
    /// This producer's index (also its world rank): `0..producers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Producer count — the `size` a rank/size-partitioned simulation
    /// should use.
    pub fn producers(&self) -> usize {
        self.topo.producers
    }

    /// The world communicator, for producer↔producer traffic.
    pub fn comm(&mut self) -> &mut Communicator {
        &mut self.comm
    }

    /// World rank of the stager currently receiving this stream (changes
    /// after a reroute).
    pub fn stager(&self) -> usize {
        // PANIC-FREE: only finish() clears tx, and finish() consumes self, so no later call can observe None.
        self.tx.as_ref().expect("stream already finished").peer()
    }

    /// Stream one time-step partition, rerouting on stager death.
    ///
    /// `StreamSender::feed` queues the chunk *before* flushing, so when the
    /// flush surfaces `PeerGone` the chunk already sits in the replay
    /// buffer — the reroute must not (and does not) feed it again; the next
    /// flush delivers the whole unacknowledged suffix to the replacement.
    pub fn feed(&mut self, offset: usize, step: &[In]) -> SmartResult<()> {
        self.plan.check(self.index, self.steps_fed)?;
        // PANIC-FREE: only finish() clears tx, and finish() consumes self, so no later call can observe None.
        let tx = self.tx.as_mut().expect("stream already finished");
        if let Err(e) = tx.feed(&mut self.comm, offset, step) {
            match e {
                CommError::PeerGone { peer } => {
                    reroute(&mut self.comm, tx, self.topo, self.index, self.steps_fed, peer)?;
                }
                other => return Err(SmartError::Comm(other).at(self.index, self.steps_fed)),
            }
        }
        self.steps_fed += 1;
        Ok(())
    }

    /// Flush end-of-stream and wait until every chunk is acknowledged —
    /// i.e. globally committed — rerouting as often as stagers die under
    /// it.
    fn finish(mut self) -> SmartResult<StreamSendStats> {
        // PANIC-FREE: finish() consumes self and is the only place that clears tx, so tx is still Some here.
        let mut tx = self.tx.take().expect("stream already finished");
        loop {
            match tx.finish_wait_acked(&mut self.comm) {
                Ok(()) => return Ok(tx.stats().clone()),
                Err(CommError::PeerGone { peer }) => {
                    reroute(&mut self.comm, &mut tx, self.topo, self.index, self.steps_fed, peer)?;
                }
                Err(e) => return Err(SmartError::Comm(e).at(self.index, self.steps_fed)),
            }
        }
    }
}

/// Point the stream at the clockwise-next surviving stager. Fails (with
/// rank/step context) only when every stager is dead.
fn reroute<In: Serialize>(
    comm: &mut Communicator,
    tx: &mut StreamSender<In>,
    topo: Topology,
    rank: usize,
    at: usize,
    dead: usize,
) -> SmartResult<()> {
    comm.mark_dead(dead);
    let next = topo
        .rebalanced_stager_of(rank, |s| comm.is_alive(topo.stager_world_rank(s)))
        .ok_or_else(|| SmartError::Comm(CommError::PeerGone { peer: dead }).at(rank, at))?;
    tx.failover(topo.stager_world_rank(next));
    Ok(())
}

/// What one surviving stager produced.
#[derive(Debug)]
pub struct HealedStagerOutcome<Out> {
    /// The output buffer after the final round's conversion.
    pub out: Vec<Out>,
    /// The final combination map in canonical form (`smart_wire` bytes of
    /// the key-sorted entries) — byte-comparable against an uninterrupted
    /// run's map.
    pub map_bytes: Vec<u8>,
    /// Rounds this stager committed.
    pub rounds: usize,
    /// Heal events absorbed: deaths observed during control exchanges plus
    /// round attempts discarded and re-run. At least 1 whenever a peer
    /// stager died.
    pub heals: u64,
    /// Orphaned producer streams this stager adopted from dead stagers.
    pub adopted: usize,
    /// Scheduler stats over all committed rounds (discarded attempts are
    /// rolled back and not counted), with the `transit_*` counters filled
    /// in.
    pub stats: RunStats,
    /// Per-stream receive counters, own streams first, adopted after.
    pub streams: Vec<StreamRecvStats>,
}

/// Per-rank results of a healing in-transit run. Ranks killed by the fault
/// plan report `Err(SmartError::Injected { .. })`; survivors report their
/// outcomes, healed around the deaths.
#[derive(Debug)]
pub struct HealOutcome<R, Out> {
    /// One entry per producer, in world-rank order.
    pub producers: Vec<SmartResult<ProducerOutcome<R>>>,
    /// One entry per stager, in staging-index order.
    pub stagers: Vec<SmartResult<HealedStagerOutcome<Out>>>,
}

/// One producer stream at a stager: the receiver plus at most one chunk
/// held back for the current (uncommitted) round.
struct Slot<In> {
    rx: StreamReceiver<In>,
    held: Option<(usize, Vec<In>)>,
    done: bool,
}

impl<In: DeserializeOwned> Slot<In> {
    fn new(producer: usize) -> Self {
        Slot { rx: StreamReceiver::new(producer), held: None, done: false }
    }

    /// Pull until one chunk of round `committed` is held or the stream
    /// ends. Replayed chunks from rounds that already committed are
    /// duplicates: acknowledge them immediately (returning the credit) and
    /// keep pulling. A dead producer truncates its stream — everything it
    /// managed to send is still delivered first, then `PeerGone` marks the
    /// end.
    fn fill(&mut self, comm: &mut Communicator, committed: usize) -> SmartResult<()> {
        while self.held.is_none() && !self.done {
            match self.rx.recv_deferred(comm) {
                Ok(Some((step, offset, data))) => {
                    if (step as usize) < committed {
                        self.rx.ack(comm, 1).map_err(SmartError::Comm)?;
                    } else {
                        debug_assert_eq!(step as usize, committed, "stream rounds are consecutive");
                        self.held = Some((offset, data));
                    }
                }
                Ok(None) => self.done = true,
                Err(CommError::PeerGone { .. }) => self.done = true,
                Err(e) => return Err(SmartError::Comm(e)),
            }
        }
        Ok(())
    }
}

/// Result of one control exchange over the staging group.
enum Exchange<T> {
    /// Everybody answered: the `(rank, value)` pairs, ascending by rank,
    /// including the caller's own.
    Clean(Vec<(usize, T)>),
    /// A death was observed (and recorded in the communicator's alive
    /// set). Deaths are fail-stop at round boundaries, so every survivor
    /// reports `Healed` for the same sequence number.
    Healed,
}

/// Sequenced all-to-all control exchanges among the surviving stagers.
struct Ctl {
    seq: u64,
}

impl Ctl {
    fn tag(&self, op: u64) -> Tag {
        debug_assert!(self.seq < 1 << 25, "control sequence exhausted its tag space");
        FT_CTL_BASE | (self.seq << 8) | op
    }

    fn exchange<T>(
        &mut self,
        comm: &mut Communicator,
        op: u64,
        value: &T,
    ) -> SmartResult<Exchange<T>>
    where
        T: Serialize + DeserializeOwned + Clone,
    {
        let tag = self.tag(op);
        self.seq += 1;
        let me = comm.rank();
        let peers: Vec<usize> = (0..comm.size()).filter(|&r| r != me && comm.is_alive(r)).collect();
        let mut died = false;
        for &r in &peers {
            match comm.send(r, tag, value) {
                Ok(()) => {}
                Err(CommError::PeerGone { .. }) => {
                    comm.mark_dead(r);
                    died = true;
                }
                Err(e) => return Err(SmartError::Comm(e)),
            }
        }
        let mut vals = vec![(me, value.clone())];
        for &r in &peers {
            if !comm.is_alive(r) {
                continue;
            }
            match comm.recv::<T>(r, tag) {
                Ok(v) => vals.push((r, v)),
                Err(CommError::PeerGone { .. }) => {
                    comm.mark_dead(r);
                    died = true;
                }
                Err(e) => return Err(SmartError::Comm(e)),
            }
        }
        if died {
            return Ok(Exchange::Healed);
        }
        vals.sort_unstable_by_key(|&(r, _)| r);
        Ok(Exchange::Clean(vals))
    }

    /// Exchange dead-set masks until every survivor holds the same one;
    /// returns how many deaths-in-progress (`Healed` exchanges) were
    /// absorbed along the way. Converges because the dead set only grows
    /// and is bounded; the agreement predicate ("all reported masks
    /// identical") is computed from the same multiset of masks on every
    /// rank, so the group decides uniformly.
    fn sync_agree(&mut self, comm: &mut Communicator) -> SmartResult<u64> {
        assert!(comm.size() <= 64, "dead-set agreement uses a u64 mask");
        let mut healed = 0;
        loop {
            let mine = dead_mask(comm);
            match self.exchange(comm, OP_SYNC, &mine)? {
                Exchange::Healed => healed += 1,
                Exchange::Clean(masks) => {
                    if masks.iter().all(|&(_, m)| m == mine) {
                        return Ok(healed);
                    }
                    let union = masks.iter().fold(0u64, |acc, &(_, m)| acc | m);
                    for s in 0..comm.size() {
                        if union & (1 << s) != 0 {
                            comm.mark_dead(s);
                        }
                    }
                }
            }
        }
    }
}

fn dead_mask(comm: &Communicator) -> u64 {
    (0..comm.size()).filter(|&r| !comm.is_alive(r)).fold(0u64, |m, r| m | (1 << r))
}

/// `true` when `e` is (or wraps) the transport's `PeerGone` — the one
/// failure the heal loop retries; everything else propagates.
fn is_peer_gone(e: &SmartError) -> bool {
    match e {
        SmartError::Comm(CommError::PeerGone { .. }) => true,
        SmartError::Context { source, .. } => is_peer_gone(source),
        _ => false,
    }
}

enum Round {
    Commit,
    Eos,
}

/// In-transit execution with self-healing placement: like
/// `smart_core::run_in_transit`, plus a [`FaultPlan`] naming at most one
/// rank to kill, stream failover on the producer side, and heal rounds on
/// the staging side. The stream config is forced to `retain_unacked` and
/// the stagers to [`CombineStrategy::Gossip`] — failover and a shrinking
/// collective are what the protocol is made of.
///
/// A killed rank's entry in the returned [`HealOutcome`] is
/// `Err(SmartError::Injected { .. })`; the survivors' combination maps are
/// bit-identical to an uninterrupted run's.
pub fn run_in_transit_healing<A, R, FP, FS>(
    topo: Topology,
    config: InTransitConfig,
    key_mode: KeyMode,
    plan: FaultPlan,
    producer: FP,
    make_stager: FS,
) -> HealOutcome<R, A::Out>
where
    A: Analytics,
    A::In: Serialize + DeserializeOwned + Clone,
    R: Send,
    FP: Fn(&mut FtProducer<A::In>) -> SmartResult<R> + Sync,
    FS: Fn(usize) -> SmartResult<(Scheduler<A>, Vec<A::Out>)> + Sync,
{
    let mut config = config;
    config.stream.retain_unacked = true;
    let world = smart_comm::universe(topo.world_size(), config.comm.clone());
    let staging = smart_comm::universe(topo.stagers, config.comm.clone());
    let stream_cfg = &config.stream;
    let producer = &producer;
    let make_stager = &make_stager;

    let mut world = world.into_iter();
    let producer_comms: Vec<Communicator> = world.by_ref().take(topo.producers).collect();
    let stager_comms: Vec<(Communicator, Communicator)> = world.zip(staging).collect();

    smart_sync::thread::scope(|scope| {
        let producer_handles: Vec<_> = producer_comms
            .into_iter()
            .enumerate()
            .map(|(p, comm)| {
                let cfg = stream_cfg.clone();
                scope.spawn(move || -> SmartResult<ProducerOutcome<R>> {
                    let stager = topo.stager_world_rank(topo.stager_of(p));
                    let mut handle = FtProducer {
                        comm,
                        tx: Some(StreamSender::new(stager, cfg)),
                        index: p,
                        topo,
                        steps_fed: 0,
                        plan,
                    };
                    let result = producer(&mut handle)?;
                    let stream = handle.finish()?;
                    Ok(ProducerOutcome { result, stream })
                })
            })
            .collect();

        let stager_handles: Vec<_> = stager_comms
            .into_iter()
            .enumerate()
            .map(|(s, (mut comm, mut staging_comm))| {
                scope.spawn(move || -> SmartResult<HealedStagerOutcome<A::Out>> {
                    let me = topo.stager_world_rank(s);
                    let (mut sched, mut out) = make_stager(s)?;
                    sched.set_collect_stats(true);
                    sched.set_combine_strategy(CombineStrategy::Gossip);
                    let mut slots: Vec<Slot<A::In>> = topo.producers_of(s).map(Slot::new).collect();
                    let mut ctl = Ctl { seq: 0 };
                    let mut stats = RunStats::default();
                    let mut committed = 0usize;
                    let mut heals = 0u64;
                    let mut adopted = 0usize;
                    loop {
                        // Fail-stop boundary: the previous round is fully
                        // committed and acknowledged; nothing of the next
                        // one has been sent.
                        plan.check(me, committed)?;
                        let outcome = loop {
                            heals += ctl
                                .sync_agree(&mut staging_comm)
                                .map_err(|e| e.at(me, committed))?;
                            // Adopt orphans of the agreed dead set. The
                            // assignment is deterministic from the mask, so
                            // it matches the producers' own reroute scans.
                            let alive: Vec<bool> =
                                (0..topo.stagers).map(|i| staging_comm.is_alive(i)).collect();
                            // PANIC-FREE: rebalanced_producers_of probes stager indices < topo.stagers = alive.len().
                            for p in topo.rebalanced_producers_of(s, |i| alive[i]) {
                                if !slots.iter().any(|slot| slot.rx.peer() == p) {
                                    slots.push(Slot::new(p));
                                    adopted += 1;
                                }
                            }
                            for slot in slots.iter_mut() {
                                slot.fill(&mut comm, committed).map_err(|e| e.at(me, committed))?;
                            }
                            let active = slots.iter().any(|slot| slot.held.is_some());
                            // Ragged termination vote, doubling as a death
                            // detector right before the collective.
                            match ctl.exchange(&mut staging_comm, OP_ACTIVE, &u8::from(active)) {
                                Ok(Exchange::Healed) => {
                                    heals += 1;
                                    continue;
                                }
                                Ok(Exchange::Clean(votes)) => {
                                    if votes.iter().all(|&(_, v)| v == 0) {
                                        break Round::Eos;
                                    }
                                }
                                Err(e) => return Err(e.at(me, committed)),
                            }
                            // Run the round against a snapshot: a death
                            // inside the collective (defense in depth — the
                            // vote above catches boundary deaths) rolls the
                            // scheduler back and retries over the
                            // survivors.
                            let (snap, cursor) =
                                sched.snapshot().map_err(|e| e.at(me, committed))?;
                            let parts: Vec<(usize, &[A::In])> = slots
                                .iter()
                                .filter_map(|slot| {
                                    slot.held.as_ref().map(|(o, d)| (*o, d.as_slice()))
                                })
                                .collect();
                            let spec = StepSpec::new(&parts)
                                .with_key_mode(key_mode)
                                .with_comm(Some(&mut staging_comm));
                            match sched.execute(spec, &mut out) {
                                Ok(()) => {}
                                Err(e) if is_peer_gone(&e) => {
                                    sched.restore(snap, cursor);
                                    heals += 1;
                                    continue;
                                }
                                Err(e) => return Err(e),
                            }
                            // Commit barrier: after it, every survivor has
                            // merged this round. A death here discards the
                            // round on every survivor (all see Healed for
                            // this sequence number), keeping the group
                            // uniform.
                            match ctl.exchange(&mut staging_comm, OP_COMMIT, &1u8) {
                                Ok(Exchange::Clean(_)) => break Round::Commit,
                                Ok(Exchange::Healed) => {
                                    sched.restore(snap, cursor);
                                    heals += 1;
                                }
                                Err(e) => return Err(e.at(me, committed)),
                            }
                        };
                        match outcome {
                            Round::Eos => break,
                            Round::Commit => {
                                stats.absorb(sched.last_stats());
                                // Only now are the held chunks durable:
                                // releasing the deferred credits is the
                                // commit acknowledgement that retires them
                                // from the producers' replay buffers.
                                for slot in slots.iter_mut() {
                                    if slot.held.take().is_some() {
                                        slot.rx
                                            .ack(&mut comm, 1)
                                            .map_err(|e| SmartError::Comm(e).at(me, committed))?;
                                    }
                                }
                                committed += 1;
                            }
                        }
                    }
                    for slot in &slots {
                        stats.transit_recv_busy += slot.rx.stats().recv_busy;
                        stats.transit_bytes += slot.rx.stats().bytes;
                    }
                    let map_bytes = sched.canonical_map_bytes().map_err(|e| e.at(me, committed))?;
                    Ok(HealedStagerOutcome {
                        out,
                        map_bytes,
                        rounds: committed,
                        heals,
                        adopted,
                        stats,
                        streams: slots.iter().map(|slot| slot.rx.stats().clone()).collect(),
                    })
                })
            })
            .collect();

        let producers: Vec<SmartResult<ProducerOutcome<R>>> = producer_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        let mut stagers: Vec<SmartResult<HealedStagerOutcome<A::Out>>> = stager_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();

        // Fold each staging group's producer send time into its home
        // stager's stats (mirrors run_in_transit; streams that rerouted
        // still report through their home block).
        for (s, stager) in stagers.iter_mut().enumerate() {
            if let Ok(stager) = stager {
                for p in topo.producers_of(s) {
                    // PANIC-FREE: producers_of yields world ranks < topo.producers = producers.len().
                    if let Ok(prod) = &producers[p] {
                        stager.stats.transit_send_busy += prod.stream.send_busy;
                    }
                }
            }
        }

        HealOutcome { producers, stagers }
    })
}
