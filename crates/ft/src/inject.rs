//! Deterministic fault injection for recovery tests and benchmarks.
//!
//! A [`FaultPlan`] names at most one `(rank, step)` pair; the drives check
//! it at the top of every step or round (`plan.check(...)?`), so an
//! injected death is **fail-stop at a boundary**: the victim has fully
//! committed the previous step — acknowledgements sent, checkpoints
//! written — and has sent nothing of the next one. That is the failure
//! model the recovery protocols assume (see DESIGN.md, "Failure model &
//! recovery"); mid-message deaths are out of scope.

use smart_core::{SmartError, SmartResult, Topology};

/// Where (if anywhere) to kill a rank, by world rank and step/round index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kill: Option<(usize, usize)>,
}

impl FaultPlan {
    /// No injected faults — the production value.
    pub const fn none() -> Self {
        FaultPlan { kill: None }
    }

    /// Kill world rank `rank` when it reaches `step`.
    pub const fn kill_rank(rank: usize, step: usize) -> Self {
        FaultPlan { kill: Some((rank, step)) }
    }

    /// Kill stager `s` of `topo` when it reaches round `round`.
    pub fn kill_stager(topo: Topology, s: usize, round: usize) -> Self {
        Self::kill_rank(topo.stager_world_rank(s), round)
    }

    /// Whether the plan names exactly this `(rank, step)` pair.
    pub fn fires(&self, rank: usize, step: usize) -> bool {
        self.kill == Some((rank, step))
    }

    /// The injection point: returns [`SmartError::Injected`] when the plan
    /// fires, making the caller's `?` the "death" (its thread unwinds
    /// normally, dropping its communicator, which is how peers learn).
    pub fn check(&self, rank: usize, step: usize) -> SmartResult<()> {
        if self.fires(rank, step) {
            Err(SmartError::Injected { rank, step })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_at_the_named_point() {
        let plan = FaultPlan::kill_rank(2, 5);
        assert!(plan.fires(2, 5));
        assert!(!plan.fires(2, 4) && !plan.fires(1, 5));
        assert!(plan.check(2, 4).is_ok());
        match plan.check(2, 5) {
            Err(SmartError::Injected { rank: 2, step: 5 }) => {}
            other => panic!("expected an injected fault, got {other:?}"),
        }
    }

    #[test]
    fn none_never_fires() {
        let plan = FaultPlan::none();
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.check(0, 0).is_ok());
    }

    #[test]
    fn kill_stager_translates_to_world_rank() {
        let topo = Topology::new(4, 2);
        // Stager 1 of a 4+2 topology is world rank 5.
        assert_eq!(FaultPlan::kill_stager(topo, 1, 3), FaultPlan::kill_rank(5, 3));
    }
}
