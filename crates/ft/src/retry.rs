//! Bounded exponential-backoff retry for transient failures.
//!
//! Used by the recovery driver around checkpoint writes (an `EINTR` or a
//! momentarily full disk should not abort a simulation step) and available
//! to callers for any operation with a transient/permanent error split.

use smart_sync::thread;
use std::time::Duration;

/// How often and how patiently to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: usize,
    /// Delay before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling the doubling saturates at.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` total attempts and the default delays.
    pub fn new(attempts: usize) -> Self {
        RetryPolicy { attempts, ..Default::default() }
    }

    /// The backoff before retry number `attempt` (0-based): `base · 2ᵃ`,
    /// capped at [`max_delay`](Self::max_delay).
    pub fn delay(&self, attempt: u32) -> Duration {
        self.base_delay.saturating_mul(1 << attempt.min(16)).min(self.max_delay)
    }
}

/// Run `op` until it succeeds, fails permanently, or exhausts
/// `policy.attempts`. Only errors for which `transient` returns `true` are
/// retried (after the policy's backoff); permanent errors — and the final
/// transient one — are returned to the caller unchanged.
pub fn retry<T, E>(
    policy: &RetryPolicy,
    transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if transient(&e) && (attempt as usize) + 1 < policy.attempts.max(1) => {
                thread::sleep(policy.delay(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn transient_errors_are_retried_until_success() {
        let calls = Cell::new(0u32);
        let out: Result<u32, &str> = retry(
            &RetryPolicy::new(5),
            |_| true,
            || {
                calls.set(calls.get() + 1);
                if calls.get() < 3 {
                    Err("flaky")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(out, Ok(99));
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn attempts_bound_is_respected() {
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = retry(
            &RetryPolicy::new(3),
            |_| true,
            || {
                calls.set(calls.get() + 1);
                Err("always")
            },
        );
        assert_eq!(out, Err("always"));
        assert_eq!(calls.get(), 3, "attempts includes the first call");
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = retry(
            &RetryPolicy::new(10),
            |e| *e != "fatal",
            || {
                calls.set(calls.get() + 1);
                Err("fatal")
            },
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(10));
        assert_eq!(policy.delay(1), Duration::from_millis(20));
        assert_eq!(policy.delay(2), Duration::from_millis(35));
        assert_eq!(policy.delay(31), Duration::from_millis(35), "huge exponents must not panic");
    }

    #[test]
    fn zero_attempt_policy_still_runs_once() {
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = retry(
            &RetryPolicy::new(0),
            |_| true,
            || {
                calls.set(calls.get() + 1);
                Err("still reported")
            },
        );
        assert_eq!(out, Err("still reported"));
        assert_eq!(calls.get(), 1);
    }
}
