//! The recovery driver: checkpoint every k steps, resume after a crash.
//!
//! [`run_recoverable`] wraps a step loop around [`Scheduler`]: before the
//! first step it consults the [`CkptStore`] and, when a valid snapshot
//! exists, restores the combined reduction object and the step cursor with
//! [`Scheduler::restore`]; afterwards it drives the caller's step closure
//! from the cursor and snapshots on the configured schedule. Because a
//! snapshot captures exactly the scheduler's combination map and cursor —
//! and because each step's merge is deterministic — a resumed run produces
//! a combination map **bit-identical** to the uninterrupted one.
//!
//! For distributed runs every rank calls `run_recoverable` with the same
//! `every`: global combination is a per-step barrier, so at a fail-stop
//! boundary every rank has completed the same number of steps, all ranks'
//! newest epochs agree, and the survivors' failed step never merged into
//! their maps (global combination fails before the merge). Restarting all
//! ranks therefore resumes from one common cursor.

use crate::inject::FaultPlan;
use crate::retry::{retry, RetryPolicy};
use crate::store::{CkptError, CkptStore};
use smart_core::{Analytics, Key, RunStats, Scheduler, SmartError};
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Where and how often to checkpoint, and how stubbornly to retry writes.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Checkpoint directory (shared between ranks; filenames carry the
    /// rank).
    pub dir: PathBuf,
    /// Snapshot after every `every` completed steps (and always after the
    /// final one).
    pub every: usize,
    /// On-disk epochs to retain per rank.
    pub retain: usize,
    /// Retry policy for transient checkpoint-write failures.
    pub retry: RetryPolicy,
}

impl RecoveryConfig {
    /// Checkpoint into `dir` after every step, retaining two epochs (the
    /// newest may be torn by the very crash being recovered from).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RecoveryConfig { dir: dir.into(), every: 1, retain: 2, retry: RetryPolicy::default() }
    }

    /// Set the checkpoint interval in steps (minimum 1).
    pub fn with_every(mut self, every: usize) -> Self {
        assert!(every > 0, "a checkpoint interval of zero steps is meaningless");
        self.every = every;
        self
    }

    /// Set how many epochs stay on disk (minimum 1).
    pub fn with_retain(mut self, retain: usize) -> Self {
        assert!(retain > 0, "retaining zero epochs would make recovery impossible");
        self.retain = retain;
        self
    }

    /// Set the write-retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Build a config from the environment: `SMART_CKPT_DIR` (required —
    /// returns `None` without it), `SMART_CKPT_EVERY`, `SMART_CKPT_RETAIN`.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os("SMART_CKPT_DIR")?;
        let mut cfg = RecoveryConfig::new(PathBuf::from(dir));
        if let Some(every) = env_usize("SMART_CKPT_EVERY") {
            cfg.every = every.max(1);
        }
        if let Some(retain) = env_usize("SMART_CKPT_RETAIN") {
            cfg.retain = retain.max(1);
        }
        Some(cfg)
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// What a [`run_recoverable`] call did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// `Some(cursor)` when a checkpoint was restored: the step index the
    /// run resumed from. `None` for a cold start.
    pub resumed_from: Option<usize>,
    /// Steps this call actually executed (excludes restored ones).
    pub steps_run: usize,
    /// Accumulated per-step stats plus checkpoint overhead (`ckpt_busy`,
    /// `ckpt_bytes`, `ckpts`).
    pub stats: RunStats,
}

/// A recovery-driver failure: either the checkpoint store or the run
/// itself.
#[derive(Debug)]
pub enum RecoverError {
    /// Reading or writing a checkpoint failed (after retries, for
    /// transient cases).
    Ckpt(CkptError),
    /// A step failed — including [`SmartError::Injected`] deaths from a
    /// fault plan.
    Run(SmartError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Ckpt(e) => write!(f, "checkpoint store: {e}"),
            RecoverError::Run(e) => write!(f, "recoverable run: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Ckpt(e) => Some(e),
            RecoverError::Run(e) => Some(e),
        }
    }
}

impl From<CkptError> for RecoverError {
    fn from(e: CkptError) -> Self {
        RecoverError::Ckpt(e)
    }
}

impl From<SmartError> for RecoverError {
    fn from(e: SmartError) -> Self {
        RecoverError::Run(e)
    }
}

/// Drive `sched` through steps `[steps_run, num_steps)` with periodic
/// checkpoints, resuming from the newest valid snapshot in `cfg.dir` when
/// one exists.
///
/// `step_fn(sched, t)` must execute exactly step `t` (feed the step's data
/// through `Scheduler::execute`/`run*`). `rank` names this process in the
/// checkpoint store and in injected-fault errors; single-rank callers pass
/// 0. Stats collection is forced on so checkpoint overhead lands in the
/// report's [`RunStats`].
pub fn run_recoverable<A, F>(
    sched: &mut Scheduler<A>,
    cfg: &RecoveryConfig,
    rank: usize,
    num_steps: usize,
    plan: FaultPlan,
    mut step_fn: F,
) -> Result<RecoveryReport, RecoverError>
where
    A: Analytics,
    F: FnMut(&mut Scheduler<A>, usize) -> Result<(), SmartError>,
{
    let store = CkptStore::create(&cfg.dir, rank, cfg.retain)?;
    let mut resumed_from = None;
    if let Some(rec) = store.load_latest()? {
        let entries: Vec<(Key, A::Red)> =
            smart_wire::from_bytes(&rec.payload).map_err(CkptError::from)?;
        sched.restore(entries, rec.step as usize);
        resumed_from = Some(rec.step as usize);
    }
    sched.set_collect_stats(true);
    let mut stats = RunStats::default();
    let first = sched.steps_run();
    for t in first..num_steps {
        plan.check(rank, t).map_err(|e| RecoverError::Run(e.at(rank, t)))?;
        step_fn(sched, t).map_err(|e| RecoverError::Run(e.at(rank, t)))?;
        stats.absorb(sched.last_stats());
        if (t + 1) % cfg.every == 0 || t + 1 == num_steps {
            checkpoint(&store, cfg, sched, &mut stats)?;
        }
    }
    Ok(RecoveryReport { resumed_from, steps_run: sched.steps_run().saturating_sub(first), stats })
}

/// Snapshot the scheduler into the store (with retries for transient I/O)
/// and report the overhead through the stats sink.
fn checkpoint<A: Analytics>(
    store: &CkptStore,
    cfg: &RecoveryConfig,
    sched: &Scheduler<A>,
    stats: &mut RunStats,
) -> Result<(), RecoverError> {
    use smart_core::PhaseObserver;
    let started = Instant::now();
    let (entries, cursor) = sched.snapshot().map_err(RecoverError::Run)?;
    let payload = smart_wire::to_bytes(&entries).map_err(CkptError::from)?;
    let bytes = retry(&cfg.retry, CkptError::is_transient, || {
        store.save(cursor as u64, cursor as u64, &payload)
    })?;
    stats.checkpoint_done(bytes, started.elapsed());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_builders() {
        let cfg = RecoveryConfig::new("/tmp/ckpt").with_every(3).with_retain(5);
        assert_eq!((cfg.every, cfg.retain), (3, 5));
        assert_eq!(cfg.dir, PathBuf::from("/tmp/ckpt"));
        assert_eq!(RecoveryConfig::new("x").every, 1);
    }

    #[test]
    fn config_reads_the_environment() {
        // Process-global env: use keys no other test touches beyond this
        // module and restore them before returning.
        std::env::remove_var("SMART_CKPT_DIR");
        assert!(RecoveryConfig::from_env().is_none());
        std::env::set_var("SMART_CKPT_DIR", "/tmp/smart-ft-env");
        std::env::set_var("SMART_CKPT_EVERY", "7");
        std::env::set_var("SMART_CKPT_RETAIN", "3");
        let cfg = RecoveryConfig::from_env().expect("dir is set");
        assert_eq!(cfg.dir, PathBuf::from("/tmp/smart-ft-env"));
        assert_eq!((cfg.every, cfg.retain), (7, 3));
        std::env::remove_var("SMART_CKPT_DIR");
        std::env::remove_var("SMART_CKPT_EVERY");
        std::env::remove_var("SMART_CKPT_RETAIN");
    }

    #[test]
    fn errors_name_their_layer() {
        let e = RecoverError::from(CkptError::BadVersion { found: 9 });
        assert!(e.to_string().contains("checkpoint store"));
        let e = RecoverError::from(SmartError::Injected { rank: 1, step: 2 });
        assert!(e.to_string().contains("rank 1"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
