//! Versioned, CRC-validated on-disk snapshots of the combined reduction
//! object.
//!
//! This module is one of exactly two places in the workspace where the
//! runtime writes the filesystem (`cargo xtask lint` rule `no-fs-writes`;
//! the other is `smart-spill`'s run store, which owns the shared atomic
//! write primitive both use): durable state that bypassed a sanctioned
//! store would be invisible to the recovery driver, so every persisted
//! checkpoint byte funnels through [`CkptStore`].
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SMCK"
//! 4       4     format version (currently 1)
//! 8       8     epoch (monotone checkpoint counter)
//! 16      8     scheduler step cursor at the snapshot
//! 24      8     payload length in bytes
//! 32      n     payload (smart_wire-encoded sorted combination-map entries)
//! 32+n    4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Writes are atomic with respect to crashes: the record goes to a
//! temporary file in the same directory, is fsynced, and is renamed over
//! the final per-rank name, so a reader sees either the old epoch set or
//! the new one — never a half-written record. A record that *still* fails
//! validation (torn at the filesystem layer, bit rot, a stale format)
//! decodes to a typed [`CkptError`], never a panic, and
//! [`CkptStore::load_latest`] silently falls back to the newest epoch that
//! does validate — that fallback is the whole point of retaining more than
//! one epoch.

use smart_spill::AtomicFile;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the classic
/// zlib/PNG checksum. The implementation moved to `smart-spill` (whose
/// runs share it); re-exported here so the checkpoint format and API stay
/// byte-for-byte unchanged.
pub use smart_spill::crc32;

/// File magic: "SMart ChecKpoint".
pub const MAGIC: [u8; 4] = *b"SMCK";

/// Current record format version.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;
const CRC_LEN: usize = 4;

/// A decoded checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptRecord {
    /// Monotone checkpoint counter (the recovery driver uses the step
    /// cursor, so epochs double as resume points).
    pub epoch: u64,
    /// Scheduler step cursor at the snapshot: how many steps the combined
    /// reduction object already incorporates.
    pub step: u64,
    /// Serialized sorted combination-map entries.
    pub payload: Vec<u8>,
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure. The only transient variant — see
    /// [`is_transient`](Self::is_transient).
    Io(std::io::Error),
    /// The payload failed to (de)serialize.
    Codec(smart_wire::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The record was written by an incompatible format version.
    BadVersion {
        /// The version the header claims.
        found: u32,
    },
    /// The file is shorter (or longer) than its header promises.
    Truncated {
        /// Bytes actually present.
        len: usize,
        /// Bytes the record needs.
        need: usize,
    },
    /// The checksum does not match the record contents.
    CorruptCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the record.
        computed: u32,
    },
}

impl CkptError {
    /// Whether retrying the operation could plausibly succeed. Only I/O
    /// errors qualify; a corrupt or mis-versioned record stays corrupt no
    /// matter how often it is re-read.
    pub fn is_transient(&self) -> bool {
        matches!(self, CkptError::Io(_))
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CkptError::Codec(e) => write!(f, "checkpoint payload codec failed: {e}"),
            CkptError::BadMagic { found } => {
                write!(f, "not a checkpoint record (magic {found:02x?})")
            }
            CkptError::BadVersion { found } => {
                write!(f, "checkpoint format version {found} (this runtime reads {VERSION})")
            }
            CkptError::Truncated { len, need } => {
                write!(f, "truncated checkpoint: {len} bytes present, {need} needed")
            }
            CkptError::CorruptCrc { stored, computed } => {
                write!(f, "checkpoint CRC mismatch: stored {stored:08x}, computed {computed:08x}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

impl From<smart_wire::Error> for CkptError {
    fn from(e: smart_wire::Error) -> Self {
        CkptError::Codec(e)
    }
}

/// Serialize a checkpoint record (header + payload + CRC trailer).
pub fn encode(epoch: u64, step: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&step.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Validate and deserialize a checkpoint record. Every malformation maps to
/// a typed [`CkptError`]; no input can panic this function.
// PANIC-FREE: the length guards bound every range — constant ranges sit inside the checked
// 36-byte minimum, and the `need` ranges follow the exact-length check.
pub fn decode(bytes: &[u8]) -> Result<CkptRecord, CkptError> {
    if bytes.len() < HEADER_LEN + CRC_LEN {
        return Err(CkptError::Truncated { len: bytes.len(), need: HEADER_LEN + CRC_LEN });
    }
    // PANIC-FREE: the slice is exactly 4 bytes, so try_into always succeeds.
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(CkptError::BadMagic { found: magic });
    }
    // PANIC-FREE: the slice is exactly 4 bytes, so try_into always succeeds.
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(CkptError::BadVersion { found: version });
    }
    // PANIC-FREE: the slice is exactly 8 bytes, so try_into always succeeds.
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    // PANIC-FREE: the slice is exactly 8 bytes, so try_into always succeeds.
    let step = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    // PANIC-FREE: the slice is exactly 8 bytes, so try_into always succeeds.
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let need =
        match usize::try_from(payload_len).ok().and_then(|n| n.checked_add(HEADER_LEN + CRC_LEN)) {
            Some(need) => need,
            None => return Err(CkptError::Truncated { len: bytes.len(), need: usize::MAX }),
        };
    if bytes.len() != need {
        return Err(CkptError::Truncated { len: bytes.len(), need });
    }
    // PANIC-FREE: the slice is exactly CRC_LEN = 4 bytes, so try_into always succeeds.
    let stored = u32::from_le_bytes(bytes[need - CRC_LEN..need].try_into().expect("4-byte slice"));
    let computed = crc32(&bytes[..need - CRC_LEN]);
    if stored != computed {
        return Err(CkptError::CorruptCrc { stored, computed });
    }
    Ok(CkptRecord { epoch, step, payload: bytes[HEADER_LEN..need - CRC_LEN].to_vec() })
}

/// A per-rank checkpoint directory: atomic writes, epoch enumeration, and a
/// bounded retention window.
///
/// Several ranks may share one directory — filenames carry the rank — but a
/// `CkptStore` instance reads and prunes only its own rank's records.
#[derive(Debug)]
pub struct CkptStore {
    dir: PathBuf,
    rank: usize,
    retain: usize,
}

impl CkptStore {
    /// Open (creating if necessary) the checkpoint directory for `rank`,
    /// keeping at most `retain` epochs on disk.
    pub fn create(dir: impl Into<PathBuf>, rank: usize, retain: usize) -> Result<Self, CkptError> {
        assert!(retain > 0, "a retention window of zero would delete every checkpoint");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CkptStore { dir, rank, retain })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The rank whose records this store manages.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn prefix(&self) -> String {
        format!("ckpt-r{}-", self.rank)
    }

    /// Path of this rank's record for `epoch`.
    pub fn path_of(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("ckpt-r{}-{epoch:012}.smck", self.rank))
    }

    /// Atomically persist one record; returns the bytes written. The record
    /// is complete on disk (fsynced) before the rename makes it visible, so
    /// a crash at any point leaves either the previous epoch set or the new
    /// one.
    pub fn save(&self, epoch: u64, step: u64, payload: &[u8]) -> Result<u64, CkptError> {
        let bytes = encode(epoch, step, payload);
        let tmp = self.dir.join(format!(".ckpt-r{}.tmp", self.rank));
        let mut file = AtomicFile::create(tmp)?;
        file.write_all(&bytes)?;
        file.commit(&self.path_of(epoch))?;
        self.prune()?;
        Ok(bytes.len() as u64)
    }

    fn prune(&self) -> Result<(), CkptError> {
        let epochs = self.epochs()?;
        if epochs.len() > self.retain {
            // PANIC-FREE: the branch guarantees len − retain ≤ len, so the prefix range is in bounds.
            for &old in &epochs[..epochs.len() - self.retain] {
                fs::remove_file(self.path_of(old))?;
            }
        }
        Ok(())
    }

    /// This rank's on-disk epochs, ascending. Files that don't follow the
    /// store's naming scheme are ignored.
    pub fn epochs(&self) -> Result<Vec<u64>, CkptError> {
        let prefix = self.prefix();
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else { continue };
            let Some(digits) = rest.strip_suffix(".smck") else { continue };
            if let Ok(epoch) = digits.parse::<u64>() {
                found.push(epoch);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Read and validate one specific epoch, surfacing exactly what is
    /// wrong with it when it fails.
    pub fn load_epoch(&self, epoch: u64) -> Result<CkptRecord, CkptError> {
        decode(&fs::read(self.path_of(epoch))?)
    }

    /// The newest epoch that validates, or `Ok(None)` when no usable record
    /// exists. Invalid records — the torn newest write after a crash is the
    /// expected case — are skipped, not fatal.
    pub fn load_latest(&self) -> Result<Option<CkptRecord>, CkptError> {
        for &epoch in self.epochs()?.iter().rev() {
            if let Ok(rec) = self.load_epoch(epoch) {
                return Ok(Some(rec));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smart-ft-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = decode(&encode(7, 42, b"payload")).unwrap();
        assert_eq!(rec, CkptRecord { epoch: 7, step: 42, payload: b"payload".to_vec() });
        let empty = decode(&encode(0, 0, b"")).unwrap();
        assert_eq!(empty.payload, b"");
    }

    #[test]
    fn save_load_and_retention() {
        let dir = scratch("retention");
        let store = CkptStore::create(&dir, 3, 2).unwrap();
        for epoch in 1..=4u64 {
            let written = store.save(epoch, epoch * 10, &[epoch as u8; 8]).unwrap();
            assert_eq!(written, 32 + 8 + 4);
        }
        // Only the last two epochs survive pruning.
        assert_eq!(store.epochs().unwrap(), vec![3, 4]);
        let rec = store.load_latest().unwrap().unwrap();
        assert_eq!((rec.epoch, rec.step), (4, 40));
        assert_eq!(rec.payload, [4u8; 8]);
        // No temporary file is left behind.
        assert!(!dir.join(".ckpt-r3.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stores_for_different_ranks_share_a_directory() {
        let dir = scratch("shared");
        let a = CkptStore::create(&dir, 0, 4).unwrap();
        let b = CkptStore::create(&dir, 1, 4).unwrap();
        a.save(1, 1, b"rank0").unwrap();
        b.save(2, 2, b"rank1").unwrap();
        assert_eq!(a.epochs().unwrap(), vec![1]);
        assert_eq!(b.epochs().unwrap(), vec![2]);
        assert_eq!(a.load_latest().unwrap().unwrap().payload, b"rank0");
        assert_eq!(b.load_latest().unwrap().unwrap().payload, b"rank1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_on_missing_or_empty_dir() {
        let dir = scratch("empty");
        let store = CkptStore::create(&dir, 0, 1).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        assert!(store.epochs().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
