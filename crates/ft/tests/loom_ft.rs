//! Model-checked failover invariant for the fault-tolerance layer: when a
//! stager dies mid-stream, the replacement receiver gets **exactly the
//! unacknowledged suffix** — every schedule delivers each chunk exactly
//! once across the two receivers, in order, with no hang.
//!
//! This is the transport half of the heal protocol's no-loss/no-duplicate
//! argument (the commit half — deferred crediting — is exercised by the
//! concrete tests in `ft_recovery.rs`).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-ft --test loom_ft`
#![cfg(loom)]

use smart_comm::stream::{StreamConfig, StreamReceiver, StreamSender};
use smart_comm::{CommConfig, CommError};
use smart_sync::{model, thread};

/// Rank 0 feeds 3 chunks under a window of 1 with `retain_unacked`; rank 1
/// consumes exactly one chunk (acknowledging it) and dies; rank 0 fails
/// over to rank 2, which must observe precisely chunks 1 and 2 and then a
/// clean end-of-stream, on every schedule.
#[test]
fn failover_replays_exactly_the_unacked_suffix() {
    model::check(|| {
        let mut u = smart_comm::universe(3, CommConfig::default()).into_iter();
        let mut prod = u.next().unwrap();
        let mut first = u.next().unwrap();
        let mut second = u.next().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                // The doomed stager: consume one chunk — `recv` credits it
                // immediately, which under `retain_unacked` is the
                // acknowledgement that retires it from the replay buffer —
                // then die by dropping the communicator.
                let mut rx = StreamReceiver::<u64>::new(0);
                let got = rx.recv(&mut first).unwrap().expect("one chunk before dying");
                assert_eq!(got.0, 0, "the first delivered chunk is step 0");
            });
            s.spawn(move || {
                // The adopter: everything the dead stager did not
                // acknowledge, in order, then EOS.
                let mut rx = StreamReceiver::<u64>::new(0);
                let mut steps = Vec::new();
                while let Some((step, offset, data)) = rx.recv(&mut second).unwrap() {
                    assert_eq!(offset, 7);
                    assert_eq!(data, vec![step; 2]);
                    steps.push(step);
                }
                assert_eq!(steps, vec![1, 2], "exactly the unacked suffix, exactly once");
                assert!(rx.is_finished());
            });
            // The producer: feed through the death, reroute, and require
            // full acknowledgement of every chunk.
            let cfg = StreamConfig::with_window(1).with_retain_unacked(true);
            let mut tx = StreamSender::<u64>::new(1, cfg);
            let mut fed = 0u64;
            while fed < 3 {
                match tx.feed(&mut prod, 7, &vec![fed; 2]) {
                    Ok(()) => fed += 1,
                    Err(CommError::PeerGone { peer: 1 }) => {
                        // The chunk that hit PeerGone is already queued in
                        // the replay buffer — count it fed, don't re-feed.
                        tx.failover(2);
                        fed += 1;
                    }
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
            loop {
                match tx.finish_wait_acked(&mut prod) {
                    Ok(()) => break,
                    Err(CommError::PeerGone { peer: 1 }) => tx.failover(2),
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
            // `steps` counts transmitted chunks: the 3 fed plus whatever
            // the failover replayed onto the adopter.
            assert_eq!(tx.stats().steps, 3 + tx.stats().replayed);
            assert_eq!(tx.stats().reroutes, 1);
            assert!(tx.stats().replayed >= 1, "the suffix must have been replayed");
            assert_eq!(tx.unacked_len(), 0, "finish_wait_acked drains the replay buffer");
        });
    });
}
