//! End-to-end fault-tolerance tests: checkpoint corruption handling,
//! kill/restart recovery (single-rank and distributed), self-healing
//! in-transit topologies under stager and producer death, and failure
//! detection. The recovery acceptance bar throughout is **bit identity**:
//! a recovered run's canonical combination-map bytes equal the
//! uninterrupted run's.

use serde::{Deserialize, Serialize};
use smart_comm::run_cluster;
use smart_core::{
    Analytics, Chunk, ComMap, InTransitConfig, Key, KeyMode, RedObj, SchedArgs, Scheduler,
    SmartError, StepSpec, Topology,
};
use smart_ft::{
    await_death, decode, encode, probe, run_in_transit_healing, run_recoverable, serve_pings,
    CkptError, CkptStore, FaultPlan, FtProducer, Probe, RecoverError, RecoveryConfig,
};
use smart_pool::shared_pool;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smart-ft-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[derive(Clone, Serialize, Deserialize, Default, Debug)]
struct Acc {
    sum: f64,
    n: u64,
}
impl RedObj for Acc {}

/// Sums each 8-element block (keyed by `global_start / 8`) — one key per
/// rank/producer, so recovered maps are easy to predict and the data is
/// integer-valued (exact in f64, making bit-identity meaningful).
struct SumPerBlock;
impl Analytics for SumPerBlock {
    type In = f64;
    type Red = Acc;
    type Out = f64;
    type Extra = ();
    fn gen_key(&self, chunk: &Chunk, _d: &[f64], _com: &ComMap<Acc>) -> Key {
        (chunk.global_start / 8) as Key
    }
    fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Acc>) {
        let a = obj.get_or_insert_with(Acc::default);
        a.sum += d[c.local_start];
        a.n += 1;
    }
    fn merge(&self, red: &Acc, com: &mut Acc) {
        com.sum += red.sum;
        com.n += red.n;
    }
    fn convert(&self, obj: &Acc, out: &mut f64) {
        *out = obj.sum;
    }
}

fn step_data(rank: usize, t: usize) -> Vec<f64> {
    (0..8).map(|i| ((t * 31 + rank * 7 + i) % 13) as f64).collect()
}

fn make_sched() -> Scheduler<SumPerBlock> {
    Scheduler::new(SumPerBlock, SchedArgs::new(2, 1), shared_pool(2).unwrap()).unwrap()
}

fn map_bytes(sched: &Scheduler<SumPerBlock>) -> Vec<u8> {
    smart_wire::to_bytes(&sched.combination_map().to_sorted_entries()).unwrap()
}

/// Run one in-situ step on `sched`: this rank's 8-element partition.
fn run_step(
    sched: &mut Scheduler<SumPerBlock>,
    rank: usize,
    t: usize,
    comm: Option<&mut smart_comm::Communicator>,
) -> Result<(), SmartError> {
    let data = step_data(rank, t);
    let parts = [(rank * 8, data.as_slice())];
    let mut out = vec![0.0f64; 8];
    sched.execute(StepSpec::new(&parts).with_key_mode(KeyMode::Single).with_comm(comm), &mut out)
}

// ---------------------------------------------------------------------
// Wire format: corruption never panics, always a typed error.
// ---------------------------------------------------------------------

#[test]
fn every_single_bit_flip_is_rejected() {
    let record = encode(3, 9, b"some payload bytes");
    assert!(decode(&record).is_ok());
    for byte in 0..record.len() {
        for bit in 0..8 {
            let mut bad = record.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                decode(&bad).is_err(),
                "flipping bit {bit} of byte {byte} must invalidate the record"
            );
        }
    }
    // Truncation at every length is rejected too.
    for len in 0..record.len() {
        assert!(decode(&record[..len]).is_err(), "truncation to {len} bytes must be rejected");
    }
}

#[test]
fn corruption_maps_to_specific_errors() {
    let record = encode(1, 2, b"payload");
    let mut bad_magic = record.clone();
    bad_magic[0] = b'X';
    assert!(matches!(decode(&bad_magic), Err(CkptError::BadMagic { .. })));

    let mut stale_version = record.clone();
    stale_version[4] = 99;
    match decode(&stale_version) {
        Err(CkptError::BadVersion { found: 99 }) => {}
        other => panic!("expected BadVersion, got {other:?}"),
    }

    let mut flipped_crc = record.clone();
    *flipped_crc.last_mut().unwrap() ^= 0xFF;
    assert!(matches!(decode(&flipped_crc), Err(CkptError::CorruptCrc { .. })));

    let mut flipped_payload = record.clone();
    flipped_payload[34] ^= 0x01;
    assert!(matches!(decode(&flipped_payload), Err(CkptError::CorruptCrc { .. })));

    assert!(matches!(decode(&record[..record.len() - 3]), Err(CkptError::Truncated { .. })));
    assert!(matches!(decode(&[]), Err(CkptError::Truncated { .. })));
}

#[test]
fn load_latest_falls_back_past_a_torn_newest_epoch() {
    let dir = scratch("fallback");
    let store = CkptStore::create(&dir, 0, 4).unwrap();
    store.save(1, 1, b"old epoch").unwrap();
    store.save(2, 2, b"new epoch").unwrap();
    // Tear the newest record the way a crash mid-write would.
    let newest = store.path_of(2);
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(store.load_epoch(2), Err(CkptError::Truncated { .. })));
    let rec = store.load_latest().unwrap().expect("epoch 1 is intact");
    assert_eq!((rec.epoch, rec.payload.as_slice()), (1, b"old epoch".as_slice()));
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Kill/restart recovery.
// ---------------------------------------------------------------------

#[test]
fn single_rank_kill_and_restart_is_bit_identical() {
    let steps = 6usize;

    // Uninterrupted reference.
    let ref_dir = scratch("single-ref");
    let mut reference = make_sched();
    let report = run_recoverable(
        &mut reference,
        &RecoveryConfig::new(&ref_dir).with_every(2),
        0,
        steps,
        FaultPlan::none(),
        |sched, t| run_step(sched, 0, t, None),
    )
    .unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.steps_run, steps);
    // Checkpoint overhead lands in the run stats: after steps 2, 4, 6.
    assert_eq!(report.stats.ckpts, 3);
    assert!(report.stats.ckpt_bytes > 0);

    // Killed run: the fault plan fires at step 4, after the epoch-4
    // checkpoint committed.
    let dir = scratch("single-crash");
    let cfg = RecoveryConfig::new(&dir).with_every(2);
    let mut crashed = make_sched();
    let err = run_recoverable(&mut crashed, &cfg, 0, steps, FaultPlan::kill_rank(0, 4), |s, t| {
        run_step(s, 0, t, None)
    })
    .unwrap_err();
    match err {
        RecoverError::Run(SmartError::Context { rank: 0, step: 4, source }) => {
            assert!(matches!(*source, SmartError::Injected { rank: 0, step: 4 }))
        }
        other => panic!("expected a located injected fault, got {other}"),
    }
    assert_eq!(CkptStore::create(&dir, 0, 2).unwrap().epochs().unwrap(), vec![2, 4]);

    // Restart in a fresh process (fresh scheduler): resumes from the
    // newest checkpoint and finishes bit-identically.
    let mut resumed = make_sched();
    let report = run_recoverable(&mut resumed, &cfg, 0, steps, FaultPlan::none(), |s, t| {
        run_step(s, 0, t, None)
    })
    .unwrap();
    assert_eq!(report.resumed_from, Some(4));
    assert_eq!(report.steps_run, 2, "only the lost tail is replayed");
    assert_eq!(report.stats.ckpts, 1);
    assert_eq!(map_bytes(&resumed), map_bytes(&reference));

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distributed_worker_death_recovers_bit_identically() {
    let steps = 6usize;

    // Uninterrupted two-rank reference.
    let ref_dir = scratch("dist-ref");
    let reference: Vec<Vec<u8>> = run_cluster(2, |mut comm| {
        let rank = comm.rank();
        let mut sched = make_sched();
        run_recoverable(
            &mut sched,
            &RecoveryConfig::new(&ref_dir),
            rank,
            steps,
            FaultPlan::none(),
            |s, t| run_step(s, rank, t, Some(&mut comm)),
        )
        .unwrap();
        map_bytes(&sched)
    });
    assert_eq!(reference[0], reference[1], "global combination synchronizes the maps");

    // Rank 1 dies at its step-3 boundary; rank 0's global combination for
    // step 3 observes the death and aborts without merging.
    let dir = scratch("dist-crash");
    let crash_dir = dir.clone();
    let crashed: Vec<RecoverError> = run_cluster(2, move |mut comm| {
        let rank = comm.rank();
        let mut sched = make_sched();
        run_recoverable(
            &mut sched,
            &RecoveryConfig::new(&crash_dir),
            rank,
            steps,
            FaultPlan::kill_rank(1, 3),
            |s, t| run_step(s, rank, t, Some(&mut comm)),
        )
        .unwrap_err()
    });
    match &crashed[1] {
        RecoverError::Run(SmartError::Context { rank: 1, step: 3, .. }) => {}
        other => panic!("rank 1 must die of its injected fault, got {other}"),
    }
    match &crashed[0] {
        // The survivor's error names who observed the failure and when.
        RecoverError::Run(SmartError::Context { rank: 0, step: 3, .. }) => {}
        other => panic!("rank 0 must observe the death at step 3, got {other}"),
    }
    // Both ranks' newest epochs agree (step-boundary consistency).
    for rank in 0..2 {
        let store = CkptStore::create(&dir, rank, 2).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().step, 3, "rank {rank}");
    }

    // Restart the whole job: both ranks resume from the common cursor and
    // the final maps match the uninterrupted run bit for bit.
    let restart_dir = dir.clone();
    let restarted: Vec<(Option<usize>, Vec<u8>)> = run_cluster(2, move |mut comm| {
        let rank = comm.rank();
        let mut sched = make_sched();
        let report = run_recoverable(
            &mut sched,
            &RecoveryConfig::new(&restart_dir),
            rank,
            steps,
            FaultPlan::none(),
            |s, t| run_step(s, rank, t, Some(&mut comm)),
        )
        .unwrap();
        (report.resumed_from, map_bytes(&sched))
    });
    for (rank, (resumed_from, bytes)) in restarted.iter().enumerate() {
        assert_eq!(*resumed_from, Some(3), "rank {rank}");
        assert_eq!(*bytes, reference[0], "rank {rank} must match the uninterrupted map");
    }

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Self-healing in-transit topologies.
// ---------------------------------------------------------------------

fn healing_run(
    topo: Topology,
    steps_of: impl Fn(usize) -> usize + Sync,
    plan: FaultPlan,
) -> smart_ft::HealOutcome<usize, f64> {
    run_in_transit_healing(
        topo,
        InTransitConfig::with_window(2),
        KeyMode::Single,
        plan,
        |prod: &mut FtProducer<f64>| {
            let offset = prod.index() * 8;
            for t in 0..steps_of(prod.index()) {
                prod.feed(offset, &step_data(prod.index(), t))?;
            }
            Ok(prod.index())
        },
        |_s| Ok((make_sched(), vec![0.0f64; 4])),
    )
}

#[test]
fn stager_death_heals_and_stays_bit_identical() {
    let topo = Topology::new(4, 2);
    let steps = 6usize;

    let reference = healing_run(topo, |_| steps, FaultPlan::none());
    let ref_stagers: Vec<_> = reference.stagers.into_iter().map(|s| s.unwrap()).collect();
    assert_eq!(ref_stagers[0].map_bytes, ref_stagers[1].map_bytes);
    assert_eq!(ref_stagers[0].heals + ref_stagers[1].heals, 0);

    // Kill stager 1 (world rank 5) at its round-2 boundary: rounds 0 and 1
    // are committed and acknowledged; its producers' later chunks are
    // replayed to stager 0.
    let outcome = healing_run(topo, |_| steps, FaultPlan::kill_stager(topo, 1, 2));
    match &outcome.stagers[1] {
        Err(SmartError::Injected { rank: 5, step: 2 }) => {}
        other => panic!("stager 1 must die of its injected fault, got {other:?}"),
    }
    let survivor = outcome.stagers[0].as_ref().expect("stager 0 survives and heals");
    assert_eq!(
        survivor.map_bytes, ref_stagers[0].map_bytes,
        "the healed map must be bit-identical to the uninterrupted run's"
    );
    assert_eq!(survivor.out, ref_stagers[0].out);
    assert_eq!(survivor.rounds, steps);
    assert_eq!(survivor.stats.iters, steps, "discarded heal attempts must not count");
    assert!(survivor.heals >= 1, "the death must cost at least one heal retry");
    assert_eq!(survivor.adopted, 2, "both orphaned producer streams are adopted");
    assert_eq!(survivor.streams.len(), 4);

    // Every producer survives; the orphaned ones rerouted and replayed.
    let producers: Vec<_> = outcome.producers.into_iter().map(|p| p.unwrap()).collect();
    for (p, prod) in producers.iter().enumerate() {
        assert_eq!(prod.result, p);
        // `steps` counts transmitted chunks, so a rerouted producer shows
        // its fed steps plus the replayed suffix — never fewer, never more.
        assert_eq!(prod.stream.steps, steps as u64 + prod.stream.replayed);
    }
    for p in topo.producers_of(1) {
        assert!(producers[p].stream.reroutes >= 1, "producer {p} must reroute");
    }
    let replayed: u64 = producers.iter().map(|p| p.stream.replayed).sum();
    assert!(replayed >= 1, "unacknowledged chunks must be replayed to the adopter");
}

#[test]
fn producer_death_is_equivalent_to_a_shorter_stream() {
    let topo = Topology::new(4, 2);

    // Reference: producer 1 legitimately feeds only 2 of 6 steps.
    let reference = healing_run(topo, |p| if p == 1 { 2 } else { 6 }, FaultPlan::none());
    let ref_stagers: Vec<_> = reference.stagers.into_iter().map(|s| s.unwrap()).collect();
    assert_eq!(ref_stagers[0].map_bytes, ref_stagers[1].map_bytes);

    // Faulted: producer 1 tries to feed 6 steps but is killed at its
    // step-2 feed — steps 0 and 1 are already on the wire and must still
    // count; the truncated tail must not wedge the stagers.
    let outcome = healing_run(topo, |_| 6, FaultPlan::kill_rank(1, 2));
    match &outcome.producers[1] {
        Err(SmartError::Injected { rank: 1, step: 2 }) => {}
        other => panic!("producer 1 must die of its injected fault, got {other:?}"),
    }
    for p in [0, 2, 3] {
        assert!(outcome.producers[p].is_ok(), "producer {p} must finish cleanly");
    }
    let stagers: Vec<_> = outcome.stagers.into_iter().map(|s| s.unwrap()).collect();
    assert_eq!(stagers[0].map_bytes, stagers[1].map_bytes);
    assert_eq!(
        stagers[0].map_bytes, ref_stagers[0].map_bytes,
        "a killed producer must equal a producer that stopped feeding"
    );
    assert_eq!(stagers[0].out, ref_stagers[0].out);
}

// ---------------------------------------------------------------------
// Failure detection.
// ---------------------------------------------------------------------

#[test]
fn probes_see_a_peer_alive_then_confirm_its_death() {
    let outcomes = run_cluster(2, |mut comm| {
        if comm.rank() == 0 {
            // Answer pings until at least one probe was served, then die.
            let mut served = 0usize;
            while served == 0 {
                served += serve_pings(&mut comm).unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
            true
        } else {
            // Probe until the peer answers (it may not be serving yet).
            loop {
                match probe(&mut comm, 0, Duration::from_millis(5)).unwrap() {
                    Probe::Alive => break,
                    Probe::NoReply => continue,
                    Probe::Dead => panic!("peer must be alive while it serves pings"),
                }
            }
            // The peer exits after serving; the transport confirms the
            // death and records it in the alive set.
            let confirmed = await_death(&mut comm, 0, Duration::from_millis(2), 10_000).unwrap();
            assert!(!comm.is_alive(0));
            confirmed
        }
    });
    assert_eq!(outcomes, vec![true, true]);
}
