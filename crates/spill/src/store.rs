//! The run store: crash-atomic writers and validated streaming readers.
//!
//! This module is one of exactly two places in the workspace where the
//! runtime writes the filesystem (`cargo xtask lint` rule `no-fs-writes`;
//! the other is `smart-ft`'s checkpoint store, which delegates its atomic
//! write sequence to [`AtomicFile`] here). Durable bytes that bypassed a
//! sanctioned store would be invisible to recovery and cleanup, so every
//! spilled run funnels through [`SpillStore`].
//!
//! A run is written streaming — records append as the reduction map
//! drains, sizes land in the footer — and committed with the same
//! tmp-file / fsync / rename / directory-fsync sequence ft checkpoints
//! use, so a crash leaves either a complete validated run or an ignorable
//! temp file, never a half-run under a final name. Reading is two-pass:
//! [`SpillStore::validate`] streams the whole file through the CRC in
//! O(1) memory and parses the footer, then [`SpillStore::open`] hands out
//! a [`RunCursor`] that walks records through a fixed 64 KiB window
//! (grown only for oversized records), borrowing value bytes straight
//! from the window — allocation-free per record.

use crate::frame::{
    check_prelude, footer_body, parse_footer, prelude, Crc32, RunError, RunSummary, RUN_FOOTER_LEN,
    RUN_HEADER_LEN, RUN_MIN_LEN,
};
use smart_sync::atomic::{AtomicU64, Ordering};
use smart_wire::runs::{self, RECORD_KEY_LEN, RECORD_PREFIX_LEN};
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Buffered-window size for writers and cursors.
const WINDOW: usize = 64 * 1024;

/// Filename extension of committed runs.
const RUN_EXT: &str = "smrn";

/// Distinguishes concurrently created scratch stores within one process.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A file that becomes visible under its final name only on [`commit`]
/// (tmp write → `sync_all` → rename → best-effort directory fsync — the
/// exact sequence `smart-ft` checkpoints have always used; ft now calls
/// this type). Dropping an uncommitted `AtomicFile` removes the temp file.
///
/// [`commit`]: AtomicFile::commit
#[derive(Debug)]
pub struct AtomicFile {
    file: Option<File>,
    tmp: PathBuf,
}

impl AtomicFile {
    /// Open a temp file at `tmp` (truncating any stale leftover).
    pub fn create(tmp: PathBuf) -> std::io::Result<AtomicFile> {
        let file = File::create(&tmp)?;
        Ok(AtomicFile { file: Some(file), tmp })
    }

    fn inner(&mut self) -> std::io::Result<&mut File> {
        self.file.as_mut().ok_or_else(|| std::io::Error::other("atomic file already committed"))
    }

    /// Fsync, then atomically rename onto `dest`. `dest` must live in the
    /// same directory as the temp file. The directory itself is fsynced
    /// best-effort so the rename is durable, matching ft's checkpoint
    /// discipline.
    pub fn commit(mut self, dest: &Path) -> std::io::Result<()> {
        let file = self
            .file
            .take()
            .ok_or_else(|| std::io::Error::other("atomic file already committed"))?;
        file.sync_all()?;
        drop(file);
        fs::rename(&self.tmp, dest)?;
        if let Some(dir) = dest.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner()?.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner()?.flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// A directory of spill runs.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Open (creating if needed) a run store at `dir`.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SpillStore, RunError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillStore { dir })
    }

    /// A fresh process-private store under `SMART_SPILL_DIR` (or the
    /// system temp directory): `smart-spill-<pid>-<seq>[-<tag>]`. The
    /// sequence number keeps concurrent schedulers in one process apart.
    pub fn scratch(tag: &str) -> Result<SpillStore, RunError> {
        let base = match std::env::var_os("SMART_SPILL_DIR") {
            Some(d) => PathBuf::from(d),
            None => std::env::temp_dir(),
        };
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let name = if tag.is_empty() {
            format!("smart-spill-{pid}-{seq}")
        } else {
            format!("smart-spill-{pid}-{seq}-{tag}")
        };
        SpillStore::create(base.join(name))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of the run named `name`.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Begin a new run under `name` (convention: zero-padded sortable
    /// names ending in `.smrn`, e.g. `r-p003-t001-0007.smrn`). The run is
    /// invisible until [`RunWriter::finish`] commits it.
    pub fn writer(&self, name: &str) -> Result<RunWriter, RunError> {
        RunWriter::start(self, name)
    }

    /// Names of all committed runs, lexicographically sorted — with the
    /// zero-padded naming convention that is also creation order.
    pub fn run_names(&self) -> Result<Vec<String>, RunError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(RUN_EXT) {
                continue;
            }
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_string());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Stream the whole run through the CRC (O(1) memory) and parse the
    /// footer. Every malformation — foreign file, stale version, torn
    /// tail, bit rot, lying footer — maps to a typed [`RunError`]; no run
    /// content can panic this function.
    pub fn validate(&self, name: &str) -> Result<RunSummary, RunError> {
        let mut file = File::open(self.path(name))?;
        let len = file.metadata()?.len();
        if len < RUN_MIN_LEN {
            return Err(RunError::Truncated { len, need: RUN_MIN_LEN });
        }
        let mut head = [0u8; RUN_HEADER_LEN];
        file.read_exact(&mut head)?;
        check_prelude(&head)?;
        let mut crc = Crc32::new();
        crc.update(&head);
        let mut remaining = len - RUN_MIN_LEN;
        let mut chunk = vec![0u8; WINDOW];
        while remaining > 0 {
            let n = usize::try_from(remaining).map_or(chunk.len(), |r| r.min(chunk.len()));
            // PANIC-FREE: n was clamped to chunk.len() on the line above.
            file.read_exact(&mut chunk[..n])?;
            // PANIC-FREE: same clamp as the read above.
            crc.update(&chunk[..n]);
            remaining -= n as u64;
        }
        let mut tail = [0u8; RUN_FOOTER_LEN];
        file.read_exact(&mut tail)?;
        // PANIC-FREE: constant range inside the fixed 20-byte footer.
        crc.update(&tail[..16]);
        let (footer, stored) = parse_footer(&tail);
        let computed = crc.finalize();
        if computed != stored {
            return Err(RunError::CorruptCrc { stored, computed });
        }
        if footer.payload_len != len - RUN_MIN_LEN {
            let need = footer.payload_len.saturating_add(RUN_MIN_LEN);
            return Err(RunError::Truncated { len, need });
        }
        Ok(RunSummary { records: footer.records, payload_len: footer.payload_len, file_len: len })
    }

    /// Validate `name`, then open a streaming cursor over its records.
    pub fn open(&self, name: &str) -> Result<RunCursor, RunError> {
        let summary = self.validate(name)?;
        RunCursor::open(self.path(name), summary)
    }

    /// Reconstruct the canonical wire payload of the run's entries — the
    /// exact bytes `smart_wire::to_bytes(&sorted_entries)` would produce:
    /// a `u64` record count followed by each record's key and value with
    /// the `rec_len` frames stripped.
    pub fn canonical_payload(&self, name: &str) -> Result<Vec<u8>, RunError> {
        let summary = self.validate(name)?;
        let frames = summary.records.saturating_mul(RECORD_PREFIX_LEN as u64);
        let cap = usize::try_from(8 + summary.payload_len.saturating_sub(frames)).unwrap_or(8);
        let mut out = Vec::with_capacity(cap);
        out.extend_from_slice(&summary.records.to_le_bytes());
        let mut cursor = RunCursor::open(self.path(name), summary)?;
        while cursor.advance()? {
            // PANIC-FREE: advance() returned true, so a record is current.
            let key = cursor.key().unwrap_or(0);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(cursor.value());
        }
        Ok(out)
    }

    /// Delete the run named `name`.
    pub fn remove(&self, name: &str) -> Result<(), RunError> {
        fs::remove_file(self.path(name))?;
        Ok(())
    }

    /// Best-effort removal of the store directory and everything in it.
    /// Scratch stores call this on scheduler drop; failure is ignored —
    /// the temp dir is reclaimed by the OS eventually anyway.
    pub fn cleanup(&self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Streaming writer for one run. Records must be appended in ascending
/// key order for downstream merges to be correct; the writer checks and
/// reports violations as a typed error rather than trusting the caller.
#[derive(Debug)]
pub struct RunWriter {
    out: AtomicFile,
    dest: PathBuf,
    buf: Vec<u8>,
    crc: Crc32,
    records: u64,
    payload: u64,
    last_key: Option<i64>,
}

impl RunWriter {
    fn start(store: &SpillStore, name: &str) -> Result<RunWriter, RunError> {
        let dest = store.path(name);
        let tmp = store.dir.join(format!(".{name}.tmp"));
        let out = AtomicFile::create(tmp)?;
        let head = prelude();
        let mut crc = Crc32::new();
        crc.update(&head);
        let mut buf = Vec::with_capacity(WINDOW + WINDOW / 2);
        buf.extend_from_slice(&head);
        Ok(RunWriter { out, dest, buf, crc, records: 0, payload: 0, last_key: None })
    }

    /// Append one record. `value` must already be wire-encoded; `key` must
    /// be ≥ every key appended before it (runs are sorted by construction —
    /// an out-of-order key is a caller bug surfaced as a codec error).
    pub fn record(&mut self, key: i64, value: &[u8]) -> Result<(), RunError> {
        if self.last_key.is_some_and(|prev| key < prev) {
            return Err(RunError::Codec(smart_wire::Error::Message(format!(
                "run records out of order: key {key} after {prev}",
                prev = self.last_key.unwrap_or(0)
            ))));
        }
        self.last_key = Some(key);
        let mark = self.buf.len();
        runs::frame_record(&mut self.buf, key, value)?;
        // PANIC-FREE: mark was the buffer length before the append.
        let framed = &self.buf[mark..];
        self.crc.update(framed);
        self.payload += framed.len() as u64;
        self.records += 1;
        if self.buf.len() >= WINDOW {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Write the footer and commit the run under its final name.
    pub fn finish(mut self) -> Result<RunSummary, RunError> {
        let body = footer_body(self.records, self.payload);
        self.crc.update(&body);
        let crc = self.crc.finalize();
        self.buf.extend_from_slice(&body);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.out.write_all(&self.buf)?;
        // Moving fields out is fine: RunWriter has no Drop of its own, and
        // AtomicFile's Drop only fires if commit is never reached.
        let RunWriter { out, dest, records, payload, .. } = self;
        out.commit(&dest)?;
        Ok(RunSummary { records, payload_len: payload, file_len: RUN_MIN_LEN + payload })
    }
}

/// A streaming reader over one validated run's records.
///
/// Current-record style: [`advance`](Self::advance) steps to the next
/// record (returning `false` past the last), after which
/// [`key`](Self::key) and [`value`](Self::value) expose it. The value
/// bytes are borrowed from the cursor's window and stay valid until the
/// next `advance` — long enough for the merge loop to fold them into an
/// accumulator without copying.
#[derive(Debug)]
pub struct RunCursor {
    file: File,
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
    region_left: u64,
    records_left: u64,
    cur: Option<(i64, usize, usize)>,
}

impl RunCursor {
    fn open(path: PathBuf, summary: RunSummary) -> Result<RunCursor, RunError> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(RUN_HEADER_LEN as u64))?;
        Ok(RunCursor {
            file,
            buf: Vec::new(),
            pos: 0,
            filled: 0,
            region_left: summary.payload_len,
            records_left: summary.records,
            cur: None,
        })
    }

    /// Refill the window until at least `need` unread bytes are buffered.
    /// Post-validation this cannot run dry, but a concurrently truncated
    /// file still surfaces as a typed error, never a panic.
    fn ensure(&mut self, need: usize) -> Result<(), RunError> {
        if self.filled - self.pos >= need {
            return Ok(());
        }
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.filled, 0);
            self.filled -= self.pos;
            self.pos = 0;
        }
        let want = need.max(WINDOW);
        if self.buf.len() < want {
            self.buf.resize(want, 0);
        }
        while self.filled < need {
            if self.region_left == 0 {
                return Err(RunError::Truncated { len: self.filled as u64, need: need as u64 });
            }
            let cap = self.buf.len() - self.filled;
            let take = usize::try_from(self.region_left).map_or(cap, |r| r.min(cap));
            // PANIC-FREE: take ≤ cap = buf.len() - filled.
            let n = self.file.read(&mut self.buf[self.filled..self.filled + take])?;
            if n == 0 {
                return Err(RunError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "spill run shrank while being read",
                )));
            }
            self.filled += n;
            self.region_left -= n as u64;
        }
        Ok(())
    }

    /// Step to the next record. Returns `false` when the run is exhausted.
    pub fn advance(&mut self) -> Result<bool, RunError> {
        self.cur = None;
        if self.records_left == 0 {
            return Ok(false);
        }
        self.ensure(RECORD_PREFIX_LEN)?;
        // PANIC-FREE: ensure() buffered at least the 4 prefix bytes.
        let p = &self.buf[self.pos..self.pos + RECORD_PREFIX_LEN];
        // PANIC-FREE: p is exactly RECORD_PREFIX_LEN = 4 bytes.
        let rec_len = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        self.ensure(RECORD_PREFIX_LEN + rec_len.max(RECORD_KEY_LEN))?;
        // The shared frame parser re-checks bounds and the key-length
        // minimum against the buffered window, so torn or corrupt frames
        // that slipped past the CRC (impossible) or raced a writer
        // (defensive) fail typed here too.
        let header = runs::read_frame_header(
            // PANIC-FREE: filled ≤ buf.len() by construction.
            &self.buf[..self.filled],
            self.pos,
        )?;
        let value_start = self.pos + RECORD_PREFIX_LEN + RECORD_KEY_LEN;
        let value_end = value_start + header.value_len;
        self.pos = value_end;
        self.records_left -= 1;
        self.cur = Some((header.key, value_start, value_end));
        Ok(true)
    }

    /// The current record's key, or `None` before the first
    /// [`advance`](Self::advance) / after exhaustion.
    pub fn key(&self) -> Option<i64> {
        self.cur.map(|(k, _, _)| k)
    }

    /// The current record's wire-encoded value (empty when no record is
    /// current). Valid until the next [`advance`](Self::advance).
    pub fn value(&self) -> &[u8] {
        match self.cur {
            // PANIC-FREE: advance() placed start..end inside the filled window.
            Some((_, start, end)) => &self.buf[start..end],
            None => &[],
        }
    }

    /// Records not yet visited (excluding the current one).
    pub fn records_left(&self) -> u64 {
        self.records_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> SpillStore {
        SpillStore::scratch("storetest").expect("scratch store")
    }

    fn write_run(store: &SpillStore, name: &str, entries: &[(i64, u64)]) -> RunSummary {
        let mut w = store.writer(name).expect("writer");
        for &(k, v) in entries {
            w.record(k, &smart_wire::to_bytes(&v).expect("encode")).expect("record");
        }
        w.finish().expect("finish")
    }

    fn read_all(store: &SpillStore, name: &str) -> Vec<(i64, u64)> {
        let mut cur = store.open(name).expect("open");
        let mut out = Vec::new();
        while cur.advance().expect("advance") {
            out.push((
                cur.key().expect("key"),
                smart_wire::from_bytes::<u64>(cur.value()).expect("decode"),
            ));
        }
        out
    }

    #[test]
    fn roundtrip_including_empty_run() {
        let store = scratch();
        let entries: Vec<(i64, u64)> = (0..500).map(|i| (i - 250, (i * i) as u64)).collect();
        let stats = write_run(&store, "r-0001.smrn", &entries);
        assert_eq!(stats.records, 500);
        assert_eq!(read_all(&store, "r-0001.smrn"), entries);

        let empty = write_run(&store, "r-0002.smrn", &[]);
        assert_eq!(empty.records, 0);
        assert_eq!(empty.file_len, RUN_MIN_LEN);
        assert!(read_all(&store, "r-0002.smrn").is_empty());
        store.cleanup();
    }

    #[test]
    fn runs_larger_than_the_window_stream_through() {
        let store = scratch();
        // Values of ~1 KiB each; 200 records ≈ 3× the 64 KiB window.
        let big: Vec<(i64, Vec<u64>)> = (0..200).map(|i| (i, vec![i as u64; 128])).collect();
        let mut w = store.writer("big.smrn").expect("writer");
        for (k, v) in &big {
            w.record(*k, &smart_wire::to_bytes(v).expect("encode")).expect("record");
        }
        let stats = w.finish().expect("finish");
        assert!(stats.file_len > 3 * WINDOW as u64);
        let mut cur = store.open("big.smrn").expect("open");
        let mut i = 0i64;
        while cur.advance().expect("advance") {
            assert_eq!(cur.key(), Some(i));
            let v: Vec<u64> = smart_wire::from_bytes(cur.value()).expect("decode");
            assert_eq!(v, vec![i as u64; 128]);
            i += 1;
        }
        assert_eq!(i, 200);
        store.cleanup();
    }

    #[test]
    fn canonical_payload_matches_to_bytes_of_entries() {
        let store = scratch();
        let entries: Vec<(i64, u64)> = (0..100).map(|i| (i, i as u64 * 7)).collect();
        write_run(&store, "c.smrn", &entries);
        assert_eq!(
            store.canonical_payload("c.smrn").expect("payload"),
            smart_wire::to_bytes(&entries).expect("encode")
        );
        store.cleanup();
    }

    #[test]
    fn run_names_sort_and_ignore_foreign_files() {
        let store = scratch();
        write_run(&store, "r-p000-t001-0002.smrn", &[(1, 1)]);
        write_run(&store, "r-p000-t000-0001.smrn", &[(2, 2)]);
        std::fs::write(store.path("notes.txt"), b"not a run").expect("write");
        assert_eq!(
            store.run_names().expect("names"),
            ["r-p000-t000-0001.smrn", "r-p000-t001-0002.smrn"]
        );
        store.cleanup();
    }

    #[test]
    fn unfinished_writer_leaves_no_run_behind() {
        let store = scratch();
        {
            let mut w = store.writer("gone.smrn").expect("writer");
            w.record(1, &smart_wire::to_bytes(&1u64).expect("encode")).expect("record");
            // dropped without finish()
        }
        assert!(store.run_names().expect("names").is_empty());
        assert!(std::fs::read_dir(store.dir()).expect("dir").next().is_none());
        store.cleanup();
    }

    #[test]
    fn out_of_order_keys_are_rejected() {
        let store = scratch();
        let mut w = store.writer("o.smrn").expect("writer");
        w.record(5, &smart_wire::to_bytes(&1u64).expect("encode")).expect("record");
        // Equal keys are fine (duplicates merge downstream)…
        w.record(5, &smart_wire::to_bytes(&2u64).expect("encode")).expect("record");
        // …but a regression is a bug.
        assert!(matches!(
            w.record(4, &smart_wire::to_bytes(&3u64).expect("encode")),
            Err(RunError::Codec(_))
        ));
        store.cleanup();
    }

    #[test]
    fn every_truncation_of_a_run_fails_typed() {
        let store = scratch();
        let entries: Vec<(i64, u64)> = (0..20).map(|i| (i, i as u64)).collect();
        write_run(&store, "t.smrn", &entries);
        let whole = std::fs::read(store.path("t.smrn")).expect("read");
        for cut in 0..whole.len() {
            std::fs::write(store.path("torn.smrn"), &whole[..cut]).expect("write");
            match store.validate("torn.smrn") {
                Err(RunError::Truncated { .. })
                | Err(RunError::CorruptCrc { .. })
                | Err(RunError::BadMagic { .. })
                | Err(RunError::BadVersion { .. })
                | Err(RunError::Io(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
        store.cleanup();
    }

    #[test]
    fn every_single_byte_flip_fails_typed() {
        let store = scratch();
        write_run(&store, "f.smrn", &[(1, 10), (2, 20), (3, 30)]);
        let whole = std::fs::read(store.path("f.smrn")).expect("read");
        for i in 0..whole.len() {
            let mut bad = whole.clone();
            bad[i] ^= 0x40;
            std::fs::write(store.path("flip.smrn"), &bad).expect("write");
            match store.validate("flip.smrn") {
                Err(e) => assert!(!e.is_transient() || matches!(e, RunError::Io(_)), "{e}"),
                Ok(_) => panic!("flip at byte {i} validated"),
            }
        }
        store.cleanup();
    }

    #[test]
    fn validate_rejects_checkpoint_files() {
        let store = scratch();
        std::fs::write(store.path("x.smrn"), b"SMCK\x01\0\0\0morebytesmorebytesmorebytes")
            .expect("write");
        assert!(matches!(store.validate("x.smrn"), Err(RunError::BadMagic { .. })));
        store.cleanup();
    }

    #[test]
    fn remove_and_cleanup() {
        let store = scratch();
        write_run(&store, "r.smrn", &[(1, 1)]);
        store.remove("r.smrn").expect("remove");
        assert!(store.run_names().expect("names").is_empty());
        let dir = store.dir().to_path_buf();
        store.cleanup();
        assert!(!dir.exists());
    }
}
