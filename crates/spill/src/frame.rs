//! Run envelope: magic/version prelude, streaming CRC-32, footer codec,
//! and the typed [`RunError`].
//!
//! Pure byte-level code — nothing here touches the filesystem (that is
//! [`store`](crate::store)'s monopoly). The CRC implementation is the one
//! `smart-ft` checkpoints have always used (ft re-exports [`crc32`] from
//! here so its record format is byte-for-byte unchanged), generalized into
//! the incremental [`Crc32`] hasher so runs of unbounded size checksum in
//! O(1) memory.

use std::fmt;

/// File magic: "SMart RuN".
pub const RUN_MAGIC: [u8; 4] = *b"SMRN";

/// Current run format version.
pub const RUN_VERSION: u32 = 1;

/// Bytes of the prelude (magic + version).
pub const RUN_HEADER_LEN: usize = 8;

/// Bytes of the footer (record count + payload length + CRC).
pub const RUN_FOOTER_LEN: usize = 20;

/// The smallest well-formed run: prelude + footer around zero records.
pub const RUN_MIN_LEN: u64 = (RUN_HEADER_LEN + RUN_FOOTER_LEN) as u64;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the classic
/// zlib/PNG checksum, computed bitwise so the store needs no lookup tables
/// and no dependencies. One-shot form of [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// Incremental CRC-32 hasher. `crc32(b)` ≡
/// `{ let mut h = Crc32::new(); h.update(b); h.finalize() }` for any split
/// of `b` into consecutive `update` calls.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (initial state `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.state = crc;
    }

    /// The checksum over everything absorbed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// The parsed trailer of a run file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFooter {
    /// Records in the record region.
    pub records: u64,
    /// Bytes of the record region (everything between prelude and footer).
    pub payload_len: u64,
}

/// What a committed or validated run holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Records in the run.
    pub records: u64,
    /// Bytes of the record region.
    pub payload_len: u64,
    /// Bytes of the whole file (prelude + records + footer).
    pub file_len: u64,
}

/// The 8-byte prelude every run starts with.
// PANIC-FREE: constant ranges inside the fixed 8-byte array.
pub fn prelude() -> [u8; RUN_HEADER_LEN] {
    let mut out = [0u8; RUN_HEADER_LEN];
    out[..4].copy_from_slice(&RUN_MAGIC);
    out[4..].copy_from_slice(&RUN_VERSION.to_le_bytes());
    out
}

/// Validate a run prelude. `bytes` must hold at least [`RUN_HEADER_LEN`]
/// bytes; shorter input is reported as [`RunError::Truncated`].
// PANIC-FREE: `head` is exactly 8 bytes, so the constant ranges are in bounds.
pub fn check_prelude(bytes: &[u8]) -> Result<(), RunError> {
    let Some(head) = bytes.get(..RUN_HEADER_LEN) else {
        return Err(RunError::Truncated { len: bytes.len() as u64, need: RUN_MIN_LEN });
    };
    // PANIC-FREE: `head` is exactly 8 bytes, so both constant ranges are in
    // bounds and both try_into calls see 4-byte slices.
    let magic: [u8; 4] = head[0..4].try_into().unwrap_or([0; 4]);
    if magic != RUN_MAGIC {
        return Err(RunError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap_or([0; 4]));
    if version != RUN_VERSION {
        return Err(RunError::BadVersion { found: version });
    }
    Ok(())
}

/// The first 16 footer bytes (count + payload length); the CRC that closes
/// the file is computed over everything up to and including these.
// PANIC-FREE: constant ranges inside the fixed 16-byte array.
pub fn footer_body(records: u64, payload_len: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&records.to_le_bytes());
    out[8..].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Parse the 20-byte footer into `(footer, stored CRC)`.
// PANIC-FREE: all ranges are constants inside the fixed 20-byte array.
pub fn parse_footer(tail: &[u8; RUN_FOOTER_LEN]) -> (RunFooter, u32) {
    // PANIC-FREE: all ranges are constants inside the fixed 20-byte array.
    let records = u64::from_le_bytes(tail[0..8].try_into().unwrap_or([0; 8]));
    let payload_len = u64::from_le_bytes(tail[8..16].try_into().unwrap_or([0; 8]));
    let stored = u32::from_le_bytes(tail[16..20].try_into().unwrap_or([0; 4]));
    (RunFooter { records, payload_len }, stored)
}

/// Why a spill run could not be written or read back.
#[derive(Debug)]
pub enum RunError {
    /// Filesystem failure. The only transient variant — see
    /// [`is_transient`](Self::is_transient).
    Io(std::io::Error),
    /// A record frame or value failed to (de)serialize.
    Codec(smart_wire::Error),
    /// The file does not start with [`RUN_MAGIC`] — not a run at all.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The run was written by an incompatible format version.
    BadVersion {
        /// The version the prelude claims.
        found: u32,
    },
    /// The file is shorter (or longer) than its footer promises.
    Truncated {
        /// Bytes actually present.
        len: u64,
        /// Bytes the run needs.
        need: u64,
    },
    /// The checksum does not match the run contents.
    CorruptCrc {
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the file.
        computed: u32,
    },
}

impl RunError {
    /// Whether retrying the operation could plausibly succeed. Only I/O
    /// errors qualify; a corrupt or mis-versioned run stays corrupt no
    /// matter how often it is re-read.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Io(_))
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "spill run I/O failed: {e}"),
            RunError::Codec(e) => write!(f, "spill run codec failed: {e}"),
            RunError::BadMagic { found } => {
                write!(f, "not a spill run (magic {found:02x?})")
            }
            RunError::BadVersion { found } => {
                write!(f, "spill run format version {found} (this runtime reads {RUN_VERSION})")
            }
            RunError::Truncated { len, need } => {
                write!(f, "truncated spill run: {len} bytes present, {need} needed")
            }
            RunError::CorruptCrc { stored, computed } => {
                write!(f, "spill run CRC mismatch: stored {stored:08x}, computed {computed:08x}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Io(e) => Some(e),
            RunError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

impl From<smart_wire::Error> for RunError {
    fn from(e: smart_wire::Error) -> Self {
        RunError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_crc_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn prelude_roundtrips_and_rejects_garbage() {
        assert!(check_prelude(&prelude()).is_ok());
        assert!(matches!(check_prelude(b"SMCK\x01\0\0\0"), Err(RunError::BadMagic { .. })));
        let mut bad = prelude();
        bad[4] = 9;
        assert!(matches!(check_prelude(&bad), Err(RunError::BadVersion { found: 9 })));
        assert!(matches!(check_prelude(b"SMR"), Err(RunError::Truncated { .. })));
    }

    #[test]
    fn footer_roundtrips() {
        let body = footer_body(42, 1234);
        let mut tail = [0u8; RUN_FOOTER_LEN];
        tail[..16].copy_from_slice(&body);
        tail[16..].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let (footer, stored) = parse_footer(&tail);
        assert_eq!(footer, RunFooter { records: 42, payload_len: 1234 });
        assert_eq!(stored, 0xDEAD_BEEF);
    }

    #[test]
    fn run_error_displays_and_transience() {
        let io = RunError::from(std::io::Error::other("disk gone"));
        assert!(io.is_transient());
        assert!(io.to_string().contains("disk gone"));
        let crc = RunError::CorruptCrc { stored: 1, computed: 2 };
        assert!(!crc.is_transient());
        assert!(crc.to_string().contains("mismatch"));
    }
}
