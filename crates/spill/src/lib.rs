//! # smart-spill
//!
//! Out-of-core run store for bounded-memory reduction.
//!
//! When a reduction map crosses its memory budget, the reduce phase drains
//! it — sorted by key — into a *spill run*: an append-only file of
//! length-framed `(key, wire value)` records (the [`smart_wire::runs`]
//! framing) wrapped in a CRC-32-validated envelope:
//!
//! ```text
//! offset       size  field
//! 0            4     magic  b"SMRN"
//! 4            4     format version (currently 1)
//! 8            n     records: [rec_len: u32][key: i64][value wire bytes]*
//! 8 + n        8     record count
//! 16 + n       8     payload length n in bytes
//! 24 + n       4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The envelope trailer (count + length + CRC) lives in a *footer* rather
//! than a header so the writer streams records without seeking: sizes are
//! only known once the map is drained. Writes are crash-atomic exactly like
//! `smart-ft` checkpoints — temp file, fsync, rename, directory fsync —
//! via the shared [`AtomicFile`] primitive this crate now owns (the ft
//! store delegates to it). A torn or bit-rotted run fails validation with a
//! typed [`RunError`], never a panic.
//!
//! Stripping the `rec_len` prefixes from a run's record region and
//! prepending the record count as a `u64` reconstructs the exact canonical
//! payload `smart_wire::to_bytes(&sorted_entries)` produces, which is why
//! the spilling reduction path is bit-identical to the in-memory one.
//!
//! [`LoserTree`] supplies the k-way merge used to stream runs and the
//! resident tail back together in key order with one comparison path per
//! record (log₂ k comparisons, allocation-free per entry).

mod frame;
mod losertree;
mod store;

pub use frame::{
    check_prelude, crc32, footer_body, parse_footer, prelude, Crc32, RunError, RunFooter,
    RunSummary, RUN_FOOTER_LEN, RUN_HEADER_LEN, RUN_MAGIC, RUN_MIN_LEN, RUN_VERSION,
};
pub use losertree::LoserTree;
pub use store::{AtomicFile, RunCursor, RunWriter, SpillStore};
