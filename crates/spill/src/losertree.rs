//! Loser-tree k-way merge selection.
//!
//! Merging k sorted sources with a binary heap costs ~2·log₂k comparisons
//! per record (sift down re-compares both children at every level). The
//! classic tournament *loser tree* (Knuth, TAOCP vol. 3, §5.4.1) costs
//! exactly ⌈log₂k⌉: each internal node remembers the *loser* of its
//! subtree's match, so re-seating the winner after its source advances
//! only replays the matches along one leaf-to-root path.
//!
//! The tree never looks at values — it ranks sources by their current key
//! through a caller-supplied closure, so cursor-backed run sources and
//! in-memory tail sources merge through the same tree without the tree
//! borrowing either. Ties rank by source index ascending, which makes the
//! merge order (and therefore the downstream accumulator fold order)
//! deterministic: runs are presented oldest-first, matching the order the
//! fragments were produced in.

/// Sentinel source filling the tree before real sources are seated. Ranks
/// before everything, so build-time adjustments evict every dummy.
const DUMMY: usize = usize::MAX;

/// A tournament tree over `k` sources ranked by `(current key, source
/// index)`; exhausted sources (key `None`) rank after all live ones.
#[derive(Debug)]
pub struct LoserTree {
    /// `tree[0]` is the overall winner; `tree[1..k]` hold match losers.
    tree: Vec<usize>,
    k: usize,
}

/// Rank of a source for match comparisons: dummies first, then live keys
/// (ties by source index), then exhausted sources (by index, so the tree
/// drains deterministically).
fn rank(key: &mut impl FnMut(usize) -> Option<i64>, s: usize) -> (i8, i64, usize) {
    if s == DUMMY {
        return (-1, i64::MIN, 0);
    }
    match key(s) {
        Some(k) => (0, k, s),
        None => (1, 0, s),
    }
}

impl LoserTree {
    /// Build the tournament over sources `0..k`. `key(s)` must report
    /// source `s`'s current key, or `None` once `s` is exhausted.
    pub fn new(k: usize, key: &mut impl FnMut(usize) -> Option<i64>) -> LoserTree {
        assert!(k > 0, "loser tree needs at least one source");
        let mut lt = LoserTree { tree: vec![DUMMY; k], k };
        for s in (0..k).rev() {
            lt.adjust(s, key);
        }
        lt
    }

    /// The source currently holding the smallest `(key, index)` rank. The
    /// merge is finished when `key(winner())` is `None`.
    // PANIC-FREE: tree has k ≥ 1 slots, so index 0 is in bounds.
    pub fn winner(&self) -> usize {
        self.tree[0]
    }

    /// Re-seat the winner after its source advanced (or exhausted):
    /// replays the matches along that source's leaf-to-root path only.
    pub fn replay(&mut self, key: &mut impl FnMut(usize) -> Option<i64>) {
        let w = self.winner();
        self.adjust(w, key);
    }

    /// Push source `s` up its path; every node keeps the match loser and
    /// forwards the winner, leaving the overall winner in `tree[0]`.
    // PANIC-FREE: t starts at (s + k) / 2 < k for s < k (and the DUMMY
    // winner of an empty replay maps into range via min), then only
    // shrinks by halving; slot 0 always exists since k ≥ 1.
    fn adjust(&mut self, s: usize, key: &mut impl FnMut(usize) -> Option<i64>) {
        let mut s = s;
        // A replay with a DUMMY winner can only happen before the build
        // seats real sources; route it along the last leaf's path.
        let leaf = if s == DUMMY { self.k - 1 } else { s.min(self.k - 1) };
        let mut t = (leaf + self.k) / 2;
        while t > 0 {
            if rank(key, self.tree[t]) < rank(key, s) {
                std::mem::swap(&mut self.tree[t], &mut s);
            }
            t /= 2;
        }
        self.tree[0] = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Merge `sources` (each ascending) via the tree; also assert the
    /// per-record winner sequence is deterministic on ties (lowest source
    /// index first).
    fn merge(sources: &[Vec<i64>]) -> Vec<(usize, i64)> {
        let mut pos = vec![0usize; sources.len()];
        let mut out = Vec::new();
        {
            let mut key = |s: usize| sources[s].get(pos[s]).copied();
            let mut tree = LoserTree::new(sources.len(), &mut key);
            loop {
                let w = tree.winner();
                let Some(k) = sources[w].get(pos[w]).copied() else { break };
                out.push((w, k));
                pos[w] += 1;
                let mut key = |s: usize| sources[s].get(pos[s]).copied();
                tree.replay(&mut key);
            }
        }
        out
    }

    /// Reference merge: stable sort of (key, source, position) triples —
    /// ties break by source index, then by position within the source.
    fn reference(sources: &[Vec<i64>]) -> Vec<(usize, i64)> {
        let mut all: Vec<(i64, usize, usize)> = Vec::new();
        for (s, src) in sources.iter().enumerate() {
            for (p, &k) in src.iter().enumerate() {
                all.push((k, s, p));
            }
        }
        all.sort();
        all.into_iter().map(|(k, s, _)| (s, k)).collect()
    }

    #[test]
    fn single_source_streams_through() {
        let sources = vec![vec![1, 2, 3]];
        assert_eq!(merge(&sources), [(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn empty_sources_are_fine() {
        assert_eq!(merge(&[vec![]]), []);
        assert_eq!(merge(&[vec![], vec![1], vec![]]), [(1, 1)]);
    }

    #[test]
    fn two_sources_interleave() {
        let sources = vec![vec![1, 3, 5], vec![2, 4, 6]];
        assert_eq!(merge(&sources), reference(&sources));
    }

    #[test]
    fn ties_go_to_the_lowest_source_index() {
        let sources = vec![vec![5, 5], vec![5], vec![5, 5, 5]];
        let got = merge(&sources);
        assert_eq!(got, reference(&sources));
        // All six fives, source 0's first.
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let sources = vec![vec![i64::MIN, 0, i64::MAX], vec![i64::MIN, i64::MAX]];
        assert_eq!(merge(&sources), reference(&sources));
    }

    #[test]
    fn uneven_source_counts_match_reference() {
        // Non-power-of-two k exercises the (s + k) / 2 parent mapping.
        for k in 1..=9usize {
            let sources: Vec<Vec<i64>> = (0..k)
                .map(|s| (0..(s * 3) as i64).map(|i| i * (s as i64 + 1) % 17).collect())
                .map(|mut v: Vec<i64>| {
                    v.sort_unstable();
                    v
                })
                .collect();
            assert_eq!(merge(&sources), reference(&sources), "k = {k}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn merge_matches_reference(
                raw in proptest::collection::vec(
                    proptest::collection::vec(-50i64..50, 0..30),
                    1..12,
                )
            ) {
                let sources: Vec<Vec<i64>> = raw
                    .into_iter()
                    .map(|mut v| { v.sort_unstable(); v })
                    .collect();
                prop_assert_eq!(merge(&sources), reference(&sources));
            }
        }
    }
}
