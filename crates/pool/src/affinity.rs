//! CPU affinity shim.
//!
//! The Smart paper pins each analytics thread to a CPU core (§3.1). Real
//! pinning needs `sched_setaffinity(2)`, which in Rust requires the `libc`
//! crate — outside this reproduction's allowed dependency set. Pinning only
//! affects performance constants, not the algorithm, scheduling, or any
//! result in the evaluation, so this module keeps the API shape (so a
//! downstream user can wire in a real implementation) and records intent
//! instead of issuing the syscall.

use smart_sync::atomic::{AtomicUsize, Ordering};

static PIN_REQUESTS: AtomicUsize = AtomicUsize::new(0);

/// Request that the calling thread be pinned to `core`.
///
/// Best-effort: on this build it records the request (visible via
/// [`pin_requests`]) and returns the core that *would* be used, modulo the
/// detected parallelism so requests never target nonexistent cores.
pub fn pin_to_core(core: usize) -> usize {
    PIN_REQUESTS.fetch_add(1, Ordering::Relaxed);
    core % available_cores().max(1)
}

/// Number of cores the host exposes to this process.
pub fn available_cores() -> usize {
    smart_sync::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How many pin requests have been issued process-wide (test/diagnostic aid).
pub fn pin_requests() -> usize {
    PIN_REQUESTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_wraps_to_available_cores() {
        let cores = available_cores();
        assert!(cores >= 1);
        let effective = pin_to_core(cores + 3);
        assert!(effective < cores);
        assert_eq!(effective, (cores + 3) % cores);
    }

    #[test]
    fn pin_requests_are_counted() {
        let before = pin_requests();
        pin_to_core(0);
        pin_to_core(1);
        assert!(pin_requests() >= before + 2);
    }
}
