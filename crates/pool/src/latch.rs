//! A one-shot countdown latch.
//!
//! The pool's fork-join needs a completion barrier that (a) is cheap to
//! create per job and (b) establishes a happens-before edge from every
//! worker's writes to the submitter's reads of the result slots. A mutex +
//! condvar latch gives both (see "Rust Atomics and Locks" ch. 1/9 for the
//! pattern); the facade's parking_lot backend keeps the uncontended path
//! fast, and the `cfg(loom)` backend model-checks the release protocol (see
//! `tests/loom_latch.rs`).

use smart_sync::{Condvar, Mutex};

/// Blocks waiters until `count_down` has been called `n` times.
#[derive(Debug)]
pub struct CountdownLatch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl CountdownLatch {
    /// Latch that opens after `n` count-downs. `n == 0` is open immediately.
    pub fn new(n: usize) -> Self {
        CountdownLatch { remaining: Mutex::new(n), all_done: Condvar::new() }
    }

    /// Record one completion. The `n`-th call wakes all waiters.
    ///
    /// # Panics
    /// Panics if called more than `n` times — that always indicates a pool
    /// bookkeeping bug, and silently wrapping would hide lost wakeups.
    pub fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining = remaining.checked_sub(1).expect("countdown latch underflow");
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Block until the latch opens.
    ///
    /// Spurious-wakeup safe: the condvar wait sits in a predicate loop that
    /// rechecks `remaining` under the mutex after every wakeup.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.all_done.wait(&mut remaining);
        }
    }

    /// Non-blocking check.
    pub fn is_open(&self) -> bool {
        *self.remaining.lock() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_latch_is_open() {
        let latch = CountdownLatch::new(0);
        assert!(latch.is_open());
        latch.wait(); // must not block
    }

    #[test]
    fn opens_after_n_countdowns() {
        let latch = CountdownLatch::new(3);
        latch.count_down();
        latch.count_down();
        assert!(!latch.is_open());
        latch.count_down();
        assert!(latch.is_open());
        latch.wait();
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn extra_countdown_panics() {
        let latch = CountdownLatch::new(1);
        latch.count_down();
        latch.count_down();
    }

    #[test]
    fn wait_blocks_until_workers_finish() {
        let latch = Arc::new(CountdownLatch::new(4));
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                latch.count_down();
            }));
        }
        latch.wait();
        // happens-before: all four increments are visible after wait()
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 4);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn many_waiters_all_released() {
        let latch = Arc::new(CountdownLatch::new(1));
        let mut waiters = Vec::new();
        for _ in 0..8 {
            let latch = Arc::clone(&latch);
            waiters.push(std::thread::spawn(move || latch.wait()));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        latch.count_down();
        for w in waiters {
            w.join().unwrap();
        }
    }
}
