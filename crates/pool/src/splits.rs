//! Static split scheduling.
//!
//! Smart's runtime "equally divides [each block] into multiple splits, where
//! each split is assigned to a thread" (paper §3.1). Splits must be aligned
//! to the unit-chunk size so a processing unit (e.g. one k-means point of
//! `dims` values) never straddles two threads.

use std::ops::Range;

/// The element range of split `tid` out of `nsplits` over `len` elements,
/// aligned so boundaries fall on multiples of `chunk_size`.
///
/// Chunks (not raw elements) are distributed as evenly as possible: the first
/// `total_chunks % nsplits` splits get one extra chunk. Trailing elements
/// that do not fill a whole chunk are appended to the last split, where the
/// runtime ignores them (mirroring the paper's fixed-size unit chunks).
///
/// # Panics
/// Panics if `nsplits == 0`, `chunk_size == 0`, or `tid >= nsplits`.
pub fn split_range(len: usize, nsplits: usize, tid: usize, chunk_size: usize) -> Range<usize> {
    assert!(nsplits > 0, "nsplits must be positive");
    assert!(chunk_size > 0, "chunk_size must be positive");
    assert!(tid < nsplits, "tid {tid} out of range for {nsplits} splits");

    let total_chunks = len / chunk_size;
    let base = total_chunks / nsplits;
    let extra = total_chunks % nsplits;

    let my_chunks = base + usize::from(tid < extra);
    let start_chunk = tid * base + tid.min(extra);

    let start = start_chunk * chunk_size;
    let mut end = start + my_chunks * chunk_size;
    if tid == nsplits - 1 {
        end = len; // trailing partial chunk, if any, rides with the last split
    }
    start..end
}

/// Iterator over all splits of a block.
#[derive(Debug, Clone)]
pub struct Splits {
    len: usize,
    nsplits: usize,
    chunk_size: usize,
    next: usize,
}

impl Splits {
    /// Splits of `len` elements into `nsplits` chunk-aligned ranges.
    pub fn new(len: usize, nsplits: usize, chunk_size: usize) -> Self {
        assert!(nsplits > 0 && chunk_size > 0);
        Splits { len, nsplits, chunk_size, next: 0 }
    }
}

impl Iterator for Splits {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.nsplits {
            return None;
        }
        let r = split_range(self.len, self.nsplits, self.next, self.chunk_size);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.nsplits - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Splits {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_partition_the_block() {
        let r: Vec<_> = Splits::new(100, 4, 1).collect();
        assert_eq!(r, vec![0..25, 25..50, 50..75, 75..100]);
    }

    #[test]
    fn uneven_lengths_spread_remainder_to_front() {
        let r: Vec<_> = Splits::new(10, 3, 1).collect();
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn chunk_alignment_is_respected() {
        // 7 chunks of 3 elements over 3 splits: 3/2/2 chunks.
        let r: Vec<_> = Splits::new(21, 3, 3).collect();
        assert_eq!(r, vec![0..9, 9..15, 15..21]);
        for range in r {
            assert_eq!(range.start % 3, 0);
        }
    }

    #[test]
    fn trailing_partial_chunk_goes_to_last_split() {
        // 23 elements, chunk 3 → 7 chunks + 2 trailing elements.
        let r: Vec<_> = Splits::new(23, 3, 3).collect();
        assert_eq!(r.last().unwrap().end, 23);
        assert_eq!(r[0], 0..9);
    }

    #[test]
    fn more_splits_than_chunks_leaves_some_empty() {
        let r: Vec<_> = Splits::new(2, 4, 1).collect();
        assert_eq!(r, vec![0..1, 1..2, 2..2, 2..2]);
    }

    #[test]
    fn empty_block_gives_empty_splits() {
        let r: Vec<_> = Splits::new(0, 3, 5).collect();
        assert!(r.iter().all(|r| r.is_empty()));
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_size_panics() {
        let _ = split_range(10, 2, 0, 0);
    }

    #[test]
    #[should_panic]
    fn tid_out_of_range_panics() {
        let _ = split_range(10, 2, 2, 1);
    }

    #[test]
    fn exact_size_iterator() {
        let s = Splits::new(10, 4, 1);
        assert_eq!(s.len(), 4);
    }

    proptest! {
        #[test]
        fn splits_cover_exactly_once(
            len in 0usize..10_000,
            nsplits in 1usize..17,
            chunk in 1usize..9,
        ) {
            let ranges: Vec<_> = Splits::new(len, nsplits, chunk).collect();
            prop_assert_eq!(ranges.len(), nsplits);
            // contiguous, ordered, covering 0..len
            let mut cursor = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, len);
        }

        #[test]
        fn interior_boundaries_are_chunk_aligned(
            len in 0usize..10_000,
            nsplits in 1usize..17,
            chunk in 1usize..9,
        ) {
            let ranges: Vec<_> = Splits::new(len, nsplits, chunk).collect();
            for r in ranges.iter().take(nsplits - 1) {
                prop_assert_eq!(r.start % chunk, 0);
                prop_assert_eq!(r.end % chunk, 0);
            }
        }

        #[test]
        fn split_sizes_differ_by_at_most_one_chunk(
            chunks in 0usize..1000,
            nsplits in 1usize..17,
            chunk in 1usize..9,
        ) {
            let len = chunks * chunk;
            let sizes: Vec<usize> =
                Splits::new(len, nsplits, chunk).map(|r| r.len() / chunk).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
