//! # smart-pool
//!
//! A persistent worker thread pool with *static split scheduling* — the
//! OpenMP stand-in underneath the Smart runtime.
//!
//! The Smart scheduler (paper §3.1) divides every data block equally into
//! `num_threads` splits and assigns split *i* to thread *i* for the lifetime
//! of the job, binding each thread to a CPU core. This crate reproduces that
//! execution model:
//!
//! * [`ThreadPool`] keeps `size` workers parked between jobs (no spawn cost
//!   per time-step, which matters because a simulation launches one analytics
//!   job per time-step);
//! * [`ThreadPool::run_on_workers`] runs one closure instance per worker over
//!   borrowed data — a scoped fork-join, like an `omp parallel` region;
//! * [`split_range`]/[`Splits`] compute the static partitioning of a block
//!   into per-thread splits, aligned to chunk boundaries so no processing
//!   unit ever straddles two threads;
//! * [`affinity`] is the core-pinning shim (see module docs for why it is
//!   best-effort here).
//!
//! ```
//! use smart_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4).unwrap();
//! let data: Vec<u64> = (0..1000).collect();
//! let partials = pool.run_on_workers(4, |tid| {
//!     let split = smart_pool::split_range(data.len(), 4, tid, 1);
//!     data[split].iter().sum::<u64>()
//! });
//! assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
//! ```

pub mod affinity;
mod latch;
mod splits;

pub use latch::CountdownLatch;
pub use splits::{split_range, Splits};

use smart_sync::channel::{self, Receiver, Sender};
use smart_sync::thread::JoinHandle;
use smart_sync::Arc;

/// Errors from pool construction and job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A pool must have at least one worker.
    ZeroWorkers,
    /// A job asked for more workers than the pool has.
    TooManyWorkers {
        /// Workers requested.
        requested: usize,
        /// Workers available.
        available: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroWorkers => write!(f, "thread pool needs at least one worker"),
            PoolError::TooManyWorkers { requested, available } => {
                write!(f, "job requested {requested} workers but the pool has {available}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A unit of work handed to a worker: an erased pointer to the shared job
/// plus the worker-local index to run.
///
/// SAFETY CONTRACT: the pointed-to `JobShared` outlives the job because
/// `run_on_workers` blocks on the completion latch before returning, and the
/// latch counts down only after the last worker has finished using the
/// pointer.
struct Task {
    job: *const (),
    run: unsafe fn(*const (), usize),
    tid: usize,
}

// SAFETY: `job` points at a `JobShared<F, R>` whose closure is `Sync` and
// whose result slots are written by exactly one worker each (disjoint
// indices), as enforced by `run_on_workers`.
unsafe impl Send for Task {}

struct JobShared<'f, F, R> {
    f: &'f F,
    results: *mut Option<R>,
    latch: CountdownLatch,
}

/// Worker entry for one task: run the closure for `tid` and store the result
/// in the `tid`-th slot.
///
/// # Safety
/// `job` must point at a live `JobShared<F, R>` and `tid` must be a unique
/// in-bounds index for this job.
unsafe fn run_task<F, R>(job: *const (), tid: usize)
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    // SAFETY: the caller guarantees `job` points at a live
    // `JobShared<F, R>` (run_on_workers keeps it alive past the latch).
    let shared = unsafe { &*(job as *const JobShared<'_, F, R>) };
    let result = (shared.f)(tid);
    // SAFETY: `tid` is unique and in-bounds per the caller contract, so this
    // worker is the only writer of slot `tid`; slots were pre-sized.
    unsafe { *shared.results.add(tid) = Some(result) };
    shared.latch.count_down();
}

enum Message {
    Run(Task),
    Shutdown,
}

/// Persistent fixed-size worker pool with per-worker task queues.
///
/// Workers are indexed `0..size`. Jobs submitted through
/// [`run_on_workers`](ThreadPool::run_on_workers) use workers `0..n`; the
/// mapping from split to worker is static, mirroring Smart's split-per-thread
/// scheduling (and making per-thread reduction maps cache-friendly across
/// time-steps).
pub struct ThreadPool {
    senders: Vec<Sender<Message>>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("size", &self.size).finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Spawn a pool with `size` workers, each best-effort pinned to core
    /// `first_core + index` where `first_core = 0`.
    pub fn new(size: usize) -> Result<Self, PoolError> {
        Self::with_core_offset(size, 0)
    }

    /// Spawn a pool whose worker `i` is best-effort pinned to core
    /// `first_core + i`. Space-sharing mode uses two pools with disjoint core
    /// ranges — one group for simulation, one for analytics (paper Fig. 4).
    pub fn with_core_offset(size: usize, first_core: usize) -> Result<Self, PoolError> {
        if size == 0 {
            return Err(PoolError::ZeroWorkers);
        }
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let (tx, rx): (Sender<Message>, Receiver<Message>) = channel::unbounded();
            senders.push(tx);
            let handle = smart_sync::thread::Builder::new()
                .name(format!("smart-worker-{i}"))
                .spawn(move || {
                    affinity::pin_to_core(first_core + i);
                    worker_loop(rx);
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Ok(ThreadPool { senders, handles, size })
    }

    /// Number of workers in the pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f(tid)` for every `tid in 0..n` concurrently on the first `n`
    /// workers, blocking until all complete, and return the results in tid
    /// order.
    ///
    /// `f` may borrow from the caller's stack: the call does not return until
    /// every worker is done with the borrow (scoped-pool pattern; the
    /// completion latch provides the happens-before edge).
    ///
    /// # Panics
    /// Panics if `n` exceeds the pool size, or if a worker panics (the panic
    /// is surfaced as a missing result).
    pub fn run_on_workers<F, R>(&self, n: usize, f: F) -> Vec<R>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        self.try_run_on_workers(n, f).expect("run_on_workers misuse")
    }

    /// Fallible variant of [`run_on_workers`](Self::run_on_workers).
    pub fn try_run_on_workers<F, R>(&self, n: usize, f: F) -> Result<Vec<R>, PoolError>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        if n > self.size {
            return Err(PoolError::TooManyWorkers { requested: n, available: self.size });
        }
        if n == 0 {
            return Ok(Vec::new());
        }

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        let shared =
            JobShared { f: &f, results: results.as_mut_ptr(), latch: CountdownLatch::new(n) };

        for tid in 0..n {
            let task = Task {
                job: &shared as *const JobShared<'_, F, R> as *const (),
                run: run_task::<F, R>,
                tid,
            };
            self.senders[tid].send(Message::Run(task)).expect("worker thread died");
        }

        // Block until every worker has stored its result and released its
        // reference to `shared` / `f` / `results`.
        shared.latch.wait();

        Ok(results
            .into_iter()
            .enumerate()
            .map(|(tid, r)| r.unwrap_or_else(|| panic!("worker {tid} panicked during job")))
            .collect())
    }

    /// Reduce `items` to a single value with a pairwise parallel tree:
    /// ⌈log₂ items.len()⌉ rounds, each merging adjacent pairs `(0,1), (2,3),
    /// …` concurrently on the pool (an odd trailing item carries into the
    /// next round unmerged).
    ///
    /// The pairing is deterministic and order-preserving, so for an
    /// associative `f` the result equals the sequential left fold; callers
    /// with a merely commutative-after-rounding `f` (floating-point sums) get
    /// a reproducible tree order for a given item count.
    ///
    /// Each round runs `min(pairs, pool size)` workers, worker `w` taking
    /// pairs `w, w + workers, w + 2·workers, …` — striped like the static
    /// split schedule, but results are stitched back in pair order.
    pub fn tree_reduce<T, F>(&self, mut items: Vec<T>, f: F) -> Result<Option<T>, PoolError>
    where
        T: Send,
        F: Fn(T, T) -> T + Sync,
    {
        use smart_sync::Mutex;
        while items.len() > 1 {
            let mut carry = None;
            let mut it = items.into_iter();
            let mut pairs: Vec<Mutex<Option<(T, T)>>> = Vec::new();
            loop {
                match (it.next(), it.next()) {
                    (Some(a), Some(b)) => pairs.push(Mutex::new(Some((a, b)))),
                    (Some(a), None) => {
                        carry = Some(a);
                        break;
                    }
                    _ => break,
                }
            }
            let workers = pairs.len().min(self.size);
            let pairs_ref = &pairs;
            let f_ref = &f;
            let per_worker: Vec<Vec<T>> = self.try_run_on_workers(workers, move |wid| {
                let mut out = Vec::new();
                let mut i = wid;
                while i < pairs_ref.len() {
                    let (a, b) =
                        pairs_ref[i].lock().take().expect("each pair is taken exactly once");
                    out.push(f_ref(a, b));
                    i += workers;
                }
                out
            })?;
            // Stitch striped per-worker outputs back into pair order.
            let mut merged: Vec<Option<T>> = Vec::new();
            merged.resize_with(pairs.len(), || None);
            for (wid, outs) in per_worker.into_iter().enumerate() {
                for (j, v) in outs.into_iter().enumerate() {
                    merged[wid + j * workers] = Some(v);
                }
            }
            items = merged.into_iter().map(|v| v.expect("every pair was merged")).collect();
            items.extend(carry);
        }
        Ok(items.pop())
    }

    /// Convenience: split `len` elements into `n` chunk-aligned splits and
    /// reduce each on its own worker, returning per-split results.
    pub fn map_splits<R>(
        &self,
        len: usize,
        n: usize,
        chunk_size: usize,
        f: impl Fn(usize, std::ops::Range<usize>) -> R + Sync,
    ) -> Vec<R>
    where
        R: Send,
    {
        self.run_on_workers(n, |tid| {
            let range = split_range(len, n, tid, chunk_size);
            f(tid, range)
        })
    }
}

fn worker_loop(rx: Receiver<Message>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Message::Run(task) => {
                // SAFETY: `run_on_workers` keeps the job alive until the
                // latch (counted down inside `task.run`) opens.
                unsafe { (task.run)(task.job, task.tid) };
            }
            Message::Shutdown => break,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            // A worker that already exited has disconnected its channel;
            // that's fine during teardown.
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A shared, cheaply clonable pool handle.
pub type SharedPool = Arc<ThreadPool>;

/// Create a pool wrapped in an [`Arc`] so simulation and analytics components
/// can share it.
pub fn shared_pool(size: usize) -> Result<SharedPool, PoolError> {
    Ok(Arc::new(ThreadPool::new(size)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_is_an_error() {
        assert_eq!(ThreadPool::new(0).unwrap_err(), PoolError::ZeroWorkers);
    }

    #[test]
    fn runs_closure_once_per_worker() {
        let pool = ThreadPool::new(4).unwrap();
        let counter = AtomicUsize::new(0);
        let tids = pool.run_on_workers(4, |tid| {
            counter.fetch_add(1, Ordering::Relaxed);
            tid
        });
        assert_eq!(tids, vec![0, 1, 2, 3]);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn can_use_fewer_workers_than_pool_size() {
        let pool = ThreadPool::new(8).unwrap();
        let r = pool.run_on_workers(3, |tid| tid * 10);
        assert_eq!(r, vec![0, 10, 20]);
    }

    #[test]
    fn zero_width_job_returns_empty() {
        let pool = ThreadPool::new(2).unwrap();
        let r: Vec<usize> = pool.run_on_workers(0, |tid| tid);
        assert!(r.is_empty());
    }

    #[test]
    fn oversubscription_is_an_error() {
        let pool = ThreadPool::new(2).unwrap();
        let err = pool.try_run_on_workers(3, |t| t).unwrap_err();
        assert_eq!(err, PoolError::TooManyWorkers { requested: 3, available: 2 });
    }

    #[test]
    fn borrows_caller_data_safely() {
        let pool = ThreadPool::new(4).unwrap();
        let data: Vec<u64> = (0..10_000).collect();
        let partials = pool.run_on_workers(4, |tid| {
            let r = split_range(data.len(), 4, tid, 1);
            data[r].iter().sum::<u64>()
        });
        assert_eq!(partials.iter().sum::<u64>(), 10_000 * 9_999 / 2);
    }

    #[test]
    fn results_come_back_in_tid_order_despite_uneven_work() {
        let pool = ThreadPool::new(4).unwrap();
        let r = pool.run_on_workers(4, |tid| {
            // Make early tids slowest so completion order inverts tid order.
            std::thread::sleep(std::time::Duration::from_millis(5 * (4 - tid as u64)));
            tid
        });
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = ThreadPool::new(2).unwrap();
        for step in 0..50 {
            let r = pool.run_on_workers(2, |tid| step * 2 + tid);
            assert_eq!(r, vec![step * 2, step * 2 + 1]);
        }
    }

    #[test]
    fn map_splits_covers_all_elements_exactly_once() {
        let pool = ThreadPool::new(3).unwrap();
        let hits = (0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.map_splits(100, 3, 1, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_data_parallelism_from_multiple_client_threads() {
        // Two client threads can't share the same workers concurrently
        // (static assignment), so give each its own pool, as space-sharing
        // mode does.
        let sim_pool = ThreadPool::new(2).unwrap();
        let ana_pool = ThreadPool::new(2).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let r = sim_pool.run_on_workers(2, |t| t + 1);
                assert_eq!(r, vec![1, 2]);
            });
            s.spawn(|| {
                let r = ana_pool.run_on_workers(2, |t| t + 10);
                assert_eq!(r, vec![10, 11]);
            });
        });
    }

    #[test]
    fn shared_pool_is_shareable() {
        let pool = shared_pool(2).unwrap();
        let p2 = Arc::clone(&pool);
        let r = p2.run_on_workers(2, |t| t);
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn tree_reduce_handles_empty_and_singleton() {
        let pool = ThreadPool::new(2).unwrap();
        assert_eq!(pool.tree_reduce(Vec::<u64>::new(), |a, b| a + b).unwrap(), None);
        assert_eq!(pool.tree_reduce(vec![7u64], |a, b| a + b).unwrap(), Some(7));
    }

    #[test]
    fn tree_reduce_sums_all_item_counts() {
        let pool = ThreadPool::new(4).unwrap();
        for n in 0..40u64 {
            let items: Vec<u64> = (0..n).collect();
            let got = pool.tree_reduce(items, |a, b| a + b).unwrap();
            assert_eq!(got, if n == 0 { None } else { Some(n * (n - 1) / 2) }, "n = {n}");
        }
    }

    #[test]
    fn tree_reduce_preserves_pair_order() {
        // Concatenation is associative but not commutative: adjacent-pair
        // merging with a trailing carry must reassemble the original order,
        // even when pairs outnumber workers and get striped across them.
        let pool = ThreadPool::new(3).unwrap();
        for n in 1..30usize {
            let items: Vec<String> = (0..n).map(|i| format!("{i},")).collect();
            let expected: String = items.concat();
            let got = pool.tree_reduce(items, |a, b| a + &b).unwrap().unwrap();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn tree_reduce_runs_pairs_concurrently() {
        // With 4 items and 2 workers, round one has 2 pairs; both must be
        // in flight at once. Each pair merge blocks until it observes the
        // other pair started — deadlocks (then fails) if the pairs run
        // sequentially.
        let pool = ThreadPool::new(2).unwrap();
        let in_flight = AtomicUsize::new(0);
        let got = pool
            .tree_reduce(vec![1u64, 2, 3, 4], |a, b| {
                if a + b != 3 + 7 {
                    // Round one (pairs sum to 3 and 7): rendezvous.
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                    while in_flight.load(Ordering::SeqCst) < 2 {
                        assert!(std::time::Instant::now() < deadline, "pairs ran sequentially");
                        std::hint::spin_loop();
                    }
                }
                a + b
            })
            .unwrap();
        assert_eq!(got, Some(10));
    }

    #[test]
    fn heavy_parallel_sum_matches_sequential() {
        let pool = ThreadPool::new(4).unwrap();
        let data: Vec<f64> = (0..1_000_000).map(|i| (i % 97) as f64).collect();
        let expected: f64 = data.iter().sum();
        let partials = pool.map_splits(data.len(), 4, 1, |_t, r| data[r].iter().sum::<f64>());
        let got: f64 = partials.iter().sum();
        assert!((got - expected).abs() < 1e-6);
    }
}
