//! Model-checked latch invariants: every schedule of the countdown/wait
//! protocol must release all waiters exactly once, with all worker writes
//! visible afterwards.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-pool --test loom_latch`
#![cfg(loom)]

use smart_pool::CountdownLatch;
use smart_sync::atomic::{AtomicUsize, Ordering};
use smart_sync::{model, thread, Arc};

#[test]
fn latch_release_establishes_happens_before() {
    model::check(|| {
        let latch = Arc::new(CountdownLatch::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                let hits = Arc::clone(&hits);
                thread::spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    latch.count_down();
                })
            })
            .collect();
        latch.wait();
        // Every schedule in which wait() returned must observe both
        // increments — that is the happens-before edge the pool relies on
        // to read result slots after the fork-join.
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn latch_opens_exactly_at_zero() {
    model::check(|| {
        let latch = Arc::new(CountdownLatch::new(2));
        let l2 = Arc::clone(&latch);
        let t = thread::spawn(move || l2.count_down());
        assert!(!latch.is_open() || latch.is_open()); // any interleaving is fine pre-open
        latch.count_down();
        latch.wait();
        assert!(latch.is_open());
        t.join().unwrap();
    });
}

#[test]
fn multiple_waiters_all_released() {
    model::check(|| {
        let latch = Arc::new(CountdownLatch::new(1));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                thread::spawn(move || latch.wait())
            })
            .collect();
        latch.count_down();
        // If notify_all missed a parked waiter on any schedule, the model's
        // deadlock detector would fail this join.
        for w in waiters {
            w.join().unwrap();
        }
    });
}

#[test]
fn open_latch_never_blocks() {
    model::check(|| {
        let latch = CountdownLatch::new(0);
        assert!(latch.is_open());
        latch.wait();
    });
}
