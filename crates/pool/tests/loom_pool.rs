//! Model-checked pool invariants: the task-queue handoff (channel send →
//! worker recv → latch count-down) must deliver every task exactly once and
//! make every result slot write visible to the submitter, on all schedules.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-pool --test loom_pool`
#![cfg(loom)]

use smart_pool::ThreadPool;
use smart_sync::model;

#[test]
fn fork_join_returns_every_workers_result() {
    model::check(|| {
        let pool = ThreadPool::new(2).unwrap();
        let out = pool.run_on_workers(2, |tid| tid * 10 + 1);
        // One slot per worker, written exactly once: the latch must not open
        // before both writes, and the writes must be visible after it.
        assert_eq!(out, vec![1, 11]);
    });
}

#[test]
fn sequential_jobs_reuse_workers() {
    model::check(|| {
        let pool = ThreadPool::new(2).unwrap();
        let a = pool.run_on_workers(2, |tid| tid);
        let b = pool.run_on_workers(1, |tid| tid + 100);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(b, vec![100]);
    });
}

#[test]
fn shutdown_joins_all_workers() {
    model::check(|| {
        let pool = ThreadPool::new(2).unwrap();
        drop(pool);
        // If Drop's shutdown message could be lost on some schedule, a worker
        // would stay parked in recv and the deadlock detector would fire.
    });
}

#[test]
fn tree_reduce_combines_all_items() {
    model::check(|| {
        let pool = ThreadPool::new(2).unwrap();
        let sum = pool.tree_reduce(vec![1u64, 2, 3], |a, b| a + b).unwrap();
        assert_eq!(sum, Some(6));
    });
}
