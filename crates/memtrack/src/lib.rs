//! # smart-memtrack
//!
//! A counting global allocator plus scoped measurement helpers.
//!
//! The Smart paper's memory-efficiency experiments (Figs. 9 and 11, and the
//! §5.2 footprint comparison against Spark) hinge on *measured* memory: the
//! zero-copy time-sharing mode exists precisely because an extra copy of the
//! time-step can push a node past its physical memory. On the authors'
//! testbed that manifests as a crash at a 2 GB time-step; here we reproduce
//! the same mechanism at laptop scale with:
//!
//! * [`TrackingAlloc`] — a [`GlobalAlloc`] wrapper around the system
//!   allocator that maintains *current* and *peak* live-byte counters with
//!   relaxed atomics (the counters are statistics, not synchronization;
//!   see "Rust Atomics and Locks" ch. 2 on statistics counters);
//! * [`MemScope`] — RAII measurement of the net and peak allocation inside a
//!   region of code;
//! * [`Budget`] — a configurable "physical memory" limit that experiments
//!   consult to declare an out-of-memory *crash* exactly the way the paper
//!   reports one, without actually exhausting the host.
//!
//! Binaries opt in by registering the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: smart_memtrack::TrackingAlloc = smart_memtrack::TrackingAlloc::new();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static REGISTERED: AtomicBool = AtomicBool::new(false);

/// Counting wrapper around the system allocator.
///
/// All counters are process-global: registering this type with
/// `#[global_allocator]` makes every allocation in the process visible to
/// [`current_bytes`], [`peak_bytes`] and friends.
pub struct TrackingAlloc {
    _priv: (),
}

impl TrackingAlloc {
    /// Create the allocator value to place in a `#[global_allocator]` static.
    pub const fn new() -> Self {
        TrackingAlloc { _priv: () }
    }
}

impl Default for TrackingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn on_alloc(size: usize) {
    REGISTERED.store(true, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    TOTAL_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Monotone max via CAS loop; contention is negligible because peaks move
    // rarely compared to allocation volume.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System` unchanged; only statistics
// counters are updated around the calls.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract
        // (non-zero-sized layout), which we forward to `System` unchanged.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` came from this allocator with
        // this `layout`; every allocation path above delegates to `System`.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: as for `alloc` — the caller's layout contract is forwarded.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: the caller guarantees `ptr`/`layout` describe a live
        // `System` allocation and `new_size` is non-zero.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// `true` once the tracking allocator has served at least one allocation,
/// i.e. it is actually registered in this process. Measurement helpers use
/// this to distinguish "zero bytes" from "not tracking".
pub fn is_tracking() -> bool {
    REGISTERED.load(Ordering::Relaxed)
}

/// Live heap bytes currently allocated through the tracking allocator.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated (never decreases).
pub fn total_allocated_bytes() -> usize {
    TOTAL_ALLOCATED.load(Ordering::Relaxed)
}

/// Number of allocation calls served (alloc + alloc_zeroed + realloc).
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size, so a subsequent measurement sees
/// only peaks from now on.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Bytes parked in reusable buffers the runtime keeps alive between steps
/// (per-thread reduction-map shells). These bytes *are* in `current_bytes`
/// whenever the tracking allocator is registered, but a budget sampling
/// between steps would otherwise read them as analytics working set; this
/// gauge lets reports split "retained for reuse" from "live this step".
static RETAINED_MAPS: AtomicUsize = AtomicUsize::new(0);

/// Adjust the retained-map gauge by a signed delta (clamped at zero).
/// Contributors (schedulers) publish deltas so several of them sum.
pub fn adjust_retained_map_bytes(delta: isize) {
    if delta >= 0 {
        RETAINED_MAPS.fetch_add(delta as usize, Ordering::Relaxed);
    } else {
        let sub = delta.unsigned_abs();
        // Saturating subtract via CAS loop: a mismatched withdrawal must
        // not wrap the gauge.
        let mut cur = RETAINED_MAPS.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(sub);
            match RETAINED_MAPS.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
}

/// Current value of the retained-map gauge (see
/// [`adjust_retained_map_bytes`]).
pub fn retained_map_bytes() -> usize {
    RETAINED_MAPS.load(Ordering::Relaxed)
}

/// Statistics captured by a [`MemScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Net change in live bytes over the scope (may be negative).
    pub net_bytes: isize,
    /// Peak live bytes observed during the scope, *above* the level at scope
    /// entry. Zero if the scope never allocated past its entry level.
    pub peak_above_entry: usize,
    /// Absolute peak live bytes during the scope.
    pub peak_bytes: usize,
    /// Allocation calls made during the scope.
    pub alloc_calls: usize,
}

/// RAII measurement of allocation behaviour inside a region.
///
/// Creating the scope records the entry level and resets the peak; calling
/// [`MemScope::finish`] (or reading stats at drop time) reports what happened
/// since.
///
/// Scopes are process-global measurements: overlapping scopes on different
/// threads see each other's allocations. For the Smart experiments that is
/// exactly what we want — the paper's constraint is per-*node* memory.
#[derive(Debug)]
pub struct MemScope {
    entry_current: usize,
    entry_calls: usize,
}

impl MemScope {
    /// Start measuring. Resets the global peak to the current level.
    pub fn begin() -> Self {
        let entry_current = current_bytes();
        let entry_calls = alloc_calls();
        reset_peak();
        MemScope { entry_current, entry_calls }
    }

    /// Stop measuring and report.
    pub fn finish(self) -> MemStats {
        let peak = peak_bytes();
        MemStats {
            net_bytes: current_bytes() as isize - self.entry_current as isize,
            peak_above_entry: peak.saturating_sub(self.entry_current),
            peak_bytes: peak,
            alloc_calls: alloc_calls() - self.entry_calls,
        }
    }
}

/// Error returned when a [`Budget`] is exceeded — the reproduction's stand-in
/// for the paper's out-of-memory crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverBudget {
    /// Configured limit in bytes.
    pub limit: usize,
    /// Observed usage in bytes.
    pub used: usize,
}

impl std::fmt::Display for OverBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: used {} bytes of a {} byte budget (simulated OOM crash)",
            self.used, self.limit
        )
    }
}

impl std::error::Error for OverBudget {}

/// A simulated per-node physical-memory limit.
///
/// Experiments call [`Budget::check`] with their measured usage (either the
/// tracked live bytes or an analytically known working-set size) and treat
/// `Err(OverBudget)` as the crash the paper reports.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    limit: usize,
}

impl Budget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Budget { limit }
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Check an explicit usage figure against the budget.
    pub fn check(&self, used: usize) -> Result<(), OverBudget> {
        if used > self.limit {
            Err(OverBudget { limit: self.limit, used })
        } else {
            Ok(())
        }
    }

    /// Check the tracker's current live bytes against the budget.
    pub fn check_current(&self) -> Result<(), OverBudget> {
        self.check(current_bytes())
    }
}

/// Pretty-print a byte count with binary units, for harness output.
pub fn fmt_bytes(n: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{n} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: TrackingAlloc = TrackingAlloc::new();

#[cfg(test)]
mod tests {
    use super::*;

    // The tests in this module share process-global counters; they are
    // written to tolerate concurrent allocation from the test harness by
    // asserting one-sided bounds rather than exact values.

    #[test]
    fn tracker_is_registered_in_tests() {
        let _v = [0u8; 16];
        assert!(is_tracking());
    }

    #[test]
    fn alloc_moves_current_and_peak() {
        let before = current_bytes();
        let v = vec![0u8; 1 << 20];
        assert!(current_bytes() >= before + (1 << 20));
        assert!(peak_bytes() >= before + (1 << 20));
        drop(v);
        assert!(current_bytes() < before + (1 << 20));
    }

    #[test]
    fn total_allocated_is_monotone() {
        let a = total_allocated_bytes();
        let _v = vec![0u8; 4096];
        let b = total_allocated_bytes();
        assert!(b >= a + 4096);
    }

    #[test]
    fn scope_measures_net_and_peak() {
        let scope = MemScope::begin();
        let v = vec![0u8; 1 << 20];
        drop(v);
        let kept = vec![0u8; 1 << 10];
        let stats = scope.finish();
        assert!(stats.peak_above_entry >= 1 << 20, "peak {}", stats.peak_above_entry);
        assert!(stats.net_bytes >= 1 << 10);
        assert!(stats.alloc_calls >= 2);
        drop(kept);
    }

    #[test]
    fn scope_with_balanced_allocs_has_small_net() {
        let scope = MemScope::begin();
        for _ in 0..100 {
            let v = vec![0u64; 128];
            std::hint::black_box(&v);
        }
        let stats = scope.finish();
        // Everything was freed; net should be near zero (other test threads
        // may add noise, so allow slack well below one iteration's size).
        assert!(stats.net_bytes.unsigned_abs() < (1 << 20), "net {}", stats.net_bytes);
    }

    #[test]
    fn realloc_keeps_counts_consistent() {
        let scope = MemScope::begin();
        let mut v = Vec::with_capacity(8);
        for i in 0..100_000u64 {
            v.push(i);
        }
        drop(v);
        let stats = scope.finish();
        assert!(stats.net_bytes < (1 << 20), "net {}", stats.net_bytes);
        assert!(stats.peak_above_entry >= 100_000 * 8);
    }

    #[test]
    fn budget_accepts_within_and_rejects_over() {
        let b = Budget::new(1000);
        assert!(b.check(1000).is_ok());
        let err = b.check(1001).unwrap_err();
        assert_eq!(err, OverBudget { limit: 1000, used: 1001 });
        assert!(err.to_string().contains("1001"));
        assert_eq!(b.limit(), 1000);
    }

    #[test]
    fn budget_check_current_reflects_live_bytes() {
        // A budget far above anything the test suite holds live must pass,
        // and a zero budget must fail while we hold an allocation.
        let _v = vec![0u8; 4096];
        assert!(Budget::new(usize::MAX).check_current().is_ok());
        assert!(Budget::new(0).check_current().is_err());
    }

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert!(fmt_bytes(5 * 1024 * 1024 * 1024).starts_with("5.00 GiB"));
    }

    #[test]
    fn reset_peak_lowers_to_current() {
        let _big = vec![0u8; 1 << 20];
        drop(_big);
        reset_peak();
        assert!(peak_bytes() <= current_bytes() + (1 << 16));
    }

    #[test]
    fn retained_map_gauge_sums_deltas_and_saturates() {
        // Contributions from several "schedulers" sum; withdrawing more
        // than was deposited clamps at zero instead of wrapping.
        let before = retained_map_bytes();
        adjust_retained_map_bytes(1000);
        adjust_retained_map_bytes(500);
        assert_eq!(retained_map_bytes(), before + 1500);
        adjust_retained_map_bytes(-500);
        assert_eq!(retained_map_bytes(), before + 1000);
        adjust_retained_map_bytes(-(before as isize) - 1_000_000);
        assert_eq!(retained_map_bytes(), 0);
        // Restore whatever other concurrent tests had contributed.
        adjust_retained_map_bytes(before as isize);
    }
}
