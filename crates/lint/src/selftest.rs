//! Embedded violation corpus, run before every workspace scan.
//!
//! Same discipline as the xtask text scanner's self-test: each analysis is
//! fed one seeded bad program (which must be caught) and one clean twin
//! (which must pass) before it is trusted on the real tree, so a broken
//! analyzer fails loudly instead of reporting a dirty tree as clean.

use crate::{lockorder, panicfree, rules, tagns, Workspace};

fn expect(rule: &str, name: &str, findings: &[crate::Finding], want: usize) {
    let hits = findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(
        hits, want,
        "lint self-test: `{rule}` on corpus `{name}` fired {hits}x, expected {want}: {findings:?}"
    );
}

pub fn run() {
    // --- lock-order ---------------------------------------------------------
    let cyclic = Workspace::from_sources(&[(
        "crates/core/src/seeded.rs",
        "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S {\n\
           fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
           fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
         }",
    )]);
    let committed = lockorder::render_toml(&lockorder::edges(&cyclic));
    let f = lockorder::check(&cyclic, Some(&committed));
    assert!(
        f.iter().any(|f| f.rule == "lock-order" && f.message.contains("cycle")),
        "lint self-test: lock-order missed a seeded A->B/B->A cycle: {f:?}"
    );

    let nested = Workspace::from_sources(&[(
        "crates/core/src/seeded.rs",
        "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S { fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); } }",
    )]);
    expect("lock-order", "undeclared-edge", &lockorder::check(&nested, Some("version = 1\n")), 1);
    let committed = lockorder::render_toml(&lockorder::edges(&nested));
    expect("lock-order", "declared-edge", &lockorder::check(&nested, Some(&committed)), 0);

    let scoped = Workspace::from_sources(&[(
        "crates/core/src/seeded.rs",
        "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S { fn f(&self) { { let g = self.a.lock(); } let h = self.b.lock(); } }",
    )]);
    expect("lock-order", "scoped-guards", &lockorder::check(&scoped, Some("version = 1\n")), 0);

    // --- panic-free ---------------------------------------------------------
    let seeded = Workspace::from_sources(&[(
        "crates/comm/src/seeded.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         fn g() { panic!(\"boom\"); }\n\
         fn h(v: &[u32], i: usize) -> u32 { v[i] }",
    )]);
    expect("panic-free", "seeded-panics", &panicfree::check(&seeded), 3);

    let clean = Workspace::from_sources(&[(
        "crates/comm/src/seeded.rs",
        "fn f(x: Option<u32>) -> u32 {\n\
         \x20   // PANIC-FREE: caller checked is_some() on the same path\n\
         \x20   x.unwrap()\n\
         }\n\
         fn h(v: &[u32]) -> u32 { let mut s = 0; for i in 0..v.len() { s += v[i]; } s }\n\
         fn t(v: &[u32]) -> &[u32] { &v[..] }\n\
         fn asserts(n: usize) { assert!(n > 0); }",
    )]);
    expect("panic-free", "clean-twin", &panicfree::check(&clean), 0);
    let pool_exempt = Workspace::from_sources(&[(
        "crates/pool/src/seeded.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    )]);
    expect("panic-free", "pool-exempt", &panicfree::check(&pool_exempt), 0);

    // --- tag-namespace ------------------------------------------------------
    const REGISTRY: &str = "\
        pub type Tag = u64;\n\
        // lint:claim(USER) = -\n\
        // lint:claim(STREAM) = comm/src/stream.rs\n\
        pub const USER_BASE: Tag = 0;\n\
        pub const USER_LIMIT: Tag = 1 << 32;\n\
        pub const STREAM_BASE: Tag = 1 << 40;\n\
        pub const STREAM_LIMIT: Tag = 1 << 41;\n\
        pub const DEATH_TAG: Tag = u64::MAX;\n";
    let clean = Workspace::from_sources(&[
        ("crates/comm/src/tags.rs", REGISTRY),
        ("crates/comm/src/stream.rs", "const DATA_TAG: Tag = STREAM_BASE | 1;\n"),
    ]);
    expect("tag-namespace", "clean-registry", &tagns::check(&clean), 0);

    let overlapping = REGISTRY.replace("1 << 32", "1 << 41");
    let bad = Workspace::from_sources(&[("crates/comm/src/tags.rs", &overlapping)]);
    expect("tag-namespace", "overlapping-claims", &tagns::check(&bad), 1);

    let squatter = Workspace::from_sources(&[
        ("crates/comm/src/tags.rs", REGISTRY),
        ("crates/serve/src/driver.rs", "const MY_TAG: Tag = (1 << 40) | 7;\n"),
    ]);
    expect("tag-namespace", "namespace-squatter", &tagns::check(&squatter), 1);

    let stray_send = Workspace::from_sources(&[
        ("crates/comm/src/tags.rs", REGISTRY),
        ("crates/serve/src/driver.rs", "fn f(c: &mut C) { c.send(1, (1u64 << 40) | 3, &x); }\n"),
    ]);
    expect("tag-namespace", "stray-send-tag", &tagns::check(&stray_send), 1);

    // --- migrated token rules ----------------------------------------------
    let rule_corpus: &[(&str, &str, &str, usize)] = &[
        ("no-direct-sync", "crates/core/src/seeded.rs", "use std::sync::Mutex;\n", 1),
        ("no-direct-sync", "crates/sync/src/seeded.rs", "use std::sync::Mutex;\n", 0),
        (
            "no-direct-sync",
            "crates/core/src/seeded.rs",
            "//! Docs may mention `std::sync` freely.\nfn f() { let s = \"parking_lot\"; }\n",
            0,
        ),
        (
            "no-direct-sync",
            "crates/core/src/seeded.rs",
            "#[cfg(test)]\nmod tests { use std::thread; }\n",
            0,
        ),
        (
            "no-lock-unwrap",
            "crates/core/src/seeded.rs",
            "fn f() { let g = m\n    .lock()\n    .unwrap(); }\n",
            1,
        ),
        ("no-lock-unwrap", "crates/core/src/seeded.rs", "fn f() { let g = m.lock(); }\n", 0),
        (
            "kernel-hot-loop",
            "crates/analytics/src/seeded.rs",
            "fn reduce_batch(&self) { let v = Vec::new(); }\n",
            1,
        ),
        (
            "kernel-hot-loop",
            "crates/analytics/src/seeded.rs",
            "fn reduce_batch(&self) { sink.reduce_default(self, data, batch); }\n\
             fn helper() { let v = Vec::new(); }\n",
            0,
        ),
        (
            "kernel-hot-loop",
            "crates/analytics/src/seeded.rs",
            "fn reduce_batch(&self) { let s = \"Vec::new()\"; }\n",
            0,
        ),
    ];
    for (rule, path, src, want) in rule_corpus {
        let ws = Workspace::from_sources(&[(path, src)]);
        expect(rule, path, &rules::check(&ws), *want);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn corpus_passes() {
        super::run();
    }
}
