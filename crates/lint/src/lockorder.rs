//! Lock-order graph analysis.
//!
//! Walks every non-test function in the concurrency-bearing crates
//! (`pool`, `core`, `comm`, `ft`, `serve`), tracks `smart-sync`
//! Mutex/RwLock guard scopes, and emits the **acquired-while-holding**
//! edge set: an edge `A -> B` means some execution path acquires lock `B`
//! while a guard on lock `A` is live. Two checks follow:
//!
//! * **cycles** — a cycle in the edge graph (including a self-edge: a lock
//!   acquired while already held) is a potential deadlock and always
//!   fails, independent of the committed artifact;
//! * **drift** — the edge set is diffed against `lint/lock-order.toml`.
//!   A new edge (or a stale committed one) fails the lint until the
//!   artifact is regenerated with `cargo xtask lock-order --write` and the
//!   diff is reviewed. This makes every change to the workspace's lock
//!   hierarchy an explicit line in a PR.
//!
//! ## What counts as a lock, and how guards are scoped
//!
//! Lock identities come from declarations, not call syntax: struct fields
//! and statics whose type mentions `Mutex`/`RwLock` (through containers —
//! `Arc<Mutex<…>>`, `Vec<Mutex<…>>`), locals `let m = Mutex::new(…)` or
//! with a lock type annotation, references to those locals, and `fn`
//! parameters with lock types. Calling `.lock()`/`.read()`/`.write()` on
//! anything else (`stdout().lock()`, an `io::Read`) is ignored — the
//! receiver must resolve to a known lock. Labels are `Struct.field` for
//! fields and `fn.var` for locals/parameters, so the committed artifact
//! survives line-number churn.
//!
//! A `let g = x.lock();` guard is live until the end of its enclosing
//! block or an explicit `drop(g)`; any other acquisition form is a
//! statement temporary, live to the end of its statement. `Condvar::wait`
//! does release the mutex while parked, but the analysis keeps the guard
//! held — the conservative direction for deadlock edges. One level of
//! call-graph inlining: calls made while holding a guard contribute the
//! callee's *direct* acquisitions as edges. Only calls the analysis can
//! actually resolve are inlined: `self.method(…)` (resolved against the
//! caller's impl owner, unioned across same-named impls) and free calls
//! `name(…)` (resolved to free fns). Arbitrary `x.len()` method calls are
//! *not* matched by bare name — without types, `queue.len()` would alias
//! every `len` in the workspace and manufacture phantom deadlocks.

use crate::ast::{FnItem, Tree};
use crate::{Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose functions participate in the graph.
pub const LOCK_CRATES: &[&str] = &["pool", "core", "comm", "ft", "serve"];

const RULE: &str = "lock-order";

/// An acquired-while-holding edge with one example site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub holder: String,
    pub acquires: String,
    /// Example site (`path:line`), not part of edge identity.
    pub site: String,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    label: String,
    line: usize,
}

/// A resolvable call site with the guards held at that point. `callee` is
/// the resolution key: `Owner::name` for `self.method(…)`, bare `name`
/// for free calls.
#[derive(Debug, Clone)]
struct CallSite {
    callee: String,
    held: Vec<String>,
    line: usize,
}

/// Per-function analysis result.
#[derive(Debug, Default)]
struct FnLocks {
    /// Locks acquired anywhere in the body (for one-level inlining).
    direct: Vec<Acq>,
    /// Edges from guard scopes inside this body.
    edges: Vec<Edge>,
    calls: Vec<CallSite>,
}

/// Compute the workspace's acquired-while-holding edge set.
pub fn edges(ws: &Workspace) -> Vec<Edge> {
    let mut lock_fields: BTreeMap<String, String> = BTreeMap::new(); // field -> label
    for f in ws.crate_files(LOCK_CRATES) {
        for lf in &f.ast.lock_fields {
            let label = if lf.owner.is_empty() {
                lf.field.clone()
            } else {
                format!("{}.{}", lf.owner, lf.field)
            };
            // First declaration wins; ambiguity across structs is rare and
            // benign (the label would merge, which is conservative).
            lock_fields.entry(lf.field.clone()).or_insert(label);
        }
    }

    let mut per_fn: BTreeMap<String, FnLocks> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in ws.crate_files(LOCK_CRATES) {
        for f in &file.ast.fns {
            if f.in_test || crate::is_test_path(&file.path) {
                continue;
            }
            let key = match &f.owner {
                Some(o) => format!("{}::{}::{}", file.path, o, f.name),
                None => format!("{}::{}", file.path, f.name),
            };
            let info = analyze_fn(f, file, &lock_fields);
            // Resolution key mirrors CallSite.callee: owner-qualified for
            // methods, bare for free fns.
            let res_key = match &f.owner {
                Some(o) => format!("{}::{}", o, f.name),
                None => f.name.clone(),
            };
            by_name.entry(res_key).or_default().push(key.clone());
            per_fn.insert(key, info);
        }
    }

    // One level of call-graph inlining: a call made while holding A adds
    // A -> (callee's direct acquisitions).
    let mut all: BTreeSet<Edge> = BTreeSet::new();
    for info in per_fn.values() {
        for e in &info.edges {
            all.insert(e.clone());
        }
    }
    for info in per_fn.values() {
        for call in &info.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(keys) = by_name.get(&call.callee) else { continue };
            for key in keys {
                let callee = &per_fn[key];
                for acq in &callee.direct {
                    for holder in &call.held {
                        all.insert(Edge {
                            holder: holder.clone(),
                            acquires: acq.label.clone(),
                            site: format!(
                                "(via {} at line {}) line {}",
                                call.callee, call.line, acq.line
                            ),
                        });
                    }
                }
            }
        }
    }

    // Edge identity is (holder, acquires): keep the first site per pair.
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for e in all {
        if seen.insert((e.holder.clone(), e.acquires.clone())) {
            out.push(e);
        }
    }
    out
}

/// Walk one function body: guard scopes, acquisitions, calls.
fn analyze_fn(f: &FnItem, file: &SourceFile, lock_fields: &BTreeMap<String, String>) -> FnLocks {
    let mut info = FnLocks::default();
    // Locals known to be locks: name -> label.
    let mut locals: BTreeMap<String, String> = BTreeMap::new();
    // Parameters with lock types.
    for (name, has_lock) in param_locks(&f.sig) {
        if has_lock {
            locals.insert(name.clone(), format!("{}.{}", f.name, name));
        }
    }
    let mut held: Vec<(String, Option<String>)> = Vec::new(); // (label, guard var)
    walk_block(&f.body, f, file, lock_fields, &mut locals, &mut held, &mut info);
    info
}

/// Parameter names whose type tokens mention a lock.
fn param_locks(sig: &[Tree]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    // The parameter list is the first paren group in the signature.
    let Some(Tree::Group { items, .. }) = sig.iter().find(|t| t.is_group('(')) else {
        return out;
    };
    let mut param: Vec<&Tree> = Vec::new();
    let mut angle = 0i32;
    let flush = |param: &mut Vec<&Tree>, out: &mut Vec<(String, bool)>| {
        if let Some(c) = param.iter().position(|t| t.is_punct(":")) {
            let name = param[..c].iter().rev().find_map(|t| t.ident());
            let has_lock = param[c + 1..]
                .iter()
                .filter_map(|t| t.ident())
                .any(|id| id == "Mutex" || id == "RwLock");
            if let Some(name) = name {
                out.push((name.to_string(), has_lock));
            }
        }
        param.clear();
    };
    for t in items {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct(",") && angle <= 0 {
            flush(&mut param, &mut out);
            angle = 0;
            continue;
        }
        param.push(t);
    }
    flush(&mut param, &mut out);
    out
}

/// Recursive scope walker. `held` carries live guards; guards bound in a
/// block pop when the block closes.
#[allow(clippy::too_many_arguments)]
fn walk_block(
    trees: &[Tree],
    f: &FnItem,
    file: &SourceFile,
    lock_fields: &BTreeMap<String, String>,
    locals: &mut BTreeMap<String, String>,
    held: &mut Vec<(String, Option<String>)>,
    info: &mut FnLocks,
) {
    let base = held.len();
    let mut i = 0;
    // Temporaries acquired in the current statement (popped at `;`).
    let mut stmt_tmp = 0usize;
    while i < trees.len() {
        let t = &trees[i];
        if t.is_punct(";") {
            for _ in 0..stmt_tmp {
                // Temporaries die in reverse order at statement end.
                let pos = held.iter().rposition(|(_, v)| v.is_none());
                if let Some(p) = pos {
                    held.remove(p);
                }
            }
            stmt_tmp = 0;
            i += 1;
            continue;
        }
        // `let [mut] name … = rhs ;`
        if t.ident() == Some("let") {
            let var = trees[i + 1..]
                .iter()
                .take_while(|t| !t.is_punct("=") && !t.is_punct(";"))
                .find_map(|t| match t.ident() {
                    Some("mut") | Some("ref") => None,
                    Some(id) => Some(id.to_string()),
                    None => None,
                });
            let semi = find_stmt_end(trees, i);
            let eq = trees[i..semi].iter().position(|t| t.is_punct("="));
            if let (Some(var), Some(eq)) = (var, eq) {
                let rhs = &trees[i + eq + 1..semi];
                // Track lock-typed locals and aliases so later `.lock()`
                // receivers resolve.
                if is_lock_ctor(rhs) || let_annotated_lock(&trees[i..i + eq]) {
                    locals.insert(var.clone(), format!("{}.{}", f.name, var));
                } else if let Some(alias) = alias_of_local(rhs, locals) {
                    locals.insert(var.clone(), alias);
                }
                // Pure guard binding: rhs is exactly `<recv>.lock()` (or
                // read/write) with nothing after the call.
                if let Some(label) = pure_acquisition(rhs, lock_fields, locals) {
                    record_acq(&label, rhs.last().map_or(f.line, |t| t.line()), file, held, info);
                    held.push((label, Some(var)));
                    i = semi;
                    continue;
                }
            }
            // Not a guard binding: scan the rhs like any expression.
            let semi_end = semi.min(trees.len());
            scan_exprs(
                &trees[i + 1..semi_end],
                f,
                file,
                lock_fields,
                locals,
                held,
                info,
                &mut stmt_tmp,
            );
            i = semi_end;
            continue;
        }
        // `drop(g)` releases a bound guard early.
        if t.ident() == Some("drop") {
            if let Some(Tree::Group { items, .. }) = trees.get(i + 1) {
                if items.len() == 1 {
                    if let Some(v) = items[0].ident() {
                        if let Some(p) = held.iter().position(|(_, g)| g.as_deref() == Some(v)) {
                            held.remove(p);
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        if let Tree::Group { delim: '{', items, .. } = t {
            walk_block(items, f, file, lock_fields, locals, held, info);
            i += 1;
            continue;
        }
        // Anything else: expression scan of this single tree (groups
        // recurse; leaf patterns match against the following tokens).
        let consumed = scan_at(trees, i, f, file, lock_fields, locals, held, info, &mut stmt_tmp);
        i += consumed.max(1);
    }
    // Close the block: statement temporaries and block-bound guards die.
    held.truncate(base);
}

/// Find the index of the `;` ending the statement starting at `start`
/// (top level of this tree slice), or the slice end.
fn find_stmt_end(trees: &[Tree], start: usize) -> usize {
    trees[start..].iter().position(|t| t.is_punct(";")).map(|p| start + p).unwrap_or(trees.len())
}

/// Scan a run of expression trees (no statement structure).
#[allow(clippy::too_many_arguments)]
fn scan_exprs(
    trees: &[Tree],
    f: &FnItem,
    file: &SourceFile,
    lock_fields: &BTreeMap<String, String>,
    locals: &mut BTreeMap<String, String>,
    held: &mut Vec<(String, Option<String>)>,
    info: &mut FnLocks,
    stmt_tmp: &mut usize,
) {
    let mut i = 0;
    while i < trees.len() {
        let consumed = scan_at(trees, i, f, file, lock_fields, locals, held, info, stmt_tmp);
        i += consumed.max(1);
    }
}

/// Inspect position `i`: record acquisitions/calls; recurse into groups.
/// Returns tokens consumed.
#[allow(clippy::too_many_arguments)]
fn scan_at(
    trees: &[Tree],
    i: usize,
    f: &FnItem,
    file: &SourceFile,
    lock_fields: &BTreeMap<String, String>,
    locals: &mut BTreeMap<String, String>,
    held: &mut Vec<(String, Option<String>)>,
    info: &mut FnLocks,
    stmt_tmp: &mut usize,
) -> usize {
    match &trees[i] {
        Tree::Group { delim: '{', items, .. } => {
            // Block expression / closure body / match body: full scope.
            walk_block(items, f, file, lock_fields, locals, held, info);
            1
        }
        Tree::Group { items, .. } => {
            scan_exprs(items, f, file, lock_fields, locals, held, info, stmt_tmp);
            1
        }
        Tree::Leaf(t) if t.is_punct(".") => {
            // `.lock()` / `.read()` / `.write()` acquisition?
            if let (Some(method), Some(args)) =
                (trees.get(i + 1).and_then(|t| t.ident()), trees.get(i + 2))
            {
                if matches!(method, "lock" | "read" | "write") && args.is_group('(') {
                    if let Some(label) = resolve_receiver(&trees[..i], lock_fields, locals) {
                        let line = trees[i + 1].line();
                        record_acq(&label, line, file, held, info);
                        held.push((label, None));
                        *stmt_tmp += 1;
                        return 3;
                    }
                }
                // `self.method(…)` while holding guards → candidate for
                // one-level inlining (receiver must be exactly `self`; a
                // bare-name match on e.g. `queue.len()` would alias every
                // `len` in the workspace).
                if args.is_group('(') && !matches!(method, "lock" | "read" | "write") {
                    let recv_is_self = i >= 1
                        && trees[i - 1].ident() == Some("self")
                        && !(i >= 2 && (trees[i - 2].is_punct(".") || trees[i - 2].is_punct("::")));
                    if !held.is_empty() && recv_is_self {
                        if let Some(owner) = &f.owner {
                            info.calls.push(CallSite {
                                callee: format!("{owner}::{method}"),
                                held: held.iter().map(|(l, _)| l.clone()).collect(),
                                line: trees[i + 1].line(),
                            });
                        }
                    }
                    // Recurse into the argument list (closures may lock).
                    let consumed =
                        scan_at(trees, i + 2, f, file, lock_fields, locals, held, info, stmt_tmp);
                    return 2 + consumed;
                }
            }
            1
        }
        Tree::Leaf(t) => {
            // Free call `name(…)` or `Self::name(…)` — not a macro
            // (`name!`), not a method (previous token `.` handled above).
            if let Some(name) = t.ident() {
                let prev_is_dot = i > 0 && trees[i - 1].is_punct(".");
                let prev_is_path = i > 0 && trees[i - 1].is_punct("::");
                let next = trees.get(i + 1);
                if !prev_is_dot
                    && next.is_some_and(|n| n.is_group('('))
                    && !matches!(
                        name,
                        "if" | "while" | "for" | "match" | "return" | "drop" | "loop"
                    )
                    && !held.is_empty()
                {
                    // `Self::name(…)` resolves within the caller's impl;
                    // any other `Path::name(…)` is unresolvable and
                    // skipped, while a bare `name(…)` resolves to free fns.
                    let callee = if prev_is_path {
                        let self_qualified = i >= 2 && trees[i - 2].ident() == Some("Self");
                        match (&f.owner, self_qualified) {
                            (Some(owner), true) => Some(format!("{owner}::{name}")),
                            _ => None,
                        }
                    } else {
                        Some(name.to_string())
                    };
                    if let Some(callee) = callee {
                        info.calls.push(CallSite {
                            callee,
                            held: held.iter().map(|(l, _)| l.clone()).collect(),
                            line: t.line,
                        });
                    }
                }
            }
            1
        }
    }
}

/// Record an acquisition: direct set + edges versus every held guard.
fn record_acq(
    label: &str,
    line: usize,
    file: &SourceFile,
    held: &[(String, Option<String>)],
    info: &mut FnLocks,
) {
    info.direct.push(Acq { label: label.to_string(), line });
    for (holder, _) in held {
        info.edges.push(Edge {
            holder: holder.clone(),
            acquires: label.to_string(),
            site: format!("{}:{}", file.path, line),
        });
    }
}

/// Resolve the receiver chain ending at `tail` (`self.shared.send_lock`,
/// `pairs[i]`, `m`) to a lock label, or `None` if it is not a known lock.
fn resolve_receiver(
    before: &[Tree],
    lock_fields: &BTreeMap<String, String>,
    locals: &BTreeMap<String, String>,
) -> Option<String> {
    // Walk backwards over idents, `.`, `::`, `self`, and index groups; the
    // receiver's *last identifier* names the lock.
    let mut j = before.len();
    let mut last_ident: Option<&str> = None;
    while j > 0 {
        match &before[j - 1] {
            Tree::Group { delim: '[', .. } => j -= 1,
            Tree::Leaf(t) if t.is_punct(".") || t.is_punct("::") => j -= 1,
            Tree::Leaf(t) => {
                if let Some(id) = t.ident() {
                    if last_ident.is_none() {
                        last_ident = Some(id);
                    }
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let name = last_ident?;
    // A call like `stdout().lock()` leaves the chain ending in a group —
    // `last_ident` would then be `stdout`, but the token directly before
    // the `.` is the call group, so reject that shape.
    if matches!(before.last(), Some(Tree::Group { delim: '(', .. })) {
        return None;
    }
    locals.get(name).cloned().or_else(|| lock_fields.get(name).cloned())
}

/// `rhs` constructs a lock: contains `Mutex::new` / `RwLock::new` at the
/// top level (possibly wrapped in `Arc::new(…)`).
fn is_lock_ctor(rhs: &[Tree]) -> bool {
    fn any(trees: &[Tree]) -> bool {
        trees.iter().any(|t| match t {
            Tree::Leaf(l) => matches!(l.ident(), Some("Mutex") | Some("RwLock")),
            Tree::Group { items, .. } => any(items),
        })
    }
    any(rhs)
}

/// The `let` head (`let mut pairs: Vec<Mutex<…>>`) carries a lock type
/// annotation.
fn let_annotated_lock(head: &[Tree]) -> bool {
    head.iter().any(|t| matches!(t.ident(), Some("Mutex") | Some("RwLock")))
}

/// `rhs` is `&local` / `&&local` / `local` for a known lock local —
/// propagate the label through the alias.
fn alias_of_local(rhs: &[Tree], locals: &BTreeMap<String, String>) -> Option<String> {
    let idents: Vec<&str> = rhs.iter().filter_map(|t| t.ident()).collect();
    let ok_shape = rhs.iter().all(|t| matches!(t, Tree::Leaf(l) if l.ident().is_some() || l.is_punct("&") || l.is_punct("mut")));
    if ok_shape && idents.len() == 1 {
        return locals.get(idents[0]).cloned();
    }
    None
}

/// `rhs` is exactly `<receiver>.lock()` (or `.read()`/`.write()`) with
/// nothing trailing: a guard binding rather than a temporary.
fn pure_acquisition(
    rhs: &[Tree],
    lock_fields: &BTreeMap<String, String>,
    locals: &BTreeMap<String, String>,
) -> Option<String> {
    if rhs.len() < 3 {
        return None;
    }
    let n = rhs.len();
    if !rhs[n - 1].is_group('(') {
        return None;
    }
    let method = rhs[n - 2].ident()?;
    if !matches!(method, "lock" | "read" | "write") {
        return None;
    }
    if !rhs[n - 3].is_punct(".") {
        return None;
    }
    // No leading deref/borrow (those copy out and drop the guard).
    if rhs[0].is_punct("*") {
        return None;
    }
    resolve_receiver(&rhs[..n - 3], lock_fields, locals)
}

// --- the check ---------------------------------------------------------------

/// Compute edges, reject cycles, and diff against the committed artifact.
pub fn check(ws: &Workspace, committed: Option<&str>) -> Vec<Finding> {
    let edges = edges(ws);
    let mut findings = Vec::new();

    // Cycles (self-edges included).
    for cycle in find_cycles(&edges) {
        let site =
            edges.iter().find(|e| e.holder == cycle[0]).map(|e| e.site.clone()).unwrap_or_default();
        findings.push(Finding {
            path: site.split(':').next().unwrap_or("lint/lock-order.toml").to_string(),
            line: site.rsplit(':').next().and_then(|l| l.parse().ok()).unwrap_or(1),
            rule: RULE,
            message: format!(
                "lock-order cycle (potential deadlock): {} -> {}",
                cycle.join(" -> "),
                cycle[0]
            ),
        });
    }

    // Drift against the committed artifact.
    let committed_pairs = committed.map(parse_toml_edges).unwrap_or_default();
    if committed.is_none() && !edges.is_empty() {
        findings.push(Finding {
            path: "lint/lock-order.toml".to_string(),
            line: 1,
            rule: RULE,
            message: "missing committed lock-order artifact; generate it with \
                      `cargo xtask lock-order --write` and review the edges"
                .to_string(),
        });
        return findings;
    }
    for e in &edges {
        if !committed_pairs.contains(&(e.holder.clone(), e.acquires.clone())) {
            findings.push(Finding {
                path: e.site.split(':').next().unwrap_or("?").to_string(),
                line: e.site.rsplit(':').next().and_then(|l| l.parse().ok()).unwrap_or(1),
                rule: RULE,
                message: format!(
                    "new lock-order edge `{}` -> `{}` not in lint/lock-order.toml; review the \
                     ordering, then regenerate with `cargo xtask lock-order --write`",
                    e.holder, e.acquires
                ),
            });
        }
    }
    let current: BTreeSet<(String, String)> =
        edges.iter().map(|e| (e.holder.clone(), e.acquires.clone())).collect();
    for (holder, acquires) in &committed_pairs {
        if !current.contains(&(holder.clone(), acquires.clone())) {
            findings.push(Finding {
                path: "lint/lock-order.toml".to_string(),
                line: 1,
                rule: RULE,
                message: format!(
                    "stale committed edge `{holder}` -> `{acquires}` no longer exists; \
                     regenerate with `cargo xtask lock-order --write`"
                ),
            });
        }
    }
    findings
}

/// All elementary cycles reachable in the edge graph (reported once each,
/// starting from the lexicographically smallest node).
fn find_cycles(edges: &[Edge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.holder).or_default().push(&e.acquires);
    }
    let mut cycles = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut stack: Vec<&str> = vec![start];
        let mut path_set: BTreeSet<&str> = BTreeSet::new();
        path_set.insert(start);
        dfs(start, start, &adj, &mut stack, &mut path_set, &mut cycles, &mut seen_cycles);
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    path_set: &mut BTreeSet<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    seen: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            // Canonicalize: rotate so the smallest node leads.
            let mut cyc: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            let min = cyc.iter().enumerate().min_by_key(|(_, s)| (*s).clone()).map(|(i, _)| i);
            if let Some(m) = min {
                cyc.rotate_left(m);
            }
            if seen.insert(cyc.clone()) {
                cycles.push(cyc);
            }
        } else if !path_set.contains(next) && next > start {
            // Only explore nodes after `start` so each cycle is found from
            // its smallest member exactly once.
            stack.push(next);
            path_set.insert(next);
            dfs(next, start, adj, stack, path_set, cycles, seen);
            stack.pop();
            path_set.remove(next);
        }
    }
}

// --- artifact ----------------------------------------------------------------

/// Render the edge set as the committed TOML artifact.
pub fn render_toml(edges: &[Edge]) -> String {
    let mut out = String::from(
        "# Lock-order graph — acquired-while-holding edges in pool/core/comm/ft/serve.\n\
         # Generated by `cargo xtask lock-order --write`; reviewed, not hand-edited.\n\
         # `cargo xtask lint` fails on any edge added, removed, or cycle formed.\n\
         version = 1\n",
    );
    let mut sorted: Vec<&Edge> = edges.iter().collect();
    sorted.sort();
    for e in sorted {
        out.push_str(&format!(
            "\n[[edge]]\nholder = \"{}\"\nacquires = \"{}\"\n# e.g. {}\n",
            e.holder, e.acquires, e.site
        ));
    }
    if edges.is_empty() {
        out.push_str(
            "\n# No acquired-while-holding edges: every guard scope in the analyzed\n\
             # crates is a leaf. New nested locking will show up here as a diff.\n",
        );
    }
    out
}

/// Parse the `[[edge]]` pairs out of the committed artifact (a minimal,
/// purpose-built TOML subset — key = "value" lines under `[[edge]]`).
fn parse_toml_edges(src: &str) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    let mut holder: Option<String> = None;
    for line in src.lines() {
        let line = line.trim();
        if line == "[[edge]]" {
            holder = None;
        } else if let Some(v) = line.strip_prefix("holder = ") {
            holder = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = line.strip_prefix("acquires = ") {
            if let Some(h) = holder.clone() {
                out.insert((h, v.trim_matches('"').to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/core/src/seeded.rs", src)])
    }

    #[test]
    fn nested_guard_produces_edge() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S { fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); } }");
        let es = edges(&w);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].holder, "S.a");
        assert_eq!(es[0].acquires, "S.b");
    }

    #[test]
    fn guard_scope_ends_at_block_and_drop() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S {\n\
                      fn f(&self) { { let g = self.a.lock(); } let h = self.b.lock(); }\n\
                      fn g(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); }\n\
                    }");
        assert!(edges(&w).is_empty());
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let w = ws(
            "struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }\n\
                    impl S { fn f(&self) { let n = self.a.lock().len(); let h = self.b.lock(); } }",
        );
        assert!(edges(&w).is_empty());
    }

    #[test]
    fn cycle_is_detected() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S {\n\
                      fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                      fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
                    }");
        let findings = check(&w, Some("version = 1\n[[edge]]\nholder = \"S.a\"\nacquires = \"S.b\"\n[[edge]]\nholder = \"S.b\"\nacquires = \"S.a\"\n"));
        assert!(findings.iter().any(|f| f.message.contains("cycle")), "{findings:?}");
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let w = ws("struct S { a: Mutex<u32> }\n\
                    impl S { fn f(&self) { let g = self.a.lock(); let h = self.a.lock(); } }");
        let findings =
            check(&w, Some("version = 1\n[[edge]]\nholder = \"S.a\"\nacquires = \"S.a\"\n"));
        assert!(findings.iter().any(|f| f.message.contains("cycle")));
    }

    #[test]
    fn one_level_inlining_sees_callee_locks() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S {\n\
                      fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                      fn inner(&self) { let h = self.b.lock(); }\n\
                    }");
        let es = edges(&w);
        assert!(es.iter().any(|e| e.holder == "S.a" && e.acquires == "S.b"), "{es:?}");
    }

    #[test]
    fn bare_name_methods_are_not_inlined() {
        // `state.queue.len()` under the guard must NOT alias
        // `CircularBuffer::len` (which locks internally) into a phantom
        // self-deadlock — only `self.method(…)` calls resolve.
        let w = ws("struct B { state: Mutex<Vec<u32>> }\n\
                    impl B {\n\
                      fn len(&self) -> usize { self.state.lock().len() }\n\
                      fn push(&self, cv: &Condvar) {\n\
                        let mut state = self.state.lock();\n\
                        while state.len() > 0 { cv.wait(&mut state); }\n\
                      }\n\
                      fn wait(&self) { let g = self.state.lock(); }\n\
                    }");
        assert!(edges(&w).is_empty(), "{:?}", edges(&w));
    }

    #[test]
    fn self_qualified_call_is_inlined() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S {\n\
                      fn outer(&self) { let g = self.a.lock(); Self::inner(self); }\n\
                      fn inner(&self) { let h = self.b.lock(); }\n\
                    }");
        let es = edges(&w);
        assert!(es.iter().any(|e| e.holder == "S.a" && e.acquires == "S.b"), "{es:?}");
    }

    #[test]
    fn unknown_receivers_are_not_locks() {
        let w = ws("fn f() { let out = std::io::stdout(); let g = out2().lock(); }");
        assert!(edges(&w).is_empty());
    }

    #[test]
    fn new_edge_fails_against_committed_artifact() {
        let w = ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                    impl S { fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); } }");
        let findings = check(&w, Some("version = 1\n"));
        assert!(findings.iter().any(|f| f.message.contains("new lock-order edge")));
        let committed = render_toml(&edges(&w));
        assert!(check(&w, Some(&committed)).is_empty());
    }

    #[test]
    fn stale_edge_fails() {
        let w = ws("fn f() {}");
        let findings =
            check(&w, Some("version = 1\n[[edge]]\nholder = \"X.a\"\nacquires = \"X.b\"\n"));
        assert!(findings.iter().any(|f| f.message.contains("stale")));
    }
}
