//! An item-level AST over the token stream: delimiter-matched token trees,
//! plus extraction of the items the analyses reason about — functions (with
//! bodies), `impl`/`trait` context, `const`/`static` definitions, struct
//! fields with lock types, and `#[cfg(test)]` regions.
//!
//! This is deliberately *not* a full expression grammar. Bodies stay token
//! trees; each analysis walks them with its own small pattern matcher
//! (guard scopes, call sites, panic sites, tag arguments). What the tree
//! layer guarantees — and the text scanner could not — is that nesting is
//! real (`{}` pairs matched through strings and comments), attributes and
//! test regions are structural, and every token knows its line.

use crate::lexer::{lex, Tok, Token};

/// A delimiter-matched token tree.
#[derive(Debug, Clone)]
pub enum Tree {
    Leaf(Token),
    Group {
        /// `(`, `[`, or `{`.
        delim: char,
        /// Line of the opening delimiter.
        line: usize,
        items: Vec<Tree>,
    },
}

impl Tree {
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.ident(),
            _ => None,
        }
    }

    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(p))
    }

    pub fn is_group(&self, delim: char) -> bool {
        matches!(self, Tree::Group { delim: d, .. } if *d == delim)
    }
}

/// Parse source text into a sequence of token trees.
pub fn parse_trees(src: &str) -> Vec<Tree> {
    let tokens = lex(src);
    let mut pos = 0;
    build_trees(&tokens, &mut pos, None)
}

fn build_trees(tokens: &[Token], pos: &mut usize, until: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *pos < tokens.len() {
        let t = &tokens[*pos];
        match &t.kind {
            Tok::Open(d) => {
                let delim = *d;
                let line = t.line;
                *pos += 1;
                let inner = build_trees(tokens, pos, Some(closing(delim)));
                out.push(Tree::Group { delim, line, items: inner });
            }
            Tok::Close(d) => {
                if Some(*d) == until {
                    *pos += 1;
                    return out;
                }
                // Stray close (unbalanced source): skip it.
                *pos += 1;
            }
            _ => {
                out.push(Tree::Leaf(t.clone()));
                *pos += 1;
            }
        }
    }
    out
}

fn closing(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Which lock primitive a field/local holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A struct field (or static) whose type contains a lock.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Enclosing struct name (or `""` for a static item).
    pub owner: String,
    pub field: String,
    pub kind: LockKind,
    pub line: usize,
}

/// A `const` or `static` item.
#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    /// Type tokens, flattened to strings (`["Tag"]`, `["u64"]`, …).
    pub ty: Vec<String>,
    /// Value expression trees (everything between `=` and `;`).
    pub value: Vec<Tree>,
    pub line: usize,
    pub in_test: bool,
}

/// A function with its body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Self type of the enclosing `impl`/`trait`, if any.
    pub owner: Option<String>,
    /// Signature trees between the name and the body (generics, params,
    /// return type, where clause).
    pub sig: Vec<Tree>,
    pub body: Vec<Tree>,
    pub line: usize,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub in_test: bool,
    /// Comment/attribute run directly above the `fn` contains
    /// `PANIC-FREE:` (function-level justification; checked by the caller
    /// against raw source lines).
    pub doc_start_line: usize,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileAst {
    pub fns: Vec<FnItem>,
    pub consts: Vec<ConstItem>,
    pub lock_fields: Vec<LockField>,
}

/// Parse a file into its item-level AST.
pub fn parse_file(src: &str) -> FileAst {
    let trees = parse_trees(src);
    let mut ast = FileAst::default();
    collect_items(&trees, None, false, &mut ast);
    ast
}

/// Walk an item sequence (file top level, `mod` body, `impl`/`trait` body),
/// extracting items. `owner` is the enclosing impl/trait self type.
fn collect_items(trees: &[Tree], owner: Option<&str>, in_test: bool, ast: &mut FileAst) {
    let mut i = 0;
    // Start line of the attribute run preceding the current item (for
    // fn-level justification comments that sit above the attributes).
    let mut attr_start: Option<usize> = None;
    let mut attr_is_test = false;
    let mut attr_cfg_test = false;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) if t.is_punct("#") => {
                // Attribute `#[…]` or inner `#![…]`.
                let mut j = i + 1;
                if trees.get(j).is_some_and(|t| t.is_punct("!")) {
                    j += 1;
                }
                if let Some(Tree::Group { delim: '[', items, line }) = trees.get(j) {
                    if attr_start.is_none() {
                        attr_start = Some(*line);
                    }
                    let words = attr_words(items);
                    if words.first().map(String::as_str) == Some("test") {
                        attr_is_test = true;
                    }
                    if words.first().map(String::as_str) == Some("cfg")
                        && words.iter().any(|w| w == "test")
                        && !words.iter().any(|w| w == "not")
                    {
                        attr_cfg_test = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            Tree::Leaf(t) => {
                match t.ident() {
                    Some("mod") => {
                        // `mod name { … }` or `mod name;`
                        let mod_test = in_test || attr_cfg_test;
                        let mut j = i + 1;
                        while j < trees.len() && !trees[j].is_group('{') && !trees[j].is_punct(";")
                        {
                            j += 1;
                        }
                        if let Some(Tree::Group { items, .. }) = trees.get(j) {
                            collect_items(items, None, mod_test, ast);
                        }
                        i = j + 1;
                        reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                    }
                    Some("impl") | Some("trait") => {
                        let is_trait = t.ident() == Some("trait");
                        let item_test = in_test || attr_cfg_test;
                        // Find the body `{ … }` at this level; extract the
                        // self-type name from the header tokens.
                        let mut j = i + 1;
                        let mut header: Vec<&Tree> = Vec::new();
                        while j < trees.len() && !trees[j].is_group('{') && !trees[j].is_punct(";")
                        {
                            header.push(&trees[j]);
                            j += 1;
                        }
                        let ty = impl_self_type(&header, is_trait);
                        if let Some(Tree::Group { items, .. }) = trees.get(j) {
                            collect_items(items, ty.as_deref(), item_test, ast);
                        }
                        i = j + 1;
                        reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                    }
                    Some("fn") => {
                        let name =
                            trees.get(i + 1).and_then(|t| t.ident()).unwrap_or("").to_string();
                        let mut j = i + 2;
                        let sig_start = j;
                        while j < trees.len() && !trees[j].is_group('{') && !trees[j].is_punct(";")
                        {
                            j += 1;
                        }
                        let sig: Vec<Tree> = trees[sig_start..j].to_vec();
                        let body = match trees.get(j) {
                            Some(Tree::Group { delim: '{', items, .. }) => items.clone(),
                            _ => Vec::new(), // trait method declaration
                        };
                        ast.fns.push(FnItem {
                            name,
                            owner: owner.map(str::to_string),
                            sig,
                            body,
                            line: t.line,
                            in_test: in_test || attr_cfg_test || attr_is_test,
                            doc_start_line: attr_start.unwrap_or(t.line),
                        });
                        i = j + 1;
                        reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                    }
                    Some("const") | Some("static") => {
                        // `const NAME: Ty = value;` — skip `const fn` (the
                        // `fn` arm handles it next iteration) and `const`
                        // generics inside signatures (not item position).
                        if trees.get(i + 1).and_then(|t| t.ident()) == Some("fn") {
                            i += 1;
                            continue;
                        }
                        let name = match trees.get(i + 1).and_then(|t| t.ident()) {
                            Some(n) if n != "mut" => n.to_string(),
                            _ => {
                                // `static mut NAME` — shift by one.
                                trees.get(i + 2).and_then(|t| t.ident()).unwrap_or("").to_string()
                            }
                        };
                        let mut j = i + 1;
                        // Type: between `:` and `=`; value: between `=` and `;`.
                        let mut ty = Vec::new();
                        let mut value = Vec::new();
                        let mut seen_colon = false;
                        let mut seen_eq = false;
                        while j < trees.len() && !trees[j].is_punct(";") {
                            if trees[j].is_punct(":") && !seen_eq {
                                seen_colon = true;
                            } else if trees[j].is_punct("=") && !seen_eq {
                                seen_eq = true;
                            } else if seen_eq {
                                value.push(trees[j].clone());
                            } else if seen_colon {
                                if let Some(id) = trees[j].ident() {
                                    ty.push(id.to_string());
                                }
                            }
                            j += 1;
                        }
                        // A static whose type mentions a lock is a global lock.
                        if ty.iter().any(|t| t == "Mutex" || t == "RwLock") {
                            ast.lock_fields.push(LockField {
                                owner: String::new(),
                                field: name.clone(),
                                kind: if ty.iter().any(|t| t == "RwLock") {
                                    LockKind::RwLock
                                } else {
                                    LockKind::Mutex
                                },
                                line: t.line,
                            });
                        }
                        ast.consts.push(ConstItem {
                            name,
                            ty,
                            value,
                            line: t.line,
                            in_test: in_test || attr_cfg_test,
                        });
                        i = j + 1;
                        reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                    }
                    Some("struct") => {
                        let sname =
                            trees.get(i + 1).and_then(|t| t.ident()).unwrap_or("").to_string();
                        let mut j = i + 2;
                        while j < trees.len()
                            && !trees[j].is_group('{')
                            && !trees[j].is_group('(')
                            && !trees[j].is_punct(";")
                        {
                            j += 1;
                        }
                        if let Some(Tree::Group { delim: '{', items, .. }) = trees.get(j) {
                            collect_lock_fields(items, &sname, ast);
                        }
                        i = j + 1;
                        reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                    }
                    _ => {
                        i += 1;
                        if !matches!(
                            t.ident(),
                            Some("pub")
                                | Some("unsafe")
                                | Some("async")
                                | Some("extern")
                                | Some("default")
                        ) && !t.is_punct("#")
                        {
                            // Any other token breaks the attribute run.
                            reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
                        }
                    }
                }
            }
            Tree::Group { .. } => {
                i += 1;
                reset_attrs(&mut attr_start, &mut attr_is_test, &mut attr_cfg_test);
            }
        }
    }
}

/// All identifiers inside an attribute's `[…]` group, including nested
/// groups (`cfg(test)` keeps `test` inside a paren group).
pub(crate) fn attr_words(items: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(items: &[Tree], out: &mut Vec<String>) {
        for t in items {
            match t {
                Tree::Leaf(l) => {
                    if let Some(id) = l.ident() {
                        out.push(id.to_string());
                    }
                }
                Tree::Group { items, .. } => walk(items, out),
            }
        }
    }
    walk(items, &mut out);
    out
}

fn reset_attrs(start: &mut Option<usize>, is_test: &mut bool, cfg_test: &mut bool) {
    *start = None;
    *is_test = false;
    *cfg_test = false;
}

/// The self-type name of an `impl` header: last path segment of the type
/// after `for` (trait impls) or after the generics (inherent impls). For
/// `trait Name …` it is the first identifier.
fn impl_self_type(header: &[&Tree], is_trait: bool) -> Option<String> {
    if is_trait {
        return header.iter().find_map(|t| t.ident()).map(str::to_string);
    }
    let for_pos = header.iter().position(|t| t.ident() == Some("for"));
    let tail: &[&Tree] = match for_pos {
        Some(p) => &header[p + 1..],
        None => {
            // Skip leading generics `<…>` (token-level angles).
            let mut k = 0;
            if header.first().is_some_and(|t| t.is_punct("<")) {
                let mut depth = 0i32;
                while k < header.len() {
                    if header[k].is_punct("<") {
                        depth += 1;
                    } else if header[k].is_punct(">") {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    } else if header[k].is_punct(">>") {
                        depth -= 2;
                        if depth <= 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            &header[k..]
        }
    };
    // Last identifier before the type's own generics open.
    let mut name = None;
    for t in tail {
        if t.is_punct("<") {
            break;
        }
        if let Some(id) = t.ident() {
            if !matches!(id, "dyn" | "mut" | "where") {
                name = Some(id.to_string());
            }
        }
        if t.is_punct("where") {
            break;
        }
    }
    name
}

/// Record fields whose type mentions `Mutex`/`RwLock` (including inside
/// containers like `Arc<Mutex<…>>` or `Vec<Mutex<…>>`).
fn collect_lock_fields(items: &[Tree], struct_name: &str, ast: &mut FileAst) {
    // Split on top-level commas: `vis name : type-tokens`.
    let mut field: Vec<&Tree> = Vec::new();
    let flush = |field: &mut Vec<&Tree>, ast: &mut FileAst| {
        let colon = field.iter().position(|t| t.is_punct(":"));
        if let Some(c) = colon {
            let name = field[..c].iter().rev().find_map(|t| t.ident());
            let ty_idents: Vec<&str> = field[c + 1..].iter().filter_map(|t| t.ident()).collect();
            if let Some(name) = name {
                if ty_idents.contains(&"Mutex") || ty_idents.contains(&"RwLock") {
                    ast.lock_fields.push(LockField {
                        owner: struct_name.to_string(),
                        field: name.to_string(),
                        kind: if ty_idents.contains(&"RwLock") {
                            LockKind::RwLock
                        } else {
                            LockKind::Mutex
                        },
                        line: field[0].line(),
                    });
                }
            }
        }
        field.clear();
    };
    let mut angle = 0i32;
    for t in items {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct(",") && angle <= 0 {
            flush(&mut field, ast);
            angle = 0;
            continue;
        }
        field.push(t);
    }
    flush(&mut field, ast);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_owners() {
        let ast = parse_file(
            "impl Registry { fn submit(&self) { x(); } }\n\
             fn free() {}\n\
             trait T { fn m(&self) { y(); } fn sig_only(&self); }",
        );
        let names: Vec<(&str, Option<&str>)> =
            ast.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            names,
            vec![
                ("submit", Some("Registry")),
                ("free", None),
                ("m", Some("T")),
                ("sig_only", Some("T")),
            ]
        );
    }

    #[test]
    fn generic_impls_resolve_self_type() {
        let ast = parse_file("impl<'a, T: Send> CircularBuffer<T> { fn len(&self) {} }");
        assert_eq!(ast.fns[0].owner.as_deref(), Some("CircularBuffer"));
        let ast = parse_file("impl<F: Fabric> Transport for SocketMesh<F> { fn send(&self) {} }");
        assert_eq!(ast.fns[0].owner.as_deref(), Some("SocketMesh"));
    }

    #[test]
    fn cfg_test_regions_are_structural() {
        let ast = parse_file(
            "fn runtime() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n\
             fn also_runtime() {}",
        );
        let tests: Vec<bool> = ast.fns.iter().map(|f| f.in_test).collect();
        assert_eq!(tests, vec![false, true, true, false]);
    }

    #[test]
    fn lock_fields_found_through_containers() {
        let ast = parse_file(
            "struct S { inner: Arc<Mutex<Inner>>, plain: usize, rw: RwLock<Map>, }\n\
             static GLOBAL: Mutex<u32> = Mutex::new(0);",
        );
        let fields: Vec<(&str, &str, LockKind)> =
            ast.lock_fields.iter().map(|f| (f.owner.as_str(), f.field.as_str(), f.kind)).collect();
        assert_eq!(
            fields,
            vec![
                ("S", "inner", LockKind::Mutex),
                ("S", "rw", LockKind::RwLock),
                ("", "GLOBAL", LockKind::Mutex),
            ]
        );
    }

    #[test]
    fn consts_capture_type_and_value() {
        let ast = parse_file("pub const STREAM_BASE: Tag = 1 << 40;\nconst N: usize = 4;");
        assert_eq!(ast.consts[0].name, "STREAM_BASE");
        assert_eq!(ast.consts[0].ty, vec!["Tag"]);
        assert_eq!(ast.consts[0].value.len(), 3);
    }

    #[test]
    fn bodies_nest() {
        let ast = parse_file("fn f() { if x { g(); } }");
        assert_eq!(ast.fns.len(), 1);
        assert!(ast.fns[0].body.iter().any(|t| t.is_group('{')));
    }
}
