//! # smart-lint
//!
//! AST-grade workspace analyses for invariants the line-oriented text
//! scanner in `xtask` structurally cannot see — call graphs, lock scopes,
//! and constant values. Driven by `cargo xtask lint` alongside the
//! remaining text rules.
//!
//! Three semantic analyses:
//!
//! * **lock-order** ([`lockorder`]) — walks every function in `pool`,
//!   `core`, `comm`, `ft`, and `serve`, tracks `smart-sync` Mutex/RwLock
//!   guard scopes intra-procedurally plus one level of call-graph
//!   inlining, emits the acquired-while-holding edge set, rejects cycles
//!   (potential deadlock), and diffs the edges against the committed
//!   `lint/lock-order.toml` so every new edge is an explicit, reviewed
//!   change. Regenerate the artifact with `cargo xtask lock-order --write`.
//! * **panic-free** ([`panicfree`]) — in non-test code of `comm`, `core`,
//!   `ft`, and `serve`, denies `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` and slice indexing that can panic, unless
//!   the expression carries a `// PANIC-FREE:` justification (or, for
//!   indexing only, the enclosing `fn` does). Error flow in the
//!   distributed core goes through `SmartError` — the PeerGone
//!   never-a-hang discipline extended to never-a-panic.
//! * **tag-namespace** ([`tagns`]) — resolves the `u64` tag constants and
//!   ranges claimed in `comm::tags` (stream, ft ping/pong, ft control,
//!   collectives, serve, `DEATH_TAG`), proves the claims pairwise
//!   disjoint, and checks that every tag constant and literal-tag send
//!   site stays inside its module's claimed range.
//!
//! Plus the three rules migrated from the retired text versions, now
//! immune to strings/comments/line-splits: `no-lock-unwrap`,
//! `no-direct-sync`, and `kernel-hot-loop` (see [`rules`]).
//!
//! Findings use the established `path:line: [rule] message` format and the
//! `lint:allow(<rule>)` escape hatch (same line or the line above). Like
//! the `xtask` scanner, every analysis is self-testing: [`selftest`] runs
//! an embedded violation corpus (one seeded bad program and one clean twin
//! per rule) before any workspace scan, so a broken analyzer fails loudly
//! instead of reporting a dirty tree as clean.
//!
//! The crate is dependency-free by design: like the loom shim in
//! `smart-sync`, it vendors the little parsing it needs (a Rust lexer and
//! an item-level AST in [`lexer`]/[`ast`]) instead of pulling `syn`, so it
//! builds offline and in seconds.

pub mod ast;
pub mod lexer;
pub mod lockorder;
pub mod panicfree;
pub mod rules;
mod selftest;
pub mod tagns;

use std::path::{Path, PathBuf};

/// One analyzer finding, formatted `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A parsed source file: workspace-relative path, raw lines (for
/// justification/suppression comments, which the lexer strips), and the
/// item-level AST.
pub struct SourceFile {
    pub path: String,
    pub lines: Vec<String>,
    pub ast: ast::FileAst,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            ast: ast::parse_file(src),
        }
    }

    /// `true` if a `lint:allow(rule)` comment covers 1-indexed `line`
    /// (same line or the line above) — the same contract as the text
    /// scanner's suppressions.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        let needle = format!("lint:allow({rule})");
        self.line_has(line, &needle) || (line > 1 && self.line_has(line - 1, &needle))
    }

    /// `true` if 1-indexed `line` (or the line above) carries `needle`.
    pub fn line_has(&self, line: usize, needle: &str) -> bool {
        self.lines.get(line.wrapping_sub(1)).is_some_and(|l| l.contains(needle))
    }

    /// `true` if the comment/attribute run ending just above 1-indexed
    /// `line` contains `needle` — used for function-level justifications.
    pub fn comment_run_above_has(&self, line: usize, needle: &str) -> bool {
        let mut i = line.saturating_sub(1); // 0-indexed line above `line`
        while i > 0 {
            i -= 1;
            let t = self.lines[i].trim();
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.is_empty() {
                if t.contains(needle) {
                    return true;
                }
                if t.is_empty() {
                    break;
                }
                continue;
            }
            break;
        }
        false
    }
}

/// The parsed workspace: every `.rs` file under `crates/`, `src/`,
/// `tests/`, and `examples/`.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Parse every workspace source file under `root`.
    pub fn load(root: &Path) -> Workspace {
        let mut paths = Vec::new();
        for top in ["crates", "src", "tests", "examples"] {
            walk(&root.join(top), &mut paths);
        }
        paths.sort();
        let files = paths
            .into_iter()
            .filter_map(|p| {
                let src = std::fs::read_to_string(&p).ok()?;
                let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
                Some(SourceFile::parse(&rel, &src))
            })
            .collect();
        Workspace { files }
    }

    /// Build a workspace from in-memory sources (used by the self-test
    /// corpus and unit tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace { files: sources.iter().map(|(p, s)| SourceFile::parse(p, s)).collect() }
    }

    /// Files belonging to one of the given crates' `src` trees.
    pub fn crate_files<'a>(&'a self, crates: &'a [&str]) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| crates.iter().any(|c| f.path.starts_with(&format!("crates/{c}/src/"))))
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Paths holding test/bench/example code (the analyses target runtime
/// code; in-file `#[cfg(test)]` modules are excluded structurally by the
/// AST instead).
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Run every analysis over a loaded workspace.
pub fn analyze(ws: &Workspace, committed_lock_order: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(lockorder::check(ws, committed_lock_order));
    findings.extend(panicfree::check(ws));
    findings.extend(tagns::check(ws));
    findings.extend(rules::check(ws));
    findings
}

/// Load the workspace at `root` and run every analysis, reading the
/// committed lock-order artifact from `lint/lock-order.toml`.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let ws = Workspace::load(root);
    let committed = std::fs::read_to_string(root.join("lint/lock-order.toml")).ok();
    analyze(&ws, committed.as_deref())
}

/// Render the current lock-order edge set as the committed TOML artifact.
pub fn lock_order_toml(root: &Path) -> String {
    let ws = Workspace::load(root);
    lockorder::render_toml(&lockorder::edges(&ws))
}

/// Run the embedded violation corpus for every analysis. Panics (with the
/// failing rule and program) on any miss, exactly like the xtask text
/// scanner's self-test: a broken analyzer must fail loudly.
pub fn selftest() {
    selftest::run();
}
