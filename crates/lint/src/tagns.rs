//! Tag-namespace checker.
//!
//! Every message in the workspace shares one `u64` tag space; a collision
//! (an ft heartbeat matched by a stream receive, a collective frame
//! swallowed by user code) is a silent cross-wiring that no test reliably
//! catches. The namespace partition lives in one registry —
//! `crates/comm/src/tags.rs` — and this analysis *proves* it:
//!
//! 1. **Claims parse and evaluate.** Each `<NS>_BASE` / `<NS>_LIMIT`
//!    constant pair in the registry claims the half-open range
//!    `[BASE, LIMIT)`; `DEATH_TAG` claims a single point. Values are
//!    resolved by a small const-expression evaluator (`|  ^  &  <<  >>  +
//!    -  *  /  %`, parens, `u64::MAX`, references to other constants).
//! 2. **Claims are pairwise disjoint**, and no range swallows `DEATH_TAG`.
//! 3. **Modules stay inside their claim.** `// lint:claim(NS) = <path>`
//!    comments in the registry map a source file to its namespace; every
//!    tag-typed constant that file defines must evaluate into the claimed
//!    range. Files with no claim may only define tags in the `USER`
//!    range — defining a constant inside someone else's namespace is the
//!    collision this lint exists to prevent.
//! 4. **Literal send tags stay in range.** A `send`-family call whose tag
//!    argument (second position) is a constant expression must evaluate
//!    into the sending module's claim (`USER` for unclaimed modules).

use crate::ast::Tree;
use crate::lexer::Tok;
use crate::{Finding, SourceFile, Workspace};
use std::collections::BTreeMap;

const RULE: &str = "tag-namespace";

/// Workspace-relative path of the tag registry.
pub const REGISTRY: &str = "crates/comm/src/tags.rs";

/// Crates whose send sites are checked.
const SEND_CRATES: &[&str] = &["comm", "core", "ft", "serve"];

#[derive(Debug, Clone)]
struct Claim {
    ns: String,
    base: u64,
    /// Exclusive.
    limit: u64,
    line: usize,
}

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(registry) = ws.files.iter().find(|f| f.path.ends_with("comm/src/tags.rs")) else {
        // No registry in this source set (unit corpora): nothing to prove.
        return findings;
    };

    // Global constant environment, resolved to fixpoint so cross-file
    // references (`STREAM_BASE | 1`) evaluate.
    let env = build_env(ws);

    // 1. Parse + evaluate the registry's claims.
    let mut claims: Vec<Claim> = Vec::new();
    let mut death: Option<u64> = None;
    for c in &registry.ast.consts {
        if c.in_test {
            continue;
        }
        if c.name == "DEATH_TAG" {
            death = eval(&c.value, &env);
            if death.is_none() {
                findings.push(reg_finding(registry, c.line, "`DEATH_TAG` does not evaluate"));
            }
            continue;
        }
        if let Some(ns) = c.name.strip_suffix("_BASE") {
            let limit_name = format!("{ns}_LIMIT");
            let Some(limit_const) =
                registry.ast.consts.iter().find(|l| l.name == limit_name && !l.in_test)
            else {
                findings.push(reg_finding(
                    registry,
                    c.line,
                    &format!("claim `{}` has no matching `{limit_name}`", c.name),
                ));
                continue;
            };
            match (eval(&c.value, &env), eval(&limit_const.value, &env)) {
                (Some(base), Some(limit)) if base < limit => {
                    claims.push(Claim { ns: ns.to_string(), base, limit, line: c.line });
                }
                (Some(base), Some(limit)) => {
                    findings.push(reg_finding(
                        registry,
                        c.line,
                        &format!("claim `{ns}` is empty or inverted ({base:#x}..{limit:#x})"),
                    ));
                }
                _ => findings.push(reg_finding(
                    registry,
                    c.line,
                    &format!("claim `{ns}` does not evaluate to constant u64 bounds"),
                )),
            }
        }
    }

    // 2. Pairwise disjointness (+ DEATH_TAG outside every range).
    for (i, a) in claims.iter().enumerate() {
        for b in claims.iter().skip(i + 1) {
            if a.base < b.limit && b.base < a.limit {
                findings.push(reg_finding(
                    registry,
                    b.line.max(a.line),
                    &format!(
                        "namespaces `{}` ({:#x}..{:#x}) and `{}` ({:#x}..{:#x}) overlap",
                        a.ns, a.base, a.limit, b.ns, b.base, b.limit
                    ),
                ));
            }
        }
        if let Some(d) = death {
            if a.base <= d && d < a.limit {
                findings.push(reg_finding(
                    registry,
                    a.line,
                    &format!("namespace `{}` swallows DEATH_TAG ({d:#x})", a.ns),
                ));
            }
        }
    }

    // 3. `lint:claim(NS) = path` mappings.
    let mut file_ns: BTreeMap<String, String> = BTreeMap::new(); // path suffix -> ns
    for (idx, line) in registry.lines.iter().enumerate() {
        if let Some(rest) = line.split("lint:claim(").nth(1) {
            let Some(ns) = rest.split(')').next() else { continue };
            let Some(path) = rest.split('=').nth(1).map(str::trim) else { continue };
            if !claims.iter().any(|c| c.ns == ns) {
                findings.push(reg_finding(
                    registry,
                    idx + 1,
                    &format!("lint:claim names unknown namespace `{ns}`"),
                ));
                continue;
            }
            if path != "-" {
                file_ns.insert(path.to_string(), ns.to_string());
            }
        }
    }

    let user_claim = claims.iter().find(|c| c.ns == "USER").cloned();
    let claim_for = |path: &str| -> Option<&Claim> {
        let ns = file_ns.iter().find(|(p, _)| path.ends_with(p.as_str()))?.1;
        claims.iter().find(|c| &c.ns == ns)
    };

    // 4. Tag-typed constants stay inside their module's claim.
    for file in &ws.files {
        if file.path == registry.path || crate::is_test_path(&file.path) {
            continue;
        }
        let claim = claim_for(&file.path);
        for c in &file.ast.consts {
            if c.in_test || !c.ty.iter().any(|t| t == "Tag") {
                continue;
            }
            let Some(v) = eval(&c.value, &env) else { continue };
            if Some(v) == death {
                continue;
            }
            if file.allowed(c.line, RULE) {
                continue;
            }
            match claim {
                Some(cl) => {
                    if !(cl.base <= v && v < cl.limit) {
                        findings.push(Finding {
                            path: file.path.clone(),
                            line: c.line,
                            rule: RULE,
                            message: format!(
                                "tag `{}` = {v:#x} is outside this module's claimed `{}` \
                                 namespace ({:#x}..{:#x})",
                                c.name, cl.ns, cl.base, cl.limit
                            ),
                        });
                    }
                }
                None => {
                    // Unclaimed module: only USER-range tags allowed.
                    if let Some(hit) =
                        claims.iter().find(|cl| cl.ns != "USER" && cl.base <= v && v < cl.limit)
                    {
                        findings.push(Finding {
                            path: file.path.clone(),
                            line: c.line,
                            rule: RULE,
                            message: format!(
                                "tag `{}` = {v:#x} lands in the `{}` namespace claimed by \
                                 another module; claim a range in {REGISTRY} or use a USER tag",
                                c.name, hit.ns
                            ),
                        });
                    } else if let Some(u) = &user_claim {
                        if !(u.base <= v && v < u.limit) {
                            findings.push(Finding {
                                path: file.path.clone(),
                                line: c.line,
                                rule: RULE,
                                message: format!(
                                    "tag `{}` = {v:#x} is outside the USER range and unclaimed; \
                                     claim a namespace in {REGISTRY}",
                                    c.name
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // 5. Constant-valued tag arguments at send sites.
    for file in ws.crate_files(SEND_CRATES) {
        if crate::is_test_path(&file.path) || file.path == registry.path {
            continue;
        }
        let claim = claim_for(&file.path).or(user_claim.as_ref());
        let Some(claim) = claim else { continue };
        for f in &file.ast.fns {
            if f.in_test {
                continue;
            }
            check_send_sites(&f.body, file, claim, death, &env, &mut findings);
        }
    }

    findings
}

fn reg_finding(registry: &SourceFile, line: usize, msg: &str) -> Finding {
    Finding { path: registry.path.clone(), line, rule: RULE, message: msg.to_string() }
}

/// Recursively find `.send(dest, TAG, …)`-family calls whose tag argument
/// is a constant expression, and check it against `claim`.
fn check_send_sites(
    trees: &[Tree],
    file: &SourceFile,
    claim: &Claim,
    death: Option<u64>,
    env: &BTreeMap<String, u64>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Group { items, .. } = &trees[i] {
            check_send_sites(items, file, claim, death, env, findings);
            i += 1;
            continue;
        }
        if trees[i].is_punct(".") {
            let method = trees.get(i + 1).and_then(|t| t.ident());
            if let (Some(m), Some(Tree::Group { delim: '(', line, items })) =
                (method, trees.get(i + 2))
            {
                if matches!(m, "send" | "recv" | "send_bytes" | "recv_bytes") {
                    let args = split_top_commas(items);
                    if args.len() >= 2 {
                        if let Some(v) = eval(args[1], env) {
                            let ok = (claim.base <= v && v < claim.limit)
                                || Some(v) == death
                                || file.allowed(*line, RULE);
                            if !ok {
                                findings.push(Finding {
                                    path: file.path.clone(),
                                    line: *line,
                                    rule: RULE,
                                    message: format!(
                                        "`.{m}(…)` tag {v:#x} is outside this module's `{}` \
                                         namespace ({:#x}..{:#x}); allocate the tag in {REGISTRY}",
                                        claim.ns, claim.base, claim.limit
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Split a group's items on top-level commas.
fn split_top_commas(items: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in items.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&items[start..i]);
            start = i + 1;
        }
    }
    out.push(&items[start..]);
    out
}

// --- constant environment ----------------------------------------------------

/// Evaluate every integer-valued constant in the workspace to fixpoint, so
/// constants can reference each other across files.
fn build_env(ws: &Workspace) -> BTreeMap<String, u64> {
    let mut env = BTreeMap::new();
    let consts: Vec<_> =
        ws.files.iter().flat_map(|f| f.ast.consts.iter()).filter(|c| !c.in_test).collect();
    loop {
        let mut progressed = false;
        for c in &consts {
            if env.contains_key(&c.name) {
                continue;
            }
            if let Some(v) = eval(&c.value, &env) {
                env.insert(c.name.clone(), v);
                progressed = true;
            }
        }
        if !progressed {
            return env;
        }
    }
}

// --- const-expression evaluator ----------------------------------------------

/// Evaluate a constant expression over token trees to a `u64`.
///
/// Grammar (loosest binding first): `|`, `^`, `&`, `<< >>`, `+ -`, `* / %`,
/// unary `- !`, atoms (integer literals, parenthesized groups, `u64::MAX`,
/// `<ident>` / `<path>::<ident>` resolved through `env`). `as <ty>` casts
/// are ignored (tags are u64 end to end). Anything else → `None`.
pub fn eval(trees: &[Tree], env: &BTreeMap<String, u64>) -> Option<u64> {
    let mut pos = 0;
    let v = parse_bin(trees, &mut pos, 0, env)?;
    // Trailing unconsumed tokens (other than a cast) mean we did not
    // understand the expression: refuse rather than misjudge.
    skip_cast(trees, &mut pos);
    (pos == trees.len()).then_some(v)
}

/// Binary-operator precedence tiers, loosest first.
const TIERS: &[&[&str]] = &[&["|"], &["^"], &["&"], &["<<", ">>"], &["+", "-"], &["*", "/", "%"]];

fn parse_bin(
    trees: &[Tree],
    pos: &mut usize,
    tier: usize,
    env: &BTreeMap<String, u64>,
) -> Option<u64> {
    if tier >= TIERS.len() {
        return parse_atom(trees, pos, env);
    }
    let mut lhs = parse_bin(trees, pos, tier + 1, env)?;
    loop {
        skip_cast(trees, pos);
        let Some(op) =
            trees.get(*pos).and_then(|t| TIERS[tier].iter().find(|o| t.is_punct(o)).copied())
        else {
            return Some(lhs);
        };
        *pos += 1;
        let rhs = parse_bin(trees, pos, tier + 1, env)?;
        lhs = match op {
            "|" => lhs | rhs,
            "^" => lhs ^ rhs,
            "&" => lhs & rhs,
            "<<" => lhs.checked_shl(rhs.try_into().ok()?)?,
            ">>" => lhs.checked_shr(rhs.try_into().ok()?)?,
            "+" => lhs.checked_add(rhs)?,
            "-" => lhs.checked_sub(rhs)?,
            "*" => lhs.checked_mul(rhs)?,
            "/" => lhs.checked_div(rhs)?,
            "%" => lhs.checked_rem(rhs)?,
            _ => return None,
        };
    }
}

fn parse_atom(trees: &[Tree], pos: &mut usize, env: &BTreeMap<String, u64>) -> Option<u64> {
    match trees.get(*pos)? {
        Tree::Group { delim: '(', items, .. } => {
            *pos += 1;
            eval(items, env)
        }
        Tree::Leaf(t) => match &t.kind {
            Tok::Int(v) => {
                *pos += 1;
                u64::try_from(*v).ok()
            }
            Tok::Punct("!") => {
                *pos += 1;
                Some(!parse_atom(trees, pos, env)?)
            }
            Tok::Ident(_) => {
                // Path: `a::b::NAME` — resolve the final segment.
                let mut name = t.ident()?;
                *pos += 1;
                while trees.get(*pos).is_some_and(|t| t.is_punct("::")) {
                    name = trees.get(*pos + 1)?.ident()?;
                    *pos += 2;
                }
                if name == "MAX" {
                    return Some(u64::MAX);
                }
                if name == "MIN" {
                    return Some(0);
                }
                env.get(name).copied()
            }
            _ => None,
        },
        _ => None,
    }
}

/// Skip a trailing `as <type>` cast.
fn skip_cast(trees: &[Tree], pos: &mut usize) {
    while trees.get(*pos).is_some_and(|t| t.ident() == Some("as")) {
        *pos += 1;
        if trees.get(*pos).is_some_and(|t| t.ident().is_some()) {
            *pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn eval_src(expr: &str, env: &[(&str, u64)]) -> Option<u64> {
        let ast = parse_file(&format!("const X: u64 = {expr};"));
        let env: BTreeMap<String, u64> = env.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        eval(&ast.consts[0].value, &env)
    }

    #[test]
    fn evaluator_handles_tag_math() {
        assert_eq!(eval_src("1 << 40", &[]), Some(1 << 40));
        assert_eq!(eval_src("(1 << 32) | 2", &[]), Some((1u64 << 32) | 2));
        assert_eq!(eval_src("u64::MAX", &[]), Some(u64::MAX));
        assert_eq!(eval_src("BASE | 1", &[("BASE", 1 << 40)]), Some((1u64 << 40) | 1));
        assert_eq!(eval_src("0x10 + 2 * 3", &[]), Some(22));
        assert_eq!(eval_src("1u64 << 48", &[]), Some(1 << 48));
        assert_eq!(eval_src("BASE as u64", &[("BASE", 7)]), Some(7));
        assert_eq!(eval_src("unknown_fn()", &[]), None);
        assert_eq!(eval_src("x + 1", &[]), None);
    }

    const REGISTRY_OK: &str = "\
        pub type Tag = u64;\n\
        // lint:claim(USER) = -\n\
        // lint:claim(STREAM) = comm/src/stream.rs\n\
        // lint:claim(FT_PING) = ft/src/detect.rs\n\
        pub const USER_BASE: Tag = 0;\n\
        pub const USER_LIMIT: Tag = 1 << 32;\n\
        pub const FT_PING_BASE: Tag = 1 << 32;\n\
        pub const FT_PING_LIMIT: Tag = 1 << 33;\n\
        pub const STREAM_BASE: Tag = 1 << 40;\n\
        pub const STREAM_LIMIT: Tag = 1 << 41;\n\
        pub const DEATH_TAG: Tag = u64::MAX;\n";

    #[test]
    fn disjoint_claims_pass_overlap_fails() {
        let ws = Workspace::from_sources(&[("crates/comm/src/tags.rs", REGISTRY_OK)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));

        let overlapping = REGISTRY_OK.replace("1 << 33", "1 << 41");
        let ws = Workspace::from_sources(&[("crates/comm/src/tags.rs", &overlapping)]);
        assert!(check(&ws).iter().any(|f| f.message.contains("overlap")));
    }

    #[test]
    fn module_tags_must_stay_in_claim() {
        let stream_ok = "use crate::tags::{Tag, STREAM_BASE};\n\
                         const DATA_TAG: Tag = STREAM_BASE | 1;\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/comm/src/stream.rs", stream_ok),
        ]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));

        let stream_bad = "const DATA_TAG: Tag = 1 << 48;\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/comm/src/stream.rs", stream_bad),
        ]);
        assert!(check(&ws).iter().any(|f| f.message.contains("outside this module")));
    }

    #[test]
    fn unclaimed_module_cannot_squat_a_namespace() {
        let squatter = "const MY_TAG: Tag = (1 << 40) | 7;\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/serve/src/driver.rs", squatter),
        ]);
        assert!(check(&ws).iter().any(|f| f.message.contains("claimed by another module")));
    }

    #[test]
    fn literal_send_tags_are_checked() {
        let bad = "fn f(c: &mut C) { c.send(1, (1u64 << 40) | 3, &x); }\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/serve/src/driver.rs", bad),
        ]);
        assert!(
            check(&ws).iter().any(|f| f.message.contains("outside this module")),
            "{:?}",
            check(&ws)
        );

        let good = "fn f(c: &mut C) { c.send(1, 7, &x); }\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/serve/src/driver.rs", good),
        ]);
        assert!(check(&ws).is_empty());

        // Non-constant tags are not judged.
        let dynamic = "fn f(c: &mut C, tag: Tag) { c.send(1, tag, &x); }\n";
        let ws = Workspace::from_sources(&[
            ("crates/comm/src/tags.rs", REGISTRY_OK),
            ("crates/serve/src/driver.rs", dynamic),
        ]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn death_tag_inside_a_range_fails() {
        let swallowing = REGISTRY_OK.replace(
            "pub const STREAM_LIMIT: Tag = 1 << 41;",
            "pub const STREAM_LIMIT: Tag = u64::MAX;",
        );
        // DEATH_TAG = MAX is not < MAX, so that exact registry is fine; move
        // DEATH inside the stream range instead.
        let swallowed = swallowing.replace(
            "pub const DEATH_TAG: Tag = u64::MAX;",
            "pub const DEATH_TAG: Tag = (1 << 40) | 9;",
        );
        let ws = Workspace::from_sources(&[("crates/comm/src/tags.rs", &swallowed)]);
        assert!(check(&ws).iter().any(|f| f.message.contains("swallows DEATH_TAG")));
    }
}
