//! A minimal Rust lexer: source text → a flat token stream with line
//! numbers.
//!
//! This is the foundation the analyses build on and the reason they are
//! immune to the false positives/negatives of the line-oriented text
//! scanner in `xtask`: comments and string literals are *lexed away* here,
//! so a `.unwrap()` inside a doc example or an error-message string can
//! never fire a rule, and a statement split across lines can never hide
//! from one.
//!
//! Scope: enough of the Rust lexical grammar to tokenize this workspace —
//! line/block comments (nested), string/raw-string/byte-string/char
//! literals, lifetimes, integer/float literals with separators and
//! suffixes, raw identifiers, and the multi-character operators the
//! analyses care about (`::`, `<<`, `..`, `->`, …). It does not interpret
//! — escape sequences inside literals are skipped, not decoded.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `self`, `Mutex`, …).
    Ident(String),
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal with its parsed value (suffix/underscores stripped;
    /// values beyond `u128` saturate — irrelevant for `u64` tag math).
    Int(u128),
    /// Float literal.
    Float,
    /// String, raw-string, byte-string, or C-string literal.
    Str,
    /// Char or byte literal.
    Char,
    /// Punctuation/operator, multi-character where it matters (`::`, `<<`).
    Punct(&'static str),
    /// Opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]`, or `}`.
    Close(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, Tok::Punct(q) if *q == p)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "<<", ">>", "&&", "||", "==", "!=", "<=",
    ">=", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=",
];

/// Lex `src` into tokens. Unterminated literals and comments are tolerated
/// (the remainder of the file is consumed); the analyses prefer a best-effort
/// token stream over refusing to look at a file.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): skip to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nesting per the Rust grammar.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i = skip_string(&chars, i, &mut line);
                out.push(Token { kind: Tok::Str, line: start_line });
            }
            '\'' => {
                // Lifetime vs char literal. A backslash or a closing quote
                // two chars ahead means char; otherwise lifetime.
                let start_line = line;
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.push(Token { kind: Tok::Char, line: start_line });
                } else if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                    out.push(Token { kind: Tok::Char, line: start_line });
                } else {
                    // Lifetime: consume ident chars.
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token { kind: Tok::Lifetime, line: start_line });
                }
            }
            'r' | 'b' | 'c' if is_literal_prefix(&chars, i) => {
                let start_line = line;
                let (next, kind) = skip_prefixed_literal(&chars, i, &mut line);
                i = next;
                out.push(Token { kind, line: start_line });
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                let (next, kind) = lex_number(&chars, i);
                i = next;
                out.push(Token { kind, line: start_line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                out.push(Token { kind: Tok::Ident(s), line });
            }
            '(' | '[' | '{' => {
                out.push(Token { kind: Tok::Open(c), line });
                i += 1;
            }
            ')' | ']' | '}' => {
                out.push(Token { kind: Tok::Close(c), line });
                i += 1;
            }
            _ => {
                let mut matched = None;
                for op in OPERATORS {
                    if src_matches(&chars, i, op) {
                        matched = Some(*op);
                        break;
                    }
                }
                if let Some(op) = matched {
                    out.push(Token { kind: Tok::Punct(op), line });
                    i += op.len();
                } else {
                    out.push(Token { kind: Tok::Punct(single_punct(c)), line });
                    i += 1;
                }
            }
        }
    }
    out
}

/// `true` if position `i` starts a prefixed literal (`r"`, `r#"`, `b"`,
/// `b'`, `br"`, `c"`, raw ident `r#ident` is handled too).
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    let c = chars[i];
    match c {
        'r' => matches!(chars.get(i + 1), Some('"') | Some('#')),
        'b' => matches!(chars.get(i + 1), Some('"') | Some('\'') | Some('r')),
        'c' => matches!(chars.get(i + 1), Some('"')),
        _ => false,
    }
}

/// Skip a prefixed literal starting at `i`; returns (next index, token kind).
fn skip_prefixed_literal(chars: &[char], mut i: usize, line: &mut usize) -> (usize, Tok) {
    let c = chars[i];
    if c == 'r' && chars.get(i + 1) == Some(&'#') {
        // Either a raw string `r#"…"#` or a raw identifier `r#ident`.
        if chars.get(i + 2).is_some_and(|c| c.is_alphabetic() || *c == '_') {
            i += 2;
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let s: String = chars[start..i].iter().collect();
            return (i, Tok::Ident(s));
        }
        return (skip_raw_string(chars, i + 1, line), Tok::Str);
    }
    if c == 'b' && chars.get(i + 1) == Some(&'r') {
        return (skip_raw_string(chars, i + 2, line), Tok::Str);
    }
    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
        // Byte literal b'x' / b'\n'.
        i += 2;
        if chars.get(i) == Some(&'\\') {
            i += 1;
        }
        while i < chars.len() && chars[i] != '\'' {
            i += 1;
        }
        return (i + 1, Tok::Char);
    }
    // r"…", b"…", c"…": ordinary (escaped for b/c) string after the prefix.
    if c == 'r' {
        return (skip_raw_string(chars, i + 1, line), Tok::Str);
    }
    (skip_string(chars, i + 1, line), Tok::Str)
}

/// Skip a raw string whose `#…"` sequence starts at `i`; returns index past
/// the closing quote+hashes.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        }
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip an escaped string whose opening quote is at `i`; returns index past
/// the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Lex a numeric literal at `i`; returns (next index, Int/Float token).
fn lex_number(chars: &[char], mut i: usize) -> (usize, Tok) {
    let radix: u32 = if chars[i] == '0' {
        match chars.get(i + 1) {
            Some('x') | Some('X') => 16,
            Some('o') | Some('O') => 8,
            Some('b') | Some('B') => 2,
            _ => 10,
        }
    } else {
        10
    };
    if radix != 10 {
        i += 2;
    }
    // Value digits (underscores skipped); stop at the first char invalid in
    // this radix — anything after is a float marker or a type suffix.
    let mut val: u128 = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '_' {
            i += 1;
        } else if let Some(d) = c.to_digit(radix) {
            val = val.saturating_mul(radix as u128).saturating_add(d as u128);
            i += 1;
        } else {
            break;
        }
    }
    let mut is_float = false;
    // Fractional part: `.` followed by a digit (`1..5` is a range, `1.max()`
    // a method call).
    if radix == 10
        && chars.get(i) == Some(&'.')
        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
    {
        is_float = true;
        i += 1;
        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
    }
    // Exponent.
    if radix == 10
        && matches!(chars.get(i), Some('e') | Some('E'))
        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit() || *d == '+' || *d == '-')
    {
        is_float = true;
        i += 2;
        while i < chars.len() && chars[i].is_ascii_digit() {
            i += 1;
        }
    }
    // Type suffix (`u64`, `usize`, `f32`, …) — does not change the value.
    if chars.get(i).is_some_and(|c| c.is_alphabetic()) {
        if chars[i] == 'f' {
            is_float = true;
        }
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    if is_float {
        (i, Tok::Float)
    } else {
        (i, Tok::Int(val))
    }
}

fn src_matches(chars: &[char], i: usize, pat: &str) -> bool {
    pat.chars().enumerate().all(|(k, p)| chars.get(i + k) == Some(&p))
}

/// Intern single-character punctuation as static strings.
fn single_punct(c: char) -> &'static str {
    match c {
        '.' => ".",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '!' => "!",
        '?' => "?",
        '#' => "#",
        '@' => "@",
        '$' => "$",
        '~' => "~",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_and_strings_vanish() {
        let toks = kinds("// a.unwrap()\n/* b.unwrap() */ let s = \".unwrap()\";");
        assert!(toks.iter().all(|t| !matches!(t, Tok::Ident(s) if s == "unwrap")));
        assert!(toks.contains(&Tok::Str));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks, vec![Tok::Ident("x".into())]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("'a 'x' '\\n' 'static");
        assert_eq!(toks, vec![Tok::Lifetime, Tok::Char, Tok::Char, Tok::Lifetime]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"r#"quote " inside"# r#fn b"bytes" b'x'"##);
        assert_eq!(toks, vec![Tok::Str, Tok::Ident("fn".into()), Tok::Str, Tok::Char]);
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(kinds("1_000"), vec![Tok::Int(1000)]);
        assert_eq!(kinds("0xFF"), vec![Tok::Int(255)]);
        assert_eq!(kinds("1u64"), vec![Tok::Int(1)]);
        assert_eq!(kinds("1.5"), vec![Tok::Float]);
        assert_eq!(kinds("0..4"), vec![Tok::Int(0), Tok::Punct(".."), Tok::Int(4)],);
    }

    #[test]
    fn shift_operator_survives() {
        assert_eq!(kinds("1 << 40"), vec![Tok::Int(1), Tok::Punct("<<"), Tok::Int(40)],);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
