//! Panic-freedom audit for the distributed core.
//!
//! In non-test code of `comm`, `core`, `ft`, and `serve`, a panic is a
//! correctness bug: a worker that dies mid-collective wedges its peers
//! (the failure mode the PeerGone discipline exists to prevent), and the
//! serve tier must survive any one job's input. Error flow goes through
//! `SmartError`/`CommError`; this analysis denies everything that can
//! panic instead:
//!
//! * `.unwrap()` / `.expect(…)` / `.unwrap_err()` / `.expect_err(…)`
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * slice/array indexing `x[i]` and bounded slicing `x[a..b]`
//!
//! `assert!`/`debug_assert!` are allowed — an assert names an invariant
//! and is the *sanctioned* way to state one.
//!
//! A site is accepted when it carries a justification: a `// PANIC-FREE:
//! <why this cannot fire>` comment on the same line or the line above, or
//! a `lint:allow(panic-free)` suppression. For **indexing only**, a
//! `// PANIC-FREE:` comment in the run directly above the enclosing `fn`
//! justifies every index in that function — index-heavy loops (the serve
//! driver's fan-out tables) state their bounds invariant once instead of
//! 30 times.
//!
//! Two index shapes are recognized as panic-free without justification:
//! the full-range slice `x[..]`, and `x[i]` where `i` is the variable of
//! an enclosing `for i in 0..<something>.len()` loop.

use crate::ast::{FnItem, Tree};
use crate::{Finding, SourceFile, Workspace};
use std::collections::BTreeSet;

/// Crates held to the panic-free standard. `pool` is excluded: it is the
/// local substrate (a panicking worker thread there is caught by the
/// latch/teardown path), and `wire`/`bench`/`sync` are not distributed.
pub const PANIC_FREE_CRATES: &[&str] = &["comm", "core", "ft", "serve", "spill"];

const RULE: &str = "panic-free";
const JUSTIFY: &str = "PANIC-FREE:";

/// Panicking method names (exact idents, so `unwrap_or_else` never matches).
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panicking macro names.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` group without it being an
/// index expression (array literals in type/pattern/expression position).
const NON_INDEX_PREV: &[&str] = &[
    "mut", "ref", "let", "in", "as", "box", "dyn", "move", "return", "break", "continue", "else",
    "impl", "fn", "where", "unsafe", "const", "static", "pub", "crate", "super", "yield", "become",
    "if", "while", "match",
];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.crate_files(PANIC_FREE_CRATES) {
        if crate::is_test_path(&file.path) {
            continue;
        }
        for f in &file.ast.fns {
            if f.in_test {
                continue;
            }
            let mut loop_vars = BTreeSet::new();
            collect_len_bounded_loop_vars(&f.body, &mut loop_vars);
            let fn_justifies_indexing = file.comment_run_above_has(f.doc_start_line, JUSTIFY);
            scan(&f.body, file, f, &loop_vars, fn_justifies_indexing, &mut findings);
        }
    }
    findings
}

/// Loop variables of `for v in 0..<expr>.len() { … }` (the range end must
/// mention `.len` before the loop body opens): indexing with such a
/// variable into the measured collection cannot overrun.
fn collect_len_bounded_loop_vars(trees: &[Tree], out: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Group { items, .. } = &trees[i] {
            collect_len_bounded_loop_vars(items, out);
            i += 1;
            continue;
        }
        if trees[i].ident() == Some("for") {
            // `for v in 0 .. … len ( ) { … }`
            let var = trees.get(i + 1).and_then(|t| t.ident());
            let has_in = trees.get(i + 2).is_some_and(|t| t.ident() == Some("in"));
            let zero = matches!(
                trees.get(i + 3),
                Some(Tree::Leaf(t)) if matches!(t.kind, crate::lexer::Tok::Int(0))
            );
            let dots = trees.get(i + 4).is_some_and(|t| t.is_punct(".."));
            if let (Some(var), true, true, true) = (var, has_in, zero, dots) {
                let mut j = i + 5;
                let mut saw_len = false;
                while j < trees.len() && !trees[j].is_group('{') {
                    if trees[j].ident() == Some("len") {
                        saw_len = true;
                    }
                    j += 1;
                }
                if saw_len {
                    out.insert(var.to_string());
                }
            }
        }
        i += 1;
    }
}

/// Walk one tree level; recurse into groups.
fn scan(
    trees: &[Tree],
    file: &SourceFile,
    f: &FnItem,
    loop_vars: &BTreeSet<String>,
    fn_justifies_indexing: bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group { delim, line, items } => {
                // Index expression? The `[` group must follow an expression
                // tail: an identifier (not a keyword) or a close-delimited
                // group (`foo()[i]`, `x[i][j]`).
                if *delim == '['
                    && is_index_position(trees, i)
                    && !index_is_safe(items, loop_vars)
                    && !site_justified(file, *line)
                    && !fn_justifies_indexing
                {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: *line,
                        rule: RULE,
                        message: format!(
                            "indexing can panic in `{}`; use `.get(…)`, prove the bound \
                             (`for i in 0..xs.len()`), or justify with `// PANIC-FREE:` \
                             (site or fn level)",
                            f.name
                        ),
                    });
                }
                scan(items, file, f, loop_vars, fn_justifies_indexing, findings);
                i += 1;
            }
            Tree::Leaf(t) => {
                // `.unwrap()` family.
                if t.is_punct(".") {
                    if let Some(m) = trees.get(i + 1).and_then(|t| t.ident()) {
                        if PANIC_METHODS.contains(&m)
                            && trees.get(i + 2).is_some_and(|t| t.is_group('('))
                        {
                            let line = trees[i + 1].line();
                            if !site_justified(file, line) {
                                findings.push(Finding {
                                    path: file.path.clone(),
                                    line,
                                    rule: RULE,
                                    message: format!(
                                        "`.{m}()` can panic in `{}`; return a SmartError (`?`, \
                                         `ok_or`, `map_err`) or justify the invariant with \
                                         `// PANIC-FREE:`",
                                        f.name
                                    ),
                                });
                            }
                        }
                    }
                }
                // `panic!` family.
                if let Some(name) = t.ident() {
                    if PANIC_MACROS.contains(&name)
                        && trees.get(i + 1).is_some_and(|t| t.is_punct("!"))
                        && !site_justified(file, t.line)
                    {
                        findings.push(Finding {
                            path: file.path.clone(),
                            line: t.line,
                            rule: RULE,
                            message: format!(
                                "`{name}!` in `{}`; distributed-core code must return a \
                                 SmartError instead of panicking, or justify with \
                                 `// PANIC-FREE:`",
                                f.name
                            ),
                        });
                    }
                }
                i += 1;
            }
        }
    }
}

/// A `[` group at position `i` is an index expression (not an array
/// literal, slice pattern, attribute, or type).
fn is_index_position(trees: &[Tree], i: usize) -> bool {
    let Some(prev) = (i > 0).then(|| &trees[i - 1]) else {
        return false;
    };
    match prev {
        Tree::Group { delim, .. } => *delim == '(' || *delim == '[',
        Tree::Leaf(t) => match t.ident() {
            Some(id) => !NON_INDEX_PREV.contains(&id),
            // `#[attr]`, `vec![…]`, `= [literal]`, `&[T]`, `: [u8; N]` …
            None => false,
        },
    }
}

/// Index content provably in bounds: `[..]` (full range, never panics) or
/// a single len-bounded loop variable.
fn index_is_safe(items: &[Tree], loop_vars: &BTreeSet<String>) -> bool {
    if items.len() == 1 {
        if items[0].is_punct("..") {
            return true;
        }
        if let Some(v) = items[0].ident() {
            return loop_vars.contains(v);
        }
    }
    false
}

fn site_justified(file: &SourceFile, line: usize) -> bool {
    file.allowed(line, RULE)
        || file.line_has(line, JUSTIFY)
        || (line > 1 && file.line_has(line - 1, JUSTIFY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/comm/src/seeded.rs", src)]);
        check(&ws)
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let f = findings("fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Result<u32, E>) -> u32 { x.expect(\"boom\") }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(findings(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }"
        )
        .is_empty());
    }

    #[test]
    fn panic_macros_flagged_asserts_allowed() {
        let f = findings(
            "fn f() { panic!(\"no\"); }\nfn g(x: u8) { match x { 0 => {} _ => unreachable!() } }\nfn h(n: usize) { assert!(n > 0); debug_assert_eq!(n, n); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn justified_sites_pass() {
        assert!(findings(
            "fn f(x: Option<u32>) -> u32 {\n    // PANIC-FREE: x was checked is_some() above\n    x.unwrap()\n}",
        )
        .is_empty());
        assert!(findings("fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic-free)")
            .is_empty());
    }

    #[test]
    fn indexing_flagged_unless_proved() {
        let f = findings("fn f(v: &[u32], i: usize) -> u32 { v[i] }");
        assert_eq!(f.len(), 1, "{f:?}");
        // Full-range slice and len-bounded loop var are fine.
        assert!(findings("fn f(v: &[u32]) -> &[u32] { &v[..] }").is_empty());
        assert!(findings("fn f(v: &[u32]) { for i in 0..v.len() { touch(v[i]); } }").is_empty());
    }

    #[test]
    fn fn_level_justification_covers_indexing_only() {
        let src = "// PANIC-FREE: i/j always index tables sized in new()\nfn f(v: &[u32], i: usize, j: usize) -> u32 { v[i] + v[j] }";
        assert!(findings(src).is_empty());
        // …but does NOT cover unwrap (site must carry its own justification;
        // the fn body spans lines so the fn-level comment is not adjacent).
        let src2 = "// PANIC-FREE: tables sized in new()\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}";
        assert_eq!(findings(src2).len(), 1);
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        assert!(findings(
            "fn f() -> [u8; 4] { let a = [0u8; 4]; let b: [u8; 4] = [1, 2, 3, 4]; a }\n\
             fn g(v: &mut [u8]) {}\n",
        )
        .is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(findings(
            "fn f() -> &'static str { \"call .unwrap() and panic!\" }\n// x.unwrap()\n",
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(findings(
            "#[cfg(test)]\nmod tests { #[test] fn t() { foo().unwrap(); bar()[0]; } }",
        )
        .is_empty());
    }
}
