//! Token-level rules migrated from the `xtask` text scanner.
//!
//! Three of the original text rules were structurally fragile — a mention
//! in a doc comment or an error-message string could fire them, and a
//! line-split call could hide from them. They now run on the lexed,
//! test-pruned token stream instead, and the text versions are retired:
//!
//! * **no-direct-sync** — all lock/channel/thread primitives come from the
//!   `smart-sync` facade, so the loom build swaps every one of them for
//!   model-checked shims. Direct `std::sync`, `std::thread`,
//!   `parking_lot`, or `crossbeam` paths outside the facade would silently
//!   escape the model checker.
//! * **no-lock-unwrap** — no `.lock().unwrap()` / `.lock().expect(…)`:
//!   facade mutexes are not poisoning (parking_lot surface), so unwrapping
//!   a lock result means someone bypassed the facade or is cargo-culting
//!   std.
//! * **kernel-hot-loop** — no per-element heap allocation (`Vec::new`,
//!   `vec![…]`, `Box::new`, `.to_vec()`, `with_capacity`, `String::from`,
//!   `format!`, empty `.collect()`) and no `Instant::now` inside
//!   `fn reduce_batch*` bodies. These kernels run per batch of 4096 chunks
//!   in the reduce hot loop; an allocation there is a per-batch (often
//!   per-element) malloc the whole batching seam exists to avoid. Reusable
//!   buffers come from `BatchSink::take_scratch`/`restore_scratch`.
//!
//! The same `lint:allow(<rule>)` suppressions apply.

use crate::ast::{parse_trees, Tree};
use crate::{Finding, SourceFile, Workspace};

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::is_test_path(&file.path) {
            continue;
        }
        let pruned = pruned_trees(file);
        let in_facade = file.path.starts_with("crates/sync/");
        let sync_exempt = in_facade || file.path.starts_with("crates/memtrack/");
        if !sync_exempt {
            scan_direct_sync(&pruned, file, &mut findings);
        }
        if !in_facade {
            scan_lock_unwrap(&pruned, file, &mut findings);
        }
        for f in &file.ast.fns {
            if !f.in_test && f.name.starts_with("reduce_batch") {
                scan_kernel(&f.body, file, &mut findings);
            }
        }
    }
    findings
}

/// Re-parse the file and drop `#[cfg(test)]`/`#[test]` items, keeping
/// group structure (the item-level AST keeps only fn/const items; these
/// rules also need `use` declarations and impl headers).
fn pruned_trees(file: &SourceFile) -> Vec<Tree> {
    let src = file.lines.join("\n");
    prune(&parse_trees(&src))
}

fn prune(trees: &[Tree]) -> Vec<Tree> {
    let mut out = Vec::new();
    let mut i = 0;
    // An attribute marked the next item as test-only: skip its tokens up
    // to and including its body group (or a terminating `;`).
    let mut skipping = false;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) if t.is_punct("#") => {
                let mut j = i + 1;
                if trees.get(j).is_some_and(|t| t.is_punct("!")) {
                    j += 1;
                }
                if let Some(Tree::Group { delim: '[', items, .. }) = trees.get(j) {
                    let words = crate::ast::attr_words(items);
                    let cfg_test = words.first().map(String::as_str) == Some("cfg")
                        && words.iter().any(|w| w == "test")
                        && !words.iter().any(|w| w == "not");
                    if cfg_test || words.first().map(String::as_str) == Some("test") {
                        skipping = true;
                    }
                    i = j + 1;
                    continue;
                }
                out.push(trees[i].clone());
                i += 1;
            }
            Tree::Group { delim, line, items } => {
                if skipping {
                    skipping = false; // the skipped item's body
                } else {
                    out.push(Tree::Group { delim: *delim, line: *line, items: prune(items) });
                }
                i += 1;
            }
            Tree::Leaf(t) => {
                if skipping {
                    if t.is_punct(";") {
                        skipping = false; // `#[cfg(test)] use …;`
                    }
                } else {
                    out.push(trees[i].clone());
                }
                i += 1;
            }
        }
    }
    out
}

/// `std::sync` / `std::thread` paths and `parking_lot` / `crossbeam` roots.
fn scan_direct_sync(trees: &[Tree], file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Group { items, .. } = &trees[i] {
            scan_direct_sync(items, file, findings);
            i += 1;
            continue;
        }
        let hit = match trees[i].ident() {
            Some("std")
                if trees.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && matches!(
                        trees.get(i + 2).and_then(|t| t.ident()),
                        Some("sync") | Some("thread")
                    ) =>
            {
                Some(format!("std::{}", trees[i + 2].ident().unwrap_or_default()))
            }
            Some(root @ ("parking_lot" | "crossbeam")) => Some(root.to_string()),
            _ => None,
        };
        if let Some(pat) = hit {
            let line = trees[i].line();
            if !file.allowed(line, "no-direct-sync") {
                findings.push(Finding {
                    path: file.path.clone(),
                    line,
                    rule: "no-direct-sync",
                    message: format!(
                        "`{pat}` outside the smart-sync facade escapes loom model checking; \
                         import from `smart_sync` instead"
                    ),
                });
            }
        }
        i += 1;
    }
}

/// `.lock().unwrap()` / `.lock().expect(…)` chains (any line split).
fn scan_lock_unwrap(trees: &[Tree], file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Group { items, .. } = &trees[i] {
            scan_lock_unwrap(items, file, findings);
            i += 1;
            continue;
        }
        let chain = trees[i].is_punct(".")
            && trees.get(i + 1).is_some_and(|t| t.ident() == Some("lock"))
            && trees.get(i + 2).is_some_and(|t| t.is_group('('))
            && trees.get(i + 3).is_some_and(|t| t.is_punct("."))
            && matches!(trees.get(i + 4).and_then(|t| t.ident()), Some("unwrap") | Some("expect"))
            && trees.get(i + 5).is_some_and(|t| t.is_group('('));
        if chain {
            let line = trees[i + 4].line();
            if !file.allowed(line, "no-lock-unwrap")
                && !file.allowed(trees[i + 1].line(), "no-lock-unwrap")
            {
                findings.push(Finding {
                    path: file.path.clone(),
                    line,
                    rule: "no-lock-unwrap",
                    message: "facade mutexes do not poison; `.lock().unwrap()` means a std \
                              mutex bypassed the facade"
                        .to_string(),
                });
            }
        }
        i += 1;
    }
}

/// Allocation/measurement patterns inside a `reduce_batch*` body.
fn scan_kernel(trees: &[Tree], file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < trees.len() {
        let hit: Option<(&str, usize)> = kernel_pattern_at(trees, i);
        if let Some((pat, line)) = hit {
            if !file.allowed(line, "kernel-hot-loop") {
                findings.push(Finding {
                    path: file.path.clone(),
                    line,
                    rule: "kernel-hot-loop",
                    message: format!(
                        "`{pat}` inside a reduce_batch kernel body allocates (or measures) per \
                         batch in the reduce hot loop; reuse `BatchSink::take_scratch` or hoist \
                         out of the kernel"
                    ),
                });
            }
        }
        if let Tree::Group { items, .. } = &trees[i] {
            scan_kernel(items, file, findings);
        }
        i += 1;
    }
}

/// Match one forbidden kernel pattern starting at `i`.
fn kernel_pattern_at(trees: &[Tree], i: usize) -> Option<(&'static str, usize)> {
    let ident = |k: usize| trees.get(i + k).and_then(|t| t.ident());
    let punct = |k: usize, p: &str| trees.get(i + k).is_some_and(|t| t.is_punct(p));
    let group = |k: usize, d: char| trees.get(i + k).is_some_and(|t| t.is_group(d));
    let line = trees[i].line();

    // `Path::method(` forms.
    for (root, method, pat) in [
        ("Vec", "new", "Vec::new("),
        ("Box", "new", "Box::new("),
        ("String", "from", "String::from("),
        ("Instant", "now", "Instant::now("),
    ] {
        if ident(0) == Some(root) && punct(1, "::") && ident(2) == Some(method) && group(3, '(') {
            return Some((pat, line));
        }
    }
    // Macros.
    if ident(0) == Some("vec") && punct(1, "!") {
        return Some(("vec![", line));
    }
    if ident(0) == Some("format") && punct(1, "!") {
        return Some(("format!(", line));
    }
    // `with_capacity(` — any receiver.
    if ident(0) == Some("with_capacity") && group(1, '(') {
        return Some(("with_capacity(", line));
    }
    // `.to_vec()` and empty `.collect()`.
    if punct(0, ".") && group(2, '(') {
        if ident(1) == Some("to_vec") {
            return Some((".to_vec()", trees[i + 1].line()));
        }
        if ident(1) == Some("collect") {
            if let Some(Tree::Group { items, .. }) = trees.get(i + 2) {
                if items.is_empty() {
                    return Some((".collect()", trees[i + 1].line()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        check(&Workspace::from_sources(&[(path, src)]))
    }

    #[test]
    fn direct_sync_fires_outside_facade_only() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }";
        assert_eq!(findings_for("crates/core/src/x.rs", src).len(), 2);
        assert!(findings_for("crates/sync/src/x.rs", src).is_empty());
        assert!(findings_for("crates/core/tests/x.rs", src).is_empty());
        // Doc-comment and string mentions are invisible post-lex.
        assert!(findings_for(
            "crates/core/src/x.rs",
            "//! Never use `std::sync` here.\nfn f() { let s = \"std::thread\"; }",
        )
        .is_empty());
        // Structural test regions are exempt; `cfg(not(test))` is not a test.
        assert!(findings_for(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; }",
        )
        .is_empty());
        assert_eq!(
            findings_for(
                "crates/core/src/x.rs",
                "#[cfg(not(test))]\nmod m { use std::sync::Mutex; }",
            )
            .len(),
            1
        );
    }

    #[test]
    fn lock_unwrap_fires_across_lines() {
        let split = "fn f() { let g = m\n    .lock()\n    .unwrap(); }";
        let f = findings_for("crates/core/src/x.rs", split);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-lock-unwrap");
        assert!(findings_for(
            "crates/core/src/x.rs",
            "fn f() { let g = m.lock(); } // plain facade lock",
        )
        .is_empty());
    }

    #[test]
    fn kernel_rule_scopes_to_reduce_batch_bodies() {
        assert_eq!(
            findings_for(
                "crates/analytics/src/x.rs",
                "fn reduce_batch(&self) { let v = Vec::new(); }",
            )
            .len(),
            1
        );
        assert!(findings_for(
            "crates/analytics/src/x.rs",
            "fn other() { let v = Vec::new(); }\nfn reduce_batch(&self) { x(); }",
        )
        .is_empty());
        assert_eq!(
            findings_for(
                "crates/analytics/src/x.rs",
                "unsafe fn reduce_batch_avx2(&self) { if x { let s = format!(\"x\"); } }",
            )
            .len(),
            1
        );
        // A `Vec::new()` in a *string* inside the kernel no longer fires
        // (text-scanner false positive class).
        assert!(findings_for(
            "crates/analytics/src/x.rs",
            "fn reduce_batch(&self) { let s = \"Vec::new()\"; }",
        )
        .is_empty());
    }

    #[test]
    fn suppressions_still_work() {
        assert!(findings_for(
            "crates/core/src/x.rs",
            "// lint:allow(no-direct-sync): allocator hook\nuse std::sync::Mutex;",
        )
        .is_empty());
        assert!(findings_for(
            "crates/analytics/src/x.rs",
            "fn reduce_batch(&self) {\n    // lint:allow(kernel-hot-loop): one-time setup\n    let v = Vec::new();\n}",
        )
        .is_empty());
    }
}
