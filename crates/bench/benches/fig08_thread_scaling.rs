//! Criterion bench for Fig. 8: the two thread-scaling cost classes on
//! Lulesh output — a light app (histogram) whose combination/sync share is
//! large, and a heavy window app (moving median) whose reduction dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use smart_analytics::{Histogram, MovingMedian};
use smart_core::{SchedArgs, Scheduler};
use smart_sim::MiniLulesh;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_thread_scaling");
    group.sample_size(10);

    let mut sim = MiniLulesh::serial(16, 0.3);
    for _ in 0..3 {
        sim.step_serial();
    }
    let data = sim.output().to_vec();
    let (min, max) =
        data.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));

    // kernel vs scalar: the batched (SIMD-capable) reduce against the
    // classic per-chunk walk — Fig. 8's hot-loop speedup.
    for (variant, scalar) in [("kernel", false), ("scalar", true)] {
        group.bench_function(format!("light_histogram_step_{variant}"), |b| {
            let pool = smart_pool::shared_pool(1).unwrap();
            let mut s =
                Scheduler::new(Histogram::new(min, max + 1e-9, 1200), SchedArgs::new(1, 1), pool)
                    .unwrap();
            s.set_scalar_reduce(scalar);
            let mut out = vec![0u64; 1200];
            b.iter(|| s.run(&data, &mut out).unwrap());
        });
    }

    group.bench_function("heavy_moving_median_step", |b| {
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s =
            Scheduler::new(MovingMedian::new(25, data.len()), SchedArgs::new(1, 1), pool).unwrap();
        let mut out = vec![0.0f64; data.len()];
        b.iter(|| {
            s.reset();
            s.run2(&data, &mut out).unwrap()
        });
    });

    group.bench_function("lulesh_step", |b| {
        let mut sim = MiniLulesh::serial(16, 0.3);
        b.iter(|| {
            sim.step_serial();
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
