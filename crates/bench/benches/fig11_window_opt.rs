//! Criterion bench for Fig. 11: window analytics with early emission vs
//! the same job with the trigger disabled (O(window) vs O(input) live
//! reduction objects).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smart_analytics::{MovingAverage, MovingMedian};
use smart_core::{SchedArgs, Scheduler};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_window_opt");
    group.sample_size(10);

    let data: Vec<f64> = (0..50_000).map(|i| ((i * 31) % 101) as f64).collect();

    for disabled in [false, true] {
        let label = if disabled { "no_trigger" } else { "with_trigger" };
        group.bench_with_input(
            BenchmarkId::new("moving_average_w7", label),
            &disabled,
            |b, &disabled| {
                let pool = smart_pool::shared_pool(1).unwrap();
                let mut s = Scheduler::new(
                    MovingAverage::new(7, data.len()),
                    SchedArgs::new(1, 1).with_trigger_disabled(disabled),
                    pool,
                )
                .unwrap();
                let mut out = vec![0.0f64; data.len()];
                b.iter(|| {
                    s.reset();
                    s.run2(&data, &mut out).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("moving_median_w11", label),
            &disabled,
            |b, &disabled| {
                let pool = smart_pool::shared_pool(1).unwrap();
                let mut s = Scheduler::new(
                    MovingMedian::new(11, data.len()),
                    SchedArgs::new(1, 1).with_trigger_disabled(disabled),
                    pool,
                )
                .unwrap();
                let mut out = vec![0.0f64; data.len()];
                b.iter(|| {
                    s.reset();
                    s.run2(&data, &mut out).unwrap()
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
