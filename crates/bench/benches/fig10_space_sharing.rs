//! Criterion bench for Fig. 10: a real time-sharing step (simulate, then
//! analyze, same thread) vs a real space-sharing pipeline step (producer
//! feeds the circular buffer, consumer drains it).

use criterion::{criterion_group, criterion_main, Criterion};
use smart_analytics::Histogram;
use smart_core::space::SpaceShared;
use smart_core::{SchedArgs, Scheduler};
use smart_sim::MiniLulesh;

fn scheduler() -> Scheduler<Histogram> {
    let pool = smart_pool::shared_pool(1).unwrap();
    Scheduler::new(Histogram::new(0.0, 10.0, 1200), SchedArgs::new(1, 1), pool).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_space_sharing");
    group.sample_size(10);

    group.bench_function("time_sharing_step", |b| {
        let mut sim = MiniLulesh::serial(12, 0.3);
        let mut smart = scheduler();
        let mut out = vec![0u64; 1200];
        b.iter(|| {
            let data = sim.step_serial();
            smart.run(data, &mut out).unwrap();
        });
    });

    group.bench_function("space_sharing_step", |b| {
        let mut sim = MiniLulesh::serial(12, 0.3);
        let mut shared = SpaceShared::new(scheduler(), 4);
        let feeder = shared.feeder();
        let mut out = vec![0u64; 1200];
        b.iter(|| {
            // Producer and consumer halves of one pipelined step.
            feeder.feed(sim.step_serial()).unwrap();
            shared.run_step(&mut out).unwrap();
        });
    });

    group.bench_function("simulation_only_step", |b| {
        let mut sim = MiniLulesh::serial(12, 0.3);
        b.iter(|| {
            sim.step_serial();
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
