//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the custom open-addressing `RedMap` vs `std::collections::HashMap`
//!   in the reduce hot loop (the Rust Performance Book's hashing advice);
//! * the early-emission trigger vs routing everything through the
//!   combination map (Algorithm 2's reason to exist);
//! * the `smart-wire` codec vs per-entry messaging for global combination
//!   (why combination maps ship as one serialized block).

use criterion::{criterion_group, criterion_main, Criterion};
use smart_core::RedMap;
use std::collections::HashMap;

fn bench_redmap_vs_std(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_redmap");
    group.sample_size(20);

    // The reduce-loop access pattern: dense small-int keys, upsert-heavy.
    let keys: Vec<i64> = (0..100_000).map(|i| (i * 7) % 1200).collect();

    group.bench_function("redmap_upsert", |b| {
        b.iter(|| {
            let mut m: RedMap<u64> = RedMap::new();
            for &k in &keys {
                *m.slot_mut(k).get_or_insert(0) += 1;
            }
            m.len()
        });
    });

    group.bench_function("std_hashmap_upsert", |b| {
        b.iter(|| {
            let mut m: HashMap<i64, u64> = HashMap::new();
            for &k in &keys {
                *m.entry(k).or_insert(0) += 1;
            }
            m.len()
        });
    });

    group.bench_function("redmap_drain", |b| {
        let template: RedMap<u64> = (0..1200).map(|k| (k, k as u64)).collect();
        b.iter(|| {
            let mut m = template.clone();
            m.drain_entries().len()
        });
    });

    group.finish();
}

fn bench_trigger_variants(c: &mut Criterion) {
    use smart_analytics::MovingAverage;
    use smart_core::{SchedArgs, Scheduler};

    let mut group = c.benchmark_group("ablation_trigger");
    group.sample_size(10);
    let data: Vec<f64> = (0..100_000).map(|i| (i % 311) as f64).collect();

    for (label, disabled) in [("early_emission", false), ("combination_map_only", true)] {
        group.bench_function(label, |b| {
            let pool = smart_pool::shared_pool(1).unwrap();
            let mut s = Scheduler::new(
                MovingAverage::new(25, data.len()),
                SchedArgs::new(1, 1).with_trigger_disabled(disabled),
                pool,
            )
            .unwrap();
            let mut out = vec![0.0f64; data.len()];
            b.iter(|| {
                s.reset();
                s.run2(&data, &mut out).unwrap()
            });
        });
    }

    group.finish();
}

fn bench_wire_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wire");
    group.sample_size(20);

    // A k-means-like combination map: 8 clusters of 64-dim vectors.
    type ClusterEntry = (i64, (Vec<f64>, Vec<f64>, u64));
    let entries: Vec<ClusterEntry> =
        (0..8).map(|k| (k, (vec![1.5; 64], vec![0.5; 64], 100))).collect();

    group.bench_function("one_block_roundtrip", |b| {
        b.iter(|| {
            let bytes = smart_wire::to_bytes(&entries).unwrap();
            let back: Vec<ClusterEntry> = smart_wire::from_bytes(&bytes).unwrap();
            back.len()
        });
    });

    group.bench_function("per_entry_roundtrip", |b| {
        b.iter(|| {
            let mut total = 0;
            for e in &entries {
                let bytes = smart_wire::to_bytes(e).unwrap();
                let back: (i64, (Vec<f64>, Vec<f64>, u64)) =
                    smart_wire::from_bytes(&bytes).unwrap();
                total += usize::from(back.1 .2 > 0);
            }
            total
        });
    });

    group.finish();
}

criterion_group!(benches, bench_redmap_vs_std, bench_trigger_variants, bench_wire_blocking);
criterion_main!(benches);
