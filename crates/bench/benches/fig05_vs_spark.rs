//! Criterion bench for Fig. 5: the same analytics job on Smart vs the
//! RDD-architecture MiniSpark engine (histogram and logistic regression).

use criterion::{criterion_group, criterion_main, Criterion};
use smart_analytics::{Histogram, LogisticRegression};
use smart_core::{SchedArgs, Scheduler};
use smart_minispark::{histogram_spark, logistic_spark, SparkContext};
use smart_sim::{LabeledEmulator, NormalEmulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_vs_spark");
    group.sample_size(10);

    let data = NormalEmulator::standard(5).step(100_000);
    group.bench_function("smart_histogram_100k", |b| {
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s =
            Scheduler::new(Histogram::new(-4.0, 4.0, 100), SchedArgs::new(1, 1), pool).unwrap();
        let mut out = vec![0u64; 100];
        b.iter(|| s.run(&data, &mut out).unwrap());
    });
    group.bench_function("minispark_histogram_100k", |b| {
        let ctx = SparkContext::with_service_threads(1, 0);
        b.iter(|| histogram_spark(&ctx, &data, -4.0, 4.0, 100, 8));
    });

    let recs = LabeledEmulator::new(6, 15).step(1000);
    group.bench_function("smart_logistic_1k_x5", |b| {
        b.iter(|| {
            let pool = smart_pool::shared_pool(1).unwrap();
            let args = SchedArgs::new(1, 16).with_extra(vec![0.0; 15]).with_iters(5);
            let mut s = Scheduler::new(LogisticRegression::new(15, 0.1), args, pool).unwrap();
            let mut out = vec![Vec::new()];
            s.run(&recs, &mut out).unwrap();
            out
        });
    });
    group.bench_function("minispark_logistic_1k_x5", |b| {
        let ctx = SparkContext::with_service_threads(1, 0);
        b.iter(|| logistic_spark(&ctx, &recs, 15, 0.1, 5, 8));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
