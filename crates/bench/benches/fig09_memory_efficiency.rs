//! Criterion bench for Fig. 9: zero-copy vs copy-input time sharing on the
//! same logistic-regression step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smart_analytics::LogisticRegression;
use smart_core::{SchedArgs, Scheduler};
use smart_sim::Heat3D;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_memory_efficiency");
    group.sample_size(10);

    let mut sim = Heat3D::serial(32, 32, 64, 0.1);
    let data = sim.step_serial().to_vec();
    let usable = (data.len() / 16) * 16;
    let data = &data[..usable];

    for copy in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("lr_step", if copy { "copy" } else { "zero_copy" }),
            &copy,
            |b, &copy| {
                let pool = smart_pool::shared_pool(1).unwrap();
                let args = SchedArgs::new(1, 16)
                    .with_extra(vec![0.0; 15])
                    .with_iters(3)
                    .with_copy_input(copy);
                let mut s = Scheduler::new(LogisticRegression::new(15, 0.1), args, pool).unwrap();
                let mut out = vec![Vec::new()];
                b.iter(|| s.run(data, &mut out).unwrap());
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
