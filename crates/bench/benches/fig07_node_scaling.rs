//! Criterion bench for Fig. 7: per-rank in-situ work on Heat3D as the
//! partition shrinks with the node count (strong scaling's per-node side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smart_analytics::Histogram;
use smart_core::{SchedArgs, Scheduler};
use smart_sim::Heat3D;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_node_scaling");
    group.sample_size(10);

    let mut sim = Heat3D::serial(32, 32, 32, 0.1);
    sim.step_serial();
    let data = sim.output().to_vec();

    for ranks in [4usize, 8, 16, 32] {
        let part = data.len() / ranks;
        // kernel = batched reduce (SIMD where available); scalar = the
        // classic per-chunk walk via set_scalar_reduce. The ratio between
        // the two ids is the Fig. 7 hot-loop speedup.
        for (variant, scalar) in [("kernel", false), ("scalar", true)] {
            let id = format!("rank_partition_histogram_{variant}");
            group.bench_with_input(BenchmarkId::new(id.as_str(), ranks), &ranks, |b, _| {
                let pool = smart_pool::shared_pool(1).unwrap();
                let mut s =
                    Scheduler::new(Histogram::new(0.0, 100.0, 1200), SchedArgs::new(1, 1), pool)
                        .unwrap();
                s.set_scalar_reduce(scalar);
                let mut out = vec![0u64; 1200];
                b.iter(|| s.run(&data[..part], &mut out).unwrap());
            });
        }
    }

    group.bench_function("heat3d_full_step", |b| {
        let mut sim = Heat3D::serial(32, 32, 32, 0.1);
        b.iter(|| {
            sim.step_serial();
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
