//! Criterion bench for Fig. 6: Smart vs hand-coded low-level analytics
//! on identical inputs (the middleware-overhead measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use smart_analytics::{KMeans, LogisticRegression};
use smart_baseline::{lowlevel_kmeans, lowlevel_logistic};
use smart_core::{SchedArgs, Scheduler};
use smart_pool::ThreadPool;
use smart_sim::{ClusteredEmulator, LabeledEmulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_vs_lowlevel");
    group.sample_size(10);

    let pts = ClusteredEmulator::new(7, 8, 64, 1.0).step(500);
    let init: Vec<f64> = pts[..8 * 64].to_vec();

    group.bench_function("smart_kmeans", |b| {
        b.iter(|| {
            let pool = smart_pool::shared_pool(1).unwrap();
            let args = SchedArgs::new(1, 64).with_extra(init.clone()).with_iters(5);
            let mut s = Scheduler::new(KMeans::new(8, 64), args, pool).unwrap();
            let mut out = vec![Vec::new(); 8];
            s.run(&pts, &mut out).unwrap();
            out
        });
    });
    group.bench_function("lowlevel_kmeans", |b| {
        let pool = ThreadPool::new(1).unwrap();
        b.iter(|| lowlevel_kmeans(&pool, None, &pts, 64, 8, &init, 5, 1).unwrap());
    });

    let recs = LabeledEmulator::new(8, 15).step(1000);
    group.bench_function("smart_logistic", |b| {
        b.iter(|| {
            let pool = smart_pool::shared_pool(1).unwrap();
            let args = SchedArgs::new(1, 16).with_extra(vec![0.0; 15]).with_iters(5);
            let mut s = Scheduler::new(LogisticRegression::new(15, 0.1), args, pool).unwrap();
            let mut out = vec![Vec::new()];
            s.run(&recs, &mut out).unwrap();
            out
        });
    });
    group.bench_function("lowlevel_logistic", |b| {
        let pool = ThreadPool::new(1).unwrap();
        b.iter(|| lowlevel_logistic(&pool, None, &recs, 15, 0.1, 5, 1).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
