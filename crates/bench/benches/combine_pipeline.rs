//! Ablation for the two-layer combination pipeline:
//!
//! * **local combination** (Fig. 8 thread-scaling side): serial fold of the
//!   per-thread partial maps on the driver thread vs the pairwise parallel
//!   tree merge on the pool, on a ≥100k-key combination map at 4 threads —
//!   the regime where the light-app curve of Fig. 8 flattens because the
//!   serial merge is Amdahl's sequential fraction;
//! * **global combination** (Fig. 7 node-scaling side): the reduce-to-root +
//!   broadcast allreduce vs the shard-partitioned ring allreduce, on
//!   histogram-1200-sized combination maps across growing rank counts —
//!   the master-bottleneck pattern vs evenly spread traffic;
//! * **reduction-map backends**: the direct-indexed dense table (key_bound
//!   fast path) vs open addressing on the histogram's bounded key space;
//! * **map reuse**: per-thread reduction maps retained across steps
//!   (clear-don't-free) vs dropped and reallocated every step.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use smart_analytics::{ClusterObj, Histogram, KMeans, MovingAverage};
use smart_comm::{merge_sorted_entries, run_cluster};
use smart_core::{fold_entries_view, Analytics, Key, RedMap, SchedArgs, Scheduler};
use smart_pool::ThreadPool;

/// The scheduler's merge step (scheduler::merge_into) over plain count
/// objects: pre-reserve, then merge-or-move every entry.
fn merge_into(mut src: RedMap<u64>, dst: &mut RedMap<u64>) {
    dst.reserve(src.len());
    for (k, v) in src.drain_entries() {
        match dst.get_mut(k) {
            Some(com) => *com += v,
            None => {
                dst.insert(k, v);
            }
        }
    }
}

fn bench_local_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_local");
    group.sample_size(10);

    // Four per-thread partials over an overlapping ~131k-key space, as a
    // 4-thread multi-key analytics would produce them.
    let keys = 1 << 17;
    let threads = 4;
    let partials: Vec<RedMap<u64>> = (0..threads)
        .map(|t| (0..keys).map(|i| (((i * 31 + t * 7) % keys) as i64, 1u64)).collect())
        .collect();
    let pool = ThreadPool::new(threads).unwrap();

    group.bench_function(BenchmarkId::new("serial_fold", keys), |b| {
        b.iter_batched(
            || partials.clone(),
            |parts| {
                let mut delta: RedMap<u64> = RedMap::new();
                for p in parts {
                    merge_into(p, &mut delta);
                }
                delta.len()
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function(BenchmarkId::new("tree_merge", keys), |b| {
        b.iter_batched(
            || partials.clone(),
            |parts| {
                let delta = pool
                    .tree_reduce(parts, |a, b| {
                        let (mut dst, src) =
                            if a.capacity() >= b.capacity() { (a, b) } else { (b, a) };
                        merge_into(src, &mut dst);
                        dst
                    })
                    .unwrap()
                    .unwrap_or_default();
                delta.len()
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

fn bench_global_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_global");
    group.sample_size(10);

    // A Fig. 7 histogram combination map: 1200 buckets, every rank holding
    // all of them. Several rounds per cluster launch so collective time
    // dominates thread-spawn time.
    let buckets = 1200i64;
    let rounds = 16;

    for ranks in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("allreduce_tree", ranks), &ranks, |b, &n| {
            b.iter(|| {
                run_cluster(n, |mut comm| {
                    let mut total = 0usize;
                    for _ in 0..rounds {
                        let local: Vec<(i64, u64)> = (0..buckets).map(|k| (k, 1u64)).collect();
                        let merged = comm
                            .allreduce(local, |acc, inc| {
                                merge_sorted_entries(acc, inc, |a, b| *a += b)
                            })
                            .unwrap();
                        total += merged.len();
                    }
                    total
                })
            });
        });

        group.bench_with_input(BenchmarkId::new("allreduce_sharded", ranks), &ranks, |b, &n| {
            b.iter(|| {
                run_cluster(n, |mut comm| {
                    let mut total = 0usize;
                    for _ in 0..rounds {
                        let local: Vec<(i64, u64)> = (0..buckets).map(|k| (k, 1u64)).collect();
                        let merged = comm.allreduce_sharded(local, |a, b| *a += b).unwrap();
                        total += merged.len();
                    }
                    total
                })
            });
        });
    }

    group.finish();
}

fn bench_redmap_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("redmap_backend");
    group.sample_size(10);

    // A histogram-like access pattern: many accumulations over a bounded
    // 1200-key space — the shape the dense fast path is built for.
    let keys = 1200usize;
    let hits = 200_000usize;

    group.bench_function(BenchmarkId::new("hash_open_addressing", keys), |b| {
        b.iter(|| {
            let mut m: RedMap<u64> = RedMap::new();
            for i in 0..hits {
                match m.get_mut(((i * 31) % keys) as i64) {
                    Some(v) => *v += 1,
                    None => {
                        m.insert(((i * 31) % keys) as i64, 1);
                    }
                }
            }
            m.len()
        });
    });

    group.bench_function(BenchmarkId::new("dense_direct_index", keys), |b| {
        b.iter(|| {
            let mut m: RedMap<u64> = RedMap::with_key_bound(keys);
            for i in 0..hits {
                match m.get_mut(((i * 31) % keys) as i64) {
                    Some(v) => *v += 1,
                    None => {
                        m.insert(((i * 31) % keys) as i64, 1);
                    }
                }
            }
            m.len()
        });
    });

    group.finish();
}

fn bench_map_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_reuse");
    group.sample_size(10);

    let data: Vec<f64> = (0..100_000).map(|i| (i % 997) as f64 / 10.0).collect();

    // Retained: the scheduler keeps its per-thread shells warm across
    // steps (the default). Dropped: shells are discarded after every step,
    // forcing a fresh allocation + table zeroing per step.
    for (variant, drop_each_step) in [("shells_retained", false), ("shells_dropped", true)] {
        group.bench_function(BenchmarkId::new(variant, data.len()), |b| {
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s =
                Scheduler::new(Histogram::new(0.0, 100.0, 1200), SchedArgs::new(4, 1), pool)
                    .unwrap();
            let mut out = vec![0u64; 1200];
            b.iter(|| {
                if drop_each_step {
                    s.drop_shells();
                }
                s.run(&data, &mut out).unwrap()
            });
        });
    }

    // Multi-key regime: a MovingAverage's per-thread partials hold ~out_len
    // entries, so dropping the shells forces each thread to regrow a ~40k-slot
    // table from empty every step — the case clear-don't-free is built for.
    let ma_data: Vec<f64> = (0..40_000).map(|i| (i % 313) as f64).collect();
    for (variant, drop_each_step) in [("shells_retained", false), ("shells_dropped", true)] {
        let id = format!("{variant}_multikey");
        group.bench_function(BenchmarkId::new(id.as_str(), ma_data.len()), |b| {
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(
                MovingAverage::new(25, ma_data.len()),
                SchedArgs::new(4, 1).with_trigger_disabled(true),
                pool,
            )
            .unwrap();
            let mut out = vec![0.0f64; ma_data.len()];
            b.iter(|| {
                if drop_each_step {
                    s.drop_shells();
                }
                s.run2(&ma_data, &mut out).unwrap()
            });
        });
    }

    group.finish();
}

fn bench_wire_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_view");
    group.sample_size(10);

    // One hop of the global combination, k-means shaped: the accumulator
    // and the incoming payload hold the same `keys` clusters of
    // heap-bearing `ClusterObj`s (two `dims`-element vectors each) — the
    // all-keys-overlap regime every post-first-iteration combination is in.
    let dims = 16usize;
    let keys = 512usize;
    let analytics = KMeans::new(keys, dims);
    let entries: Vec<(Key, ClusterObj)> = (0..keys)
        .map(|k| {
            (
                k as Key,
                ClusterObj {
                    centroid: (0..dims).map(|d| (k * 7 + d) as f64).collect(),
                    sum: (0..dims).map(|d| (k * 3 + d) as f64).collect(),
                    size: k as u64,
                },
            )
        })
        .collect();
    let bytes = smart_wire::to_bytes(&entries).unwrap();

    // Owned reference path (`SMART_WIRE_VIEW=0`): decode the incoming
    // vector — one allocation per vector field per entry — then merge.
    group.bench_function(BenchmarkId::new("owned_decode", keys), |b| {
        b.iter_batched(
            || entries.clone(),
            |acc| {
                let inc: Vec<(Key, ClusterObj)> = smart_wire::from_bytes(&bytes).unwrap();
                merge_sorted_entries(acc, inc, |com, red| analytics.merge(&red, com)).len()
            },
            BatchSize::LargeInput,
        );
    });

    // Zero-copy view path (the default): validate once, fold each entry in
    // place through `Analytics::merge_wire` — no per-entry allocation.
    group.bench_function(BenchmarkId::new("view_merge", keys), |b| {
        b.iter_batched(
            || entries.clone(),
            |acc| fold_entries_view(&analytics, acc, &bytes).unwrap().len(),
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_local_combine,
    bench_global_combine,
    bench_wire_view,
    bench_redmap_backends,
    bench_map_reuse
);
criterion_main!(benches);
