//! Criterion bench for Fig. 1: one in-situ time-step (simulate + analyze)
//! vs one offline time-step (simulate + write + read + analyze).

use criterion::{criterion_group, criterion_main, Criterion};
use smart_analytics::KMeans;
use smart_baseline::OfflineStore;
use smart_core::{SchedArgs, Scheduler};
use smart_sim::Heat3D;

fn kmeans_scheduler() -> Scheduler<KMeans> {
    let (k, dims) = (8, 4);
    let init: Vec<f64> = (0..k * dims).map(|i| (i / dims) as f64 * 12.5 + 6.0).collect();
    let args = SchedArgs::new(1, dims).with_extra(init).with_iters(5);
    Scheduler::new(KMeans::new(k, dims), args, smart_pool::shared_pool(1).unwrap()).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_insitu_vs_offline");
    group.sample_size(10);

    group.bench_function("insitu_step", |b| {
        let mut sim = Heat3D::serial(24, 24, 16, 0.1);
        let mut smart = kmeans_scheduler();
        let mut out = vec![Vec::new(); 8];
        b.iter(|| {
            let data = sim.step_serial();
            smart.run(data, &mut out).unwrap();
        });
    });

    group.bench_function("offline_step", |b| {
        let mut sim = Heat3D::serial(24, 24, 16, 0.1);
        let mut smart = kmeans_scheduler();
        let mut out = vec![Vec::new(); 8];
        let store = OfflineStore::temp("bench-fig1").unwrap();
        let mut step = 0usize;
        b.iter(|| {
            let data = sim.step_serial();
            store.write_step(0, step, data).unwrap();
            let back = store.read_step(0, step).unwrap();
            smart.run(&back, &mut out).unwrap();
            step += 1;
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
