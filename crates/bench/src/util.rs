//! Table formatting and timing helpers shared by every experiment.

use std::time::{Duration, Instant};

/// Experiment scale: `Quick` for smoke tests and Criterion, `Full` for the
/// EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs, few steps — seconds per figure.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Pick `quick` or `full` by scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// A printable result table (one per figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure title, e.g. "Fig. 7 — node scaling on Heat3D".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (assumptions, crashes).
    pub notes: Vec<String>,
}

impl Table {
    /// An empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Render as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out.push('\n');
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Time a closure, returning its result and the wall duration.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let started = Instant::now();
    let r = f();
    (r, started.elapsed())
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a ratio like "12.3x".
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn table_renders_aligned_and_markdown() {
        let mut t = Table::new("Test", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let text = t.render();
        assert!(text.contains("Test"));
        assert!(text.contains("hello"));
        let md = t.render_markdown();
        assert!(md.contains("| a | bbbb |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7.0us");
        assert_eq!(fmt_ratio(2.5), "2.50x");
        assert_eq!(fmt_pct(0.934), "93.4%");
    }

    #[test]
    fn time_it_measures() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(5));
    }
}
