//! The calibrated performance-composition model (see crate docs).
//!
//! All *work* quantities fed into these functions are measured busy times
//! of really-executed code; this module only composes them structurally and
//! charges communication with the α–β model.

use smart_comm::CostModel;
use std::time::Duration;

/// Cluster model used by the scaling figures.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Interconnect cost model.
    pub net: CostModel,
    /// Cores per node available to simulation + analytics.
    pub cores_per_node: usize,
}

impl Default for ClusterModel {
    fn default() -> Self {
        ClusterModel { net: CostModel::commodity_cluster(), cores_per_node: 8 }
    }
}

impl ClusterModel {
    /// Rounds of a binomial tree over `n` ranks.
    pub fn tree_rounds(n: usize) -> u32 {
        (n.max(1) as f64).log2().ceil() as u32
    }

    /// Modeled time of an allreduce (reduce + broadcast, binomial trees)
    /// shipping `bytes` per rank, plus `per_round_merge` of CPU work at
    /// each reduce round.
    pub fn allreduce_time(
        &self,
        bytes: usize,
        ranks: usize,
        per_round_merge: Duration,
    ) -> Duration {
        if ranks <= 1 {
            return Duration::ZERO;
        }
        let rounds = Self::tree_rounds(ranks);
        let per_round = self.net.message_cost(bytes);
        // reduce: rounds × (message + merge); broadcast: rounds × message
        per_round * (2 * rounds) + per_round_merge * rounds
    }

    /// Modeled time of a nearest-neighbor halo exchange of `bytes` per
    /// direction (two sends per rank, overlapping across ranks).
    pub fn halo_time(&self, bytes: usize, ranks: usize) -> Duration {
        if ranks <= 1 {
            return Duration::ZERO;
        }
        self.net.message_cost(bytes) * 2
    }
}

/// Measured components of one analytics run on one node's partition.
///
/// The combination phase decomposes into a *fixed* per-iteration cost
/// (post-combine, map bookkeeping) and a *per-map* merge cost that scales
/// with the number of per-thread reduction maps merged. The harness
/// measures both by running the same job with one and two reduction maps
/// and fitting the line (both combine phases execute on the main thread,
/// so the busy times stay valid even on a single-core host).
#[derive(Debug, Clone, Copy, Default)]
pub struct AppMeasurement {
    /// Single-thread busy time of the whole run (reduction + combination).
    pub t1: Duration,
    /// Reduction-only busy time (`t1` minus the measured combine).
    pub reduce: Duration,
    /// Thread-count-independent combination cost per run.
    pub combine_fixed: Duration,
    /// Additional combination cost per per-thread map merged.
    pub combine_per_map: Duration,
    /// Serialized combination-map bytes shipped per global combination
    /// (`RunStats::global_bytes` per iteration).
    pub global_bytes: usize,
    /// Iterations (global combinations per run).
    pub iters: usize,
}

impl AppMeasurement {
    /// Total combination cost with `threads` reduction maps.
    pub fn combine(&self, threads: usize) -> Duration {
        self.combine_fixed + self.combine_per_map * threads as u32
    }

    /// Modeled node-local analytics time with `threads` workers: the
    /// reduction splits evenly (these kernels are uniform per element; the
    /// per-split max over measured sub-runs agrees within noise), the
    /// combination stays on one thread.
    pub fn node_time(&self, threads: usize) -> Duration {
        assert!(threads > 0);
        self.reduce / threads as u32 + self.combine(threads)
    }

    /// Modeled cluster analytics time: node time plus the per-iteration
    /// global combination.
    pub fn cluster_time(&self, model: &ClusterModel, threads: usize, ranks: usize) -> Duration {
        let per_iter_merge =
            if self.iters > 0 { self.combine(1) / self.iters as u32 } else { self.combine(1) };
        self.node_time(threads)
            + model.allreduce_time(self.global_bytes, ranks, per_iter_merge)
                * self.iters.max(1) as u32
    }
}

/// Parallel-efficiency helper: `t_base` on `base` units vs `t` on `n`
/// units (strong scaling).
pub fn parallel_efficiency(t_base: Duration, base: usize, t: Duration, n: usize) -> f64 {
    (t_base.as_secs_f64() * base as f64) / (t.as_secs_f64() * n as f64)
}

/// Structural speedup of a plane-parallel simulation update: `planes`
/// discrete planes over `threads` workers finish when the worker with the
/// most planes does. This is MiniLulesh's real saturation law (its update
/// parallelizes over Z planes), and the reason simulations stop scaling on
/// many-core nodes in Fig. 10.
pub fn plane_speedup(planes: usize, threads: usize) -> f64 {
    assert!(planes > 0 && threads > 0);
    planes as f64 / planes.div_ceil(threads) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_rounds_are_logarithmic() {
        assert_eq!(ClusterModel::tree_rounds(1), 0);
        assert_eq!(ClusterModel::tree_rounds(2), 1);
        assert_eq!(ClusterModel::tree_rounds(8), 3);
        assert_eq!(ClusterModel::tree_rounds(9), 4);
    }

    #[test]
    fn allreduce_zero_for_single_rank() {
        let m = ClusterModel::default();
        assert_eq!(m.allreduce_time(1000, 1, Duration::from_micros(5)), Duration::ZERO);
        assert!(m.allreduce_time(1000, 8, Duration::from_micros(5)) > Duration::ZERO);
    }

    #[test]
    fn allreduce_grows_with_ranks_and_bytes() {
        let m = ClusterModel::default();
        let merge = Duration::from_micros(1);
        assert!(m.allreduce_time(1 << 20, 8, merge) > m.allreduce_time(1 << 10, 8, merge));
        assert!(m.allreduce_time(1 << 10, 64, merge) > m.allreduce_time(1 << 10, 4, merge));
    }

    #[test]
    fn node_time_splits_reduce_not_combine() {
        let m = AppMeasurement {
            t1: Duration::from_millis(90),
            reduce: Duration::from_millis(80),
            combine_fixed: Duration::from_millis(8),
            combine_per_map: Duration::from_millis(2),
            global_bytes: 0,
            iters: 1,
        };
        // 80/1 + 8 + 2 = 90ms
        assert_eq!(m.node_time(1), Duration::from_millis(90));
        // 80/4 + 8 + 8 = 36ms
        assert_eq!(m.node_time(4), Duration::from_millis(36));
        // The per-map merge term grows with threads; fixed part does not.
        assert_eq!(m.combine(1), Duration::from_millis(10));
        assert_eq!(m.combine(8), Duration::from_millis(24));
    }

    #[test]
    fn plane_speedup_saturates() {
        assert_eq!(plane_speedup(32, 1), 1.0);
        assert_eq!(plane_speedup(32, 32), 32.0);
        // Past one plane per thread there is nothing left to parallelize.
        assert_eq!(plane_speedup(32, 50), 32.0);
        // Discrete load imbalance: 32 planes on 30 threads → 2-plane critical path.
        assert_eq!(plane_speedup(32, 30), 16.0);
    }

    #[test]
    fn efficiency_is_one_for_perfect_scaling() {
        let e = parallel_efficiency(Duration::from_secs(8), 4, Duration::from_secs(4), 8);
        assert!((e - 1.0).abs() < 1e-12);
        let e = parallel_efficiency(Duration::from_secs(8), 4, Duration::from_secs(5), 8);
        assert!(e < 1.0);
    }
}
