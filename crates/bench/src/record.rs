//! Versioned benchmark result records.
//!
//! Every figure run can be persisted as `BENCH_<fig>.json` so CI can diff
//! benchmark output across commits. The schema is versioned and
//! deliberately tiny — no external JSON dependency, just a hand-rolled
//! emitter for the handful of shapes we produce:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "fig": "fig7",
//!   "rev": "<git commit or \"unknown\">",
//!   "date_unix": 1754700000,
//!   "params": {"scale": "quick"},
//!   "samples": {"headers": [...], "rows": [[...], ...], "notes": [...]}
//! }
//! ```

use crate::util::Table;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Bump when the JSON shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One persisted benchmark result: a figure's table plus provenance.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Figure id (`fig7`, `mem`, ...) — also names the output file.
    pub fig: String,
    /// Git commit the benchmark ran at, or `"unknown"`.
    pub rev: String,
    /// Seconds since the Unix epoch at record time.
    pub date_unix: u64,
    /// Free-form run parameters (scale, SIMD state, ...).
    pub params: Vec<(String, String)>,
    /// The rendered measurement table.
    pub table: Table,
}

impl BenchRecord {
    /// Capture `table` with provenance stamped from the environment.
    pub fn capture(fig: &str, params: &[(&str, String)], table: &Table) -> Self {
        BenchRecord {
            fig: fig.to_string(),
            rev: git_rev(),
            date_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            params: params.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            table: table.clone(),
        }
    }

    /// Serialize to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str(&format!("  \"fig\": {},\n", json_str(&self.fig)));
        out.push_str(&format!("  \"rev\": {},\n", json_str(&self.rev)));
        out.push_str(&format!("  \"date_unix\": {},\n", self.date_unix));
        out.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
        }
        out.push_str("},\n");
        out.push_str("  \"samples\": {\n");
        out.push_str(&format!("    \"title\": {},\n", json_str(&self.table.title)));
        out.push_str(&format!("    \"headers\": {},\n", json_str_array(&self.table.headers)));
        out.push_str("    \"rows\": [\n");
        for (i, row) in self.table.rows.iter().enumerate() {
            out.push_str(&format!(
                "      {}{}\n",
                json_str_array(row),
                if i + 1 < self.table.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!("    \"notes\": {}\n", json_str_array(&self.table.notes)));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// File name this record persists under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.fig)
    }

    /// Write `BENCH_<fig>.json` into `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?; // lint:allow(no-fs-writes)
        Ok(path)
    }
}

/// Current git commit, `"unknown"` outside a work tree.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// JSON string literal with the escapes our content can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Fig. X — sample", &["a", "b"]);
        t.row(vec!["1".into(), "quote \" and\nnewline".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn json_has_schema_and_provenance_fields() {
        let rec = BenchRecord::capture("figx", &[("scale", "quick".into())], &sample_table());
        let json = rec.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"fig\": \"figx\""));
        assert!(json.contains("\"rev\": \""));
        assert!(json.contains("\"date_unix\": "));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"headers\": [\"a\", \"b\"]"));
        assert!(json.contains("\"notes\": [\"a note\"]"));
    }

    #[test]
    fn json_escapes_are_valid() {
        let rec = BenchRecord::capture("figx", &[], &sample_table());
        let json = rec.to_json();
        assert!(json.contains("quote \\\" and\\nnewline"));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn file_name_embeds_fig_id() {
        let rec = BenchRecord::capture("fig7", &[], &sample_table());
        assert_eq!(rec.file_name(), "BENCH_fig7.json");
    }

    #[test]
    fn write_to_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("smart-bench-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap(); // lint:allow(no-fs-writes)
        let rec = BenchRecord::capture("figx", &[], &sample_table());
        let path = rec.write_to(&dir).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, rec.to_json());
        std::fs::remove_dir_all(&dir).ok(); // lint:allow(no-fs-writes)
    }
}
