//! Shared workload construction and measurement helpers.

use crate::model::AppMeasurement;
use smart_analytics::{
    GaussianSmoother, GridAggregation, Histogram, KMeans, LogisticRegression, MovingAverage,
    MovingMedian, MutualInformation, SavitzkyGolay,
};
use smart_core::{Analytics, SchedArgs, Scheduler};

/// Run `app` over `data` with stats collection and return the calibrated
/// measurement.
///
/// The job executes twice — with one and with two reduction maps — to fit
/// the combination cost's fixed and per-map components (see
/// [`AppMeasurement`]). Both combination phases run on the main thread, so
/// their busy times are valid even on a single-core host.
pub fn measure_smart<A>(
    app: A,
    chunk: usize,
    extra: Option<A::Extra>,
    iters: usize,
    multi_key: bool,
    out_len: usize,
    data: &[f64],
) -> AppMeasurement
where
    A: Analytics<In = f64> + Clone,
    A::Out: Default + Clone,
    A::Extra: Clone,
{
    let run_with = |threads: usize| -> (std::time::Duration, std::time::Duration, u64) {
        let pool = smart_pool::shared_pool(threads).expect("pool");
        let mut args = SchedArgs::new(threads, chunk).with_iters(iters);
        if let Some(e) = extra.clone() {
            args = args.with_extra(e);
        }
        let mut s = Scheduler::new(app.clone(), args, pool).expect("scheduler");
        s.set_collect_stats(true);
        let mut out = vec![A::Out::default(); out_len];
        let (_, wall) = crate::util::time_it(|| {
            if multi_key {
                s.run2(data, &mut out).expect("run2");
            } else {
                s.run(data, &mut out).expect("run");
            }
        });
        let stats = s.last_stats();
        (wall, stats.combine_busy, stats.global_bytes / stats.iters.max(1) as u64)
    };

    // Best of two runs per configuration: this suppresses scheduler and
    // frequency-scaling noise, which dominates at microsecond scales on
    // shared hosts.
    let a = run_with(1);
    let b = run_with(1);
    let (wall1, c1, global_bytes) = if a.0 <= b.0 { a } else { b };
    let a = run_with(2);
    let b = run_with(2);
    let (_, c2, _) = if a.1 <= b.1 { a } else { b };

    // Linear fit: combine(t) = fixed + t × per_map.
    let per_map = c2.saturating_sub(c1);
    let fixed = c1.saturating_sub(per_map);
    AppMeasurement {
        t1: wall1,
        reduce: wall1.saturating_sub(c1),
        combine_fixed: fixed,
        combine_per_map: per_map,
        global_bytes: global_bytes as usize,
        iters,
    }
}

/// Time one app's full run twice — once on the batched kernels (the
/// default) and once with `set_scalar_reduce` forcing the classic
/// per-chunk walk — and return `(kernel, scalar)` wall times. Best of two
/// runs each, like [`measure_smart`]. Figs. 7/8 record this delta so the
/// vectorized hot loop shows up in the persisted benchmark records.
pub fn measure_reduce_pair<A>(
    app: A,
    chunk: usize,
    extra: Option<A::Extra>,
    iters: usize,
    multi_key: bool,
    out_len: usize,
    data: &[f64],
) -> (std::time::Duration, std::time::Duration)
where
    A: Analytics<In = f64> + Clone,
    A::Out: Default + Clone,
    A::Extra: Clone,
{
    let run_with = |scalar: bool| -> std::time::Duration {
        let pool = smart_pool::shared_pool(1).expect("pool");
        let mut args = SchedArgs::new(1, chunk).with_iters(iters);
        if let Some(e) = extra.clone() {
            args = args.with_extra(e);
        }
        let mut s = Scheduler::new(app.clone(), args, pool).expect("scheduler");
        s.set_scalar_reduce(scalar);
        let mut out = vec![A::Out::default(); out_len];
        let (_, wall) = crate::util::time_it(|| {
            if multi_key {
                s.run2(data, &mut out).expect("run2");
            } else {
                s.run(data, &mut out).expect("run");
            }
        });
        wall
    };
    let kernel = run_with(false).min(run_with(false));
    let scalar = run_with(true).min(run_with(true));
    (kernel, scalar)
}

/// The §5.4 nine-application suite with the paper's parameters, measured
/// over one time-step `data` whose values span `(min, max)`.
///
/// `data.len()` must be a multiple of 16 (the logistic-regression record
/// length) — simulation partitions in the harness are sized accordingly.
pub fn measure_suite(data: &[f64], min: f64, max: f64) -> Vec<(&'static str, AppMeasurement)> {
    assert!(data.len().is_multiple_of(16) && !data.is_empty(), "suite needs len % 16 == 0");
    let n = data.len();
    let window = 25;

    // k-means init: 8 centroids spread across the value range.
    let k = 8;
    let dims = 4;
    let kinit: Vec<f64> =
        (0..k * dims).map(|i| min + (max - min) * ((i / dims) as f64 + 0.5) / k as f64).collect();

    vec![
        (
            "grid-aggregation",
            measure_smart(GridAggregation::new(1000, n), 1, None, 1, false, n.div_ceil(1000), data),
        ),
        ("histogram", measure_smart(Histogram::new(min, max, 1200), 1, None, 1, false, 1200, data)),
        (
            "mutual-information",
            measure_smart(
                MutualInformation::new((min, max, 100), (min, max, 100)),
                2,
                None,
                1,
                false,
                0,
                data,
            ),
        ),
        (
            "logistic-regression",
            measure_smart(
                LogisticRegression::new(15, 0.1),
                16,
                Some(vec![0.0; 15]),
                3,
                false,
                1,
                data,
            ),
        ),
        ("k-means", measure_smart(KMeans::new(k, dims), dims, Some(kinit), 10, false, k, data)),
        ("moving-average", measure_smart(MovingAverage::new(window, n), 1, None, 1, true, n, data)),
        ("moving-median", measure_smart(MovingMedian::new(window, n), 1, None, 1, true, n, data)),
        (
            "gaussian-kde",
            measure_smart(GaussianSmoother::new(window, n), 1, None, 1, true, n, data),
        ),
        (
            "savitzky-golay",
            measure_smart(SavitzkyGolay::new(window, 2, n), 1, None, 1, true, n, data),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smart_reports_positive_components() {
        let data: Vec<f64> = (0..4096).map(|i| (i % 97) as f64).collect();
        let m = measure_smart(Histogram::new(0.0, 100.0, 16), 1, None, 1, false, 16, &data);
        assert!(m.t1 > std::time::Duration::ZERO);
        assert!(m.t1 >= m.combine(1));
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn suite_measures_all_nine_apps() {
        let data: Vec<f64> = (0..1600).map(|i| (i % 100) as f64).collect();
        let suite = measure_suite(&data, 0.0, 100.0);
        assert_eq!(suite.len(), 9);
        for (name, m) in &suite {
            assert!(m.t1 > std::time::Duration::ZERO, "{name}");
        }
        // Window apps should cost more per element than histogram.
        let hist = suite.iter().find(|(n, _)| *n == "histogram").unwrap().1;
        let median = suite.iter().find(|(n, _)| *n == "moving-median").unwrap().1;
        assert!(median.t1 > hist.t1);
    }

    #[test]
    #[should_panic(expected = "len % 16")]
    fn suite_rejects_misaligned_data() {
        let data = vec![0.0; 10];
        let _ = measure_suite(&data, 0.0, 1.0);
    }
}
