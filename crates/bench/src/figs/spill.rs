//! Spill-threshold ablation — bounded-memory reduction vs the unbounded run.
//!
//! PR 10's spilling shuffle trades sequential run I/O for resident map
//! bytes. This experiment sweeps `Scheduler::set_spill_budget` over a
//! many-key histogram stream and reports, per budget: wall time, sorted
//! runs written, run bytes, the peak resident map gauge, and whether the
//! canonical map bytes still equal the unbounded run's (they must — the
//! shuffle is contract-bound to be bit-identical).
//!
//! The notes add the **accuracy-vs-memory** ladder one rung further down:
//! when even the spilled exact map is more than a query needs, the sketch
//! apps answer from fixed-size summaries. For the same stream we print
//! each sketch's summary footprint next to its measured error, so the
//! exact-spilled-vs-sketch trade is one table.

use crate::util::{fmt_dur, time_it, Scale, Table};
use smart_analytics::{CountMin, HyperLogLog, TDigest};
use smart_core::{Analytics, Chunk, SchedArgs, Scheduler};
use smart_pool::shared_pool;

const THREADS: usize = 2;
const KEYS: usize = 4096;

/// Synthetic stream with full, deterministic key coverage: every step
/// touches every histogram bucket, so resident reduction state is the
/// worst case the budget has to bound.
fn stream(steps: usize, part: usize) -> Vec<Vec<f64>> {
    (0..steps).map(|t| (0..part).map(|i| ((t * 31 + i * 7) % KEYS) as f64).collect()).collect()
}

/// Drive the histogram over the stream under `budget`; returns
/// (wall, runs, run bytes, peak resident bytes, canonical map bytes).
fn run_budget(
    steps: &[Vec<f64>],
    budget: Option<usize>,
) -> (std::time::Duration, usize, u64, usize, Vec<u8>) {
    let pool = shared_pool(THREADS).expect("pool");
    let mut s = Scheduler::new(
        smart_analytics::Histogram::new(0.0, KEYS as f64, KEYS),
        SchedArgs::new(THREADS, 1),
        pool,
    )
    .expect("scheduler");
    s.set_collect_stats(true);
    s.set_spill_budget(budget).expect("budget");
    let mut out = vec![0u64; KEYS];
    let mut runs = 0usize;
    let mut bytes = 0u64;
    let (_, elapsed) = time_it(|| {
        for step in steps {
            s.run(step, &mut out).expect("step");
            runs += s.last_stats().spill_runs;
            bytes += s.last_stats().spill_bytes;
        }
    });
    let canonical = s.canonical_map_bytes().expect("canonical bytes");
    (elapsed, runs, bytes, s.peak_map_bytes(), canonical)
}

/// Fold the whole stream into one reduction object of `app`.
fn fold<A: Analytics<In = f64>>(app: &A, steps: &[Vec<f64>]) -> A::Red {
    let mut obj = None;
    let mut start = 0usize;
    for step in steps {
        let chunk = Chunk { local_start: 0, global_start: start, len: step.len() };
        app.accumulate(&chunk, step, 0, &mut obj);
        start += step.len();
    }
    obj.expect("non-empty stream")
}

/// Sweep the spill budget; notes carry the sketch accuracy-vs-memory rung.
pub fn run(scale: Scale) -> Table {
    let steps = stream(scale.pick(3, 8), scale.pick(16 << 10, 128 << 10));
    let elems: usize = steps.iter().map(Vec::len).sum();

    let mut table = Table::new(
        format!(
            "Spill-threshold ablation — histogram ({KEYS} buckets), {} steps x {} elems, \
             {THREADS} threads",
            steps.len(),
            steps[0].len()
        ),
        &["budget", "wall", "runs", "run bytes", "peak resident", "bit-identical"],
    );

    let (wall, _, _, _, reference) = run_budget(&steps, None);
    table.row(vec![
        "unbounded".into(),
        fmt_dur(wall),
        "0".into(),
        "0".into(),
        "-".into(),
        "(reference)".into(),
    ]);
    for budget in [1 << 20, 256 << 10, 64 << 10, 16 << 10, 4 << 10] {
        let (wall, runs, bytes, peak, canonical) = run_budget(&steps, Some(budget));
        table.row(vec![
            format!("{} KiB", budget >> 10),
            fmt_dur(wall),
            runs.to_string(),
            format!("{} KiB", bytes >> 10),
            format!("{} KiB", peak >> 10),
            if canonical == reference { "yes".into() } else { "NO — DIVERGED".into() },
        ]);
    }

    // Accuracy-vs-memory: fixed-size summaries of the same stream.
    let truth: std::collections::BTreeSet<u64> =
        steps.iter().flatten().map(|v| v.to_bits()).collect();
    let hll = HyperLogLog::new(12);
    let hll_est = fold(&hll, &steps).estimate();
    table.note(format!(
        "HyperLogLog p=12 (4 KiB registers): {:.0} distinct vs {} true ({:+.2}% error) over {} elems",
        hll_est,
        truth.len(),
        100.0 * (hll_est - truth.len() as f64) / truth.len() as f64,
        elems
    ));

    let cm = CountMin::new(1024, 4);
    let cm_sketch = fold(&cm, &steps);
    let probe = 0.0f64;
    let exact = steps.iter().flatten().filter(|v| v.to_bits() == probe.to_bits()).count() as u64;
    table.note(format!(
        "Count-Min 1024x4 (32 KiB counters): count({probe}) = {} vs {} exact (overestimate only)",
        cm_sketch.estimate(probe),
        exact
    ));

    let td = TDigest::new(100.0);
    let td_sketch = fold(&td, &steps);
    let mut sorted: Vec<f64> = steps.iter().flatten().copied().collect();
    sorted.sort_by(f64::total_cmp);
    let est = td_sketch.quantile(0.9).unwrap_or(f64::NAN);
    let rank = sorted.iter().filter(|&&v| v < est).count() as f64 / sorted.len() as f64;
    table.note(format!(
        "t-digest c=100: q90 estimate {est:.1} has true rank {rank:.4} (rank error {:.4})",
        (rank - 0.9).abs()
    ));
    table.note(
        "bit-identical column compares canonical map bytes against the unbounded run \
         (tests/spill_equivalence.rs asserts the same across strategies and transports)",
    );
    table
}
