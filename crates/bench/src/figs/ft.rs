//! Fault tolerance — checkpoint overhead and recovery time.
//!
//! The paper assumes a fault-free run; this experiment measures what the
//! `smart-ft` subsystem adds on top and what it buys back:
//!
//! * **checkpoint overhead** — the same Heat3D + histogram step loop run
//!   bare, then under [`smart_ft::run_recoverable`] at two checkpoint
//!   intervals, with the store's own accounting (`ckpts`, `ckpt_bytes`,
//!   `ckpt_busy`) separating snapshot cost from analytics cost;
//! * **recovery time** — a run killed halfway through by a
//!   [`smart_ft::FaultPlan`], then restarted from the newest on-disk
//!   epoch: the wall time of resume-and-replay versus rerunning from
//!   scratch is the payoff of the checkpoint schedule.
//!
//! Every per-step input is generated up front so a resumed run replays the
//! exact bytes the crashed run saw; the experiment asserts the recovered
//! histogram is identical to the uninterrupted one before reporting.

use crate::util::{fmt_dur, time_it, Scale, Table};
use smart_analytics::Histogram;
use smart_core::{SchedArgs, Scheduler};
use smart_ft::{FaultPlan, RecoveryConfig, RecoveryReport};
use smart_pool::shared_pool;
use smart_sim::Heat3D;
use std::path::{Path, PathBuf};
use std::time::Duration;

const THREADS: usize = 2;
const BUCKETS: usize = 32;
const R: f64 = 0.15;

fn scheduler() -> Scheduler<Histogram> {
    let pool = shared_pool(THREADS).expect("pool");
    Scheduler::new(Histogram::new(0.0, 100.0, BUCKETS), SchedArgs::new(THREADS, 1), pool)
        .expect("scheduler")
}

/// Pre-render every step's simulation output so crashed and resumed runs
/// consume bit-identical inputs.
fn render_steps(edge: usize, steps: usize) -> Vec<Vec<f64>> {
    let mut sim = Heat3D::serial(edge, edge, edge, R);
    (0..steps).map(|_| sim.step_serial().to_vec()).collect()
}

/// A scratch checkpoint directory, cleared before use.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smart-bench-ftrec-{label}-{}", std::process::id()));
    // lint:allow(no-fs-writes): resetting the benchmark's own checkpoint scratch dir
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The bare step loop — no fault tolerance, the overhead baseline.
fn bare(data: &[Vec<f64>]) -> (Vec<u64>, Duration) {
    let mut sched = scheduler();
    let mut out = vec![0u64; BUCKETS];
    let (_, wall) = time_it(|| {
        for step in data {
            sched.run(step, &mut out).expect("run");
        }
    });
    (out, wall)
}

/// One recoverable run over `data` (resuming if `dir` holds a checkpoint).
fn recoverable(
    data: &[Vec<f64>],
    dir: &Path,
    every: usize,
    plan: FaultPlan,
) -> (Result<RecoveryReport, smart_ft::RecoverError>, Vec<u64>, Duration) {
    let cfg = RecoveryConfig::new(dir).with_every(every);
    let mut sched = scheduler();
    let mut out = vec![0u64; BUCKETS];
    let (report, wall) = time_it(|| {
        smart_ft::run_recoverable(&mut sched, &cfg, 0, data.len(), plan, |sched, t| {
            sched.run(&data[t], &mut out)
        })
    });
    (report, out, wall)
}

/// Render one table row.
fn push_row(table: &mut Table, phase: &str, wall: Duration, report: Option<&RecoveryReport>) {
    let (steps, ckpts, kib, busy) = match report {
        Some(r) => (
            r.steps_run.to_string(),
            r.stats.ckpts.to_string(),
            format!("{:.1}", r.stats.ckpt_bytes as f64 / 1024.0),
            fmt_dur(r.stats.ckpt_busy),
        ),
        None => ("-".into(), "0".into(), "0".into(), "-".into()),
    };
    table.row(vec![phase.to_string(), fmt_dur(wall), steps, ckpts, kib, busy]);
}

/// Checkpoint overhead and crash-recovery timing on Heat3D + histogram.
pub fn run(scale: Scale) -> Table {
    let edge = scale.pick(12, 32);
    let steps = scale.pick(8, 40);
    let coarse = (steps / 4).max(2);
    let kill_at = steps / 2;
    let data = render_steps(edge, steps);

    let mut table = Table::new(
        format!(
            "Fault tolerance — Heat3D {edge}\u{b3}, {steps} steps, histogram ({BUCKETS} buckets)"
        ),
        &["phase", "wall", "steps run", "ckpts", "ckpt KiB", "ckpt busy"],
    );

    // Overhead: bare vs checkpoint-every-step vs a coarser schedule.
    let (reference, bare_wall) = bare(&data);
    push_row(&mut table, "no checkpoints", bare_wall, None);
    let mut overhead = Vec::new();
    for every in [1, coarse] {
        let dir = scratch(&format!("every{every}"));
        let (report, out, wall) = recoverable(&data, &dir, every, FaultPlan::none());
        let report = report.expect("uninterrupted recoverable run");
        assert_eq!(out, reference, "checkpointing must not change the result");
        push_row(&mut table, &format!("checkpoint every {every}"), wall, Some(&report));
        overhead.push(format!(
            "every {every}: +{:.1}% of bare wall",
            report.stats.ckpt_busy.as_secs_f64() / bare_wall.as_secs_f64() * 100.0
        ));
        // lint:allow(no-fs-writes): benchmark scratch cleanup
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Recovery: kill at the midpoint, restart from the newest epoch.
    let dir = scratch("recovery");
    let (crashed, _, crashed_wall) = recoverable(&data, &dir, 1, FaultPlan::kill_rank(0, kill_at));
    crashed.expect_err("the fault plan must kill the run");
    let (resumed, out, resumed_wall) = recoverable(&data, &dir, 1, FaultPlan::none());
    let resumed = resumed.expect("restart");
    assert_eq!(resumed.resumed_from, Some(kill_at), "restart resumes at the fail-stop boundary");
    assert_eq!(out, reference, "recovered result must be bit-identical");
    push_row(&mut table, &format!("crashed at step {kill_at}"), crashed_wall, None);
    push_row(&mut table, "restart + replay", resumed_wall, Some(&resumed));
    // lint:allow(no-fs-writes): benchmark scratch cleanup
    let _ = std::fs::remove_dir_all(&dir);

    table.note(format!("checkpoint overhead — {}", overhead.join("; ")));
    table.note(format!(
        "recovery: restart replayed {} of {steps} steps in {} vs {} for a full rerun; \
         recovered histogram verified bit-identical to the uninterrupted run",
        resumed.steps_run,
        fmt_dur(resumed_wall),
        fmt_dur(bare_wall),
    ));
    table
}
