//! Fig. 5 — Smart vs Spark (here: MiniSpark, the RDD-architecture
//! comparator) on logistic regression, k-means, and histogram, with the
//! analytics thread count varied 1..8.
//!
//! Single-thread times are real; the thread sweep composes measured
//! component times per the crate-level methodology: Smart splits its
//! reduction, MiniSpark round-robins its measured stage tasks over
//! executors, and at full subscription MiniSpark's service threads steal
//! cycles from one executor (duty cycle measured, not assumed).

use crate::model::AppMeasurement;
use crate::util::{fmt_dur, fmt_ratio, time_it, Scale, Table};
use crate::workloads::measure_smart;
use smart_analytics::{Histogram, KMeans, LogisticRegression};
use smart_minispark::{histogram_spark, kmeans_spark, logistic_spark, SparkContext};
use smart_sim::{ClusteredEmulator, LabeledEmulator, NormalEmulator};
use std::time::Duration;

const MODELED_CORES: usize = 8;

/// Measure the service threads' duty cycle: the fraction of a core the
/// heartbeat burst consumes.
fn service_duty_cycle() -> f64 {
    let (_, burst) = time_it(|| {
        let mut acc = 0u64;
        for k in 0..20_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        std::hint::black_box(acc);
    });
    let period = burst + Duration::from_micros(500);
    burst.as_secs_f64() / period.as_secs_f64()
}

struct EnginePair {
    name: &'static str,
    smart: AppMeasurement,
    spark_stages: Vec<smart_minispark::StageStats>,
    spark_wall: Duration,
}

/// MiniSpark modeled wall time with `n` executors.
fn spark_time(pair: &EnginePair, n: usize, duty: f64) -> Duration {
    let stage_total: Duration = pair.spark_stages.iter().map(|s| s.modeled_wall(n)).sum();
    // Driver-side serial work: everything outside the instrumented stages.
    let instrumented: Duration =
        pair.spark_stages.iter().flat_map(|s| s.partition_busy.iter()).sum();
    let driver = pair.spark_wall.saturating_sub(instrumented);
    let mut total = stage_total + driver;
    if n >= MODELED_CORES {
        // Two service threads share a core with one executor; the stage
        // ends when that slowed executor does.
        total = Duration::from_secs_f64(total.as_secs_f64() * (1.0 + 2.0 * duty));
    }
    total
}

fn smart_time(m: &AppMeasurement, n: usize) -> Duration {
    m.node_time(n)
}

/// Regenerate Fig. 5 (all three panels in one table).
pub fn run(scale: Scale) -> Table {
    let hist_n = scale.pick(100_000, 1_000_000);
    let lr_records = scale.pick(1_600, 8_000);
    let km_points = scale.pick(500, 2_000);
    let partitions = 8;

    let mut pairs = Vec::new();

    // ---- logistic regression: 10 iterations, 15 dimensions --------------
    {
        let mut emu = LabeledEmulator::new(51, 15);
        let data = emu.step(lr_records);
        let smart = measure_smart(
            LogisticRegression::new(15, 0.1),
            16,
            Some(vec![0.0; 15]),
            10,
            false,
            1,
            &data,
        );
        let ctx = SparkContext::with_service_threads(1, 0);
        ctx.enable_stage_stats();
        let (_, spark_wall) = time_it(|| logistic_spark(&ctx, &data, 15, 0.1, 10, partitions));
        pairs.push(EnginePair {
            name: "logistic-regression",
            smart,
            spark_stages: ctx.take_stage_stats(),
            spark_wall,
        });
    }

    // ---- k-means: 8 centroids, 10 iterations, 64 dimensions -------------
    {
        let mut emu = ClusteredEmulator::new(52, 8, 64, 1.0);
        let data = emu.step(km_points);
        let init: Vec<f64> = data[..8 * 64].to_vec();
        let smart = measure_smart(KMeans::new(8, 64), 64, Some(init.clone()), 10, false, 8, &data);
        let ctx = SparkContext::with_service_threads(1, 0);
        ctx.enable_stage_stats();
        let (_, spark_wall) = time_it(|| kmeans_spark(&ctx, &data, 64, &init, 10, partitions));
        pairs.push(EnginePair {
            name: "k-means",
            smart,
            spark_stages: ctx.take_stage_stats(),
            spark_wall,
        });
    }

    // ---- histogram: 100 buckets ------------------------------------------
    {
        let mut emu = NormalEmulator::standard(53);
        let data = emu.step(hist_n);
        let smart = measure_smart(Histogram::new(-4.0, 4.0, 100), 1, None, 1, false, 100, &data);
        let ctx = SparkContext::with_service_threads(1, 0);
        ctx.enable_stage_stats();
        let (_, spark_wall) = time_it(|| histogram_spark(&ctx, &data, -4.0, 4.0, 100, partitions));
        pairs.push(EnginePair {
            name: "histogram",
            smart,
            spark_stages: ctx.take_stage_stats(),
            spark_wall,
        });
    }

    let duty = service_duty_cycle();
    let mut table = Table::new(
        "Fig. 5 — Smart vs MiniSpark (computation time of analytics)",
        &["app", "threads", "Smart", "MiniSpark", "Spark/Smart", "Smart speedup", "Spark speedup"],
    );

    for pair in &pairs {
        let smart1 = smart_time(&pair.smart, 1);
        let spark1 = spark_time(pair, 1, duty);
        for n in [1usize, 2, 4, 8] {
            let s = smart_time(&pair.smart, n);
            let p = spark_time(pair, n, duty);
            table.row(vec![
                pair.name.to_string(),
                n.to_string(),
                fmt_dur(s),
                fmt_dur(p),
                fmt_ratio(p.as_secs_f64() / s.as_secs_f64()),
                fmt_ratio(smart1.as_secs_f64() / s.as_secs_f64()),
                fmt_ratio(spark1.as_secs_f64() / p.as_secs_f64()),
            ]);
        }
    }

    table.note(format!(
        "LR: {lr_records} records x 15 dims, 10 iters; k-means: {km_points} points x 64 dims, \
         k=8, 10 iters; histogram: {hist_n} doubles, 100 buckets; {partitions} MiniSpark partitions."
    ));
    table.note(format!(
        "service-thread duty cycle measured at {:.1}% per thread; charged to MiniSpark at 8 threads.",
        duty * 100.0
    ));
    table.note("expected shape: Smart >=10x faster throughout (paper: 21x/62x/92x); Smart speedup near-linear to 8, MiniSpark flattens at 8.");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_order_of_magnitude_gap() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 12);
        // Single-thread ratio (column 4) must show a clear architectural
        // gap even at quick scale. k-means is the least dramatic case: its
        // 64-dim distance arithmetic is identical in both engines, so the
        // Rust-native comparison keeps only the architectural share of the
        // paper's 62x (the rest was the JVM). Performance ratios are only
        // meaningful in optimized builds.
        #[cfg(not(debug_assertions))]
        for (app_start, floor) in [(0usize, 3.0f64), (4, 2.0), (8, 3.0)] {
            let ratio: f64 =
                t.rows[app_start][4].trim_end_matches('x').parse().expect("ratio cell");
            assert!(ratio > floor, "row {app_start}: MiniSpark only {ratio}x slower");
        }
    }

    #[test]
    fn smart_speedup_grows_with_threads() {
        let t = run(Scale::Quick);
        // histogram rows are 8..12; speedup column 5 should increase.
        let s1: f64 = t.rows[8][5].trim_end_matches('x').parse().unwrap();
        let s8: f64 = t.rows[11][5].trim_end_matches('x').parse().unwrap();
        assert!(s8 > s1 * 3.0, "speedup should grow: {s1} -> {s8}");
    }

    #[test]
    fn duty_cycle_is_sane() {
        let d = service_duty_cycle();
        assert!(d > 0.0 && d < 0.9, "duty {d}");
    }
}
