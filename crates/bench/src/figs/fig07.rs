//! Fig. 7 — in-situ processing time with a varying number of nodes, on
//! Heat3D, for all nine analytics (strong scaling, 8 threads per node).
//!
//! Real components: the full Heat3D step (timed serially; its stencil cost
//! is uniform per plane, so a rank's slab costs its plane share), and every
//! app's reduction/combination over the actual per-rank partition for each
//! node count. Composed per the crate methodology with halo and allreduce
//! costs over the real message sizes.

use crate::model::{parallel_efficiency, ClusterModel};

use crate::util::{fmt_dur, fmt_pct, time_it, Scale, Table};
use crate::workloads::{measure_reduce_pair, measure_suite};
use smart_analytics::Histogram;
use smart_sim::Heat3D;
use std::time::Duration;

const THREADS_PER_NODE: usize = 8;

/// The paper writes ~10 GB per step across the cluster (1 TB / 100 steps);
/// our scaled-down field is smaller by a large factor F. Charging an
/// unscaled 25 µs-latency interconnect against microsecond-scale partitions
/// would make every figure latency-bound, which is not the regime the paper
/// measures — so communication costs are divided by the same data-parity
/// factor, preserving the paper's compute-to-communication ratio (see
/// DESIGN.md, substitutions).
const PAPER_STEP_BYTES: f64 = 1e12 / 100.0;

fn comm_parity(our_step_bytes: usize) -> u32 {
    (PAPER_STEP_BYTES / our_step_bytes as f64).max(1.0) as u32
}

/// Regenerate Fig. 7.
pub fn run(scale: Scale) -> Table {
    let (nx, ny, nz) = scale.pick((32, 32, 32), (64, 64, 64));
    let ranks_sweep = [4usize, 8, 16, 32];
    let model = ClusterModel::default();

    // One real simulated time-step to analyze, plus its serial cost.
    let mut sim = Heat3D::serial(nx, ny, nz, 0.1);
    sim.step_serial(); // warm the field so values spread
    let (_, sim_serial) = time_it(|| {
        sim.step_serial();
    });
    let data = sim.output().to_vec();
    let plane = nx * ny;

    let mut table = Table::new(
        "Fig. 7 — in-situ step time vs number of nodes on Heat3D (8 threads/node)",
        &["app", "4 nodes", "8 nodes", "16 nodes", "32 nodes", "efficiency@32"],
    );

    let mut efficiencies = Vec::new();
    let app_names: Vec<&'static str> =
        measure_suite(&data[..16], 0.0, 100.0).iter().map(|(n, _)| *n).collect();

    for (app_idx, app_name) in app_names.iter().enumerate() {
        let mut times: Vec<Duration> = Vec::new();
        for &ranks in &ranks_sweep {
            // Rank 0's slab: plane-aligned share of the global field.
            let planes_per_rank = nz / ranks;
            let part = planes_per_rank * plane;
            // Keep the LR record alignment.
            let part = (part / 16) * 16;
            let slice = &data[..part.max(16)];

            let suite = measure_suite(slice, 0.0, 100.0);
            let m = suite[app_idx].1;

            let sim_share = Duration::from_secs_f64(
                sim_serial.as_secs_f64() * planes_per_rank as f64
                    / nz as f64
                    / THREADS_PER_NODE as f64,
            );
            let parity = comm_parity(data.len() * 8);
            let halo = model.halo_time(plane * 8, ranks) / parity;
            let node = m.node_time(THREADS_PER_NODE);
            let comm = (m.cluster_time(&model, THREADS_PER_NODE, ranks) - node) / parity;
            times.push(sim_share + halo + node + comm);
        }
        let eff = parallel_efficiency(times[0], ranks_sweep[0], times[3], ranks_sweep[3]);
        efficiencies.push(eff);
        table.row(vec![
            app_name.to_string(),
            fmt_dur(times[0]),
            fmt_dur(times[1]),
            fmt_dur(times[2]),
            fmt_dur(times[3]),
            fmt_pct(eff),
        ]);
    }

    let avg = efficiencies.iter().sum::<f64>() / efficiencies.len() as f64;
    table.note(format!(
        "Heat3D {nx}x{ny}x{nz} strong-scaled; per-step time of one rank's slab + analytics + comm; \
         interconnect costs scaled by the data-parity factor {} (paper step = 10 GB vs ours).",
        comm_parity(data.len() * 8)
    ));
    table.note(format!(
        "average parallel efficiency at 32 nodes: {} (paper: 93% on average).",
        fmt_pct(avg)
    ));

    // Scalar-vs-kernel delta of the reduce hot loop on the full field —
    // the ablation the batched/SIMD kernels are gated on.
    let hist = Histogram::new(0.0, 100.0, 1200);
    let simd = hist.simd_enabled();
    let (kernel, scalar) = measure_reduce_pair(hist, 1, None, 1, false, 1200, &data);
    table.note(format!(
        "histogram reduce kernel {} vs scalar walk {} ({:.2}x, simd={})",
        fmt_dur(kernel),
        fmt_dur(scalar),
        scalar.as_secs_f64() / kernel.as_secs_f64().max(1e-12),
        if simd { "avx2" } else { "off" },
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_nine_apps() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn scaling_reduces_step_time() {
        let t = run(Scale::Quick);
        // For the heavier window apps, 8 nodes must beat 4 nodes. (At quick
        // scale 32 nodes leave only ~1k elements per rank, where the
        // modeled synchronization rightfully dominates; the Full run in
        // EXPERIMENTS.md is the paper-scale measurement.)
        for row in t.rows.iter().filter(|r| r[0].contains("median")) {
            let parse = |s: &str| -> f64 {
                if let Some(ms) = s.strip_suffix("ms") {
                    ms.parse::<f64>().unwrap() / 1e3
                } else if let Some(us) = s.strip_suffix("us") {
                    us.parse::<f64>().unwrap() / 1e6
                } else {
                    s.trim_end_matches('s').parse::<f64>().unwrap()
                }
            };
            assert!(parse(&row[2]) < parse(&row[1]) * 1.05, "{row:?}");
        }
    }
}
