//! Fig. 10 — time sharing vs space sharing on a many-core node (the
//! paper's 61-core Xeon Phi, 60 usable threads), for histogram, k-means
//! and moving median over Lulesh output, across core splits `n_m`
//! (n simulation threads, m analytics threads).
//!
//! Measured: the real MiniLulesh step and each app's real phase costs.
//! Modeled: thread composition on a 60-core node, with two paper-faithful
//! structural effects —
//!
//! * the simulation stops scaling on the many-core node (LULESH saturates
//!   well below 60 Phi cores; we cap its speedup at `SIM_SPEEDUP_CAP`),
//!   which is the whole reason space sharing can win;
//! * in space-sharing mode, simulation and analytics message passing
//!   serializes (`MPI_THREAD_MULTIPLE` big lock, §5.6), so the analytics'
//!   synchronization is charged twice — which is why sync-heavy histogram
//!   loses.
//!
//! One calibration, documented in EXPERIMENTS.md: real LULESH does far more
//! work per cell per step than our first-order Rusanov proxy, so the
//! simulation's measured step time is scaled until the sim : moving-median
//! ratio matches the paper's regime (simulation-dominated nodes).

use crate::model::ClusterModel;
use crate::util::{fmt_dur, time_it, Scale, Table};
use crate::workloads::{measure_smart, measure_suite};
use smart_sim::MiniLulesh;
use std::time::Duration;

const NODE_CORES: usize = 60;
const SIM_SPEEDUP_CAP: usize = 32;
const NODES: usize = 8;

fn sim_speedup(threads: usize) -> f64 {
    threads.min(SIM_SPEEDUP_CAP) as f64
}

struct NodeParts {
    sim_serial: Duration,
    ana: crate::model::AppMeasurement,
    comm_sim: Duration,
    comm_ana: Duration,
}

fn time_sharing(p: &NodeParts) -> Duration {
    Duration::from_secs_f64(p.sim_serial.as_secs_f64() / sim_speedup(NODE_CORES))
        + p.ana.node_time(NODE_CORES)
        + p.comm_sim
        + p.comm_ana
}

fn space_sharing(p: &NodeParts, sim_threads: usize, ana_threads: usize) -> Duration {
    let sim = Duration::from_secs_f64(p.sim_serial.as_secs_f64() / sim_speedup(sim_threads));
    let ana = p.ana.node_time(ana_threads);
    // Compute pipelines (producer/consumer overlap); message passing
    // serializes on the MPI lock, so the analytics side waits out the
    // simulation's concurrent calls (charged 1.5x: on average half of the
    // other side's traffic is in flight when the lock is requested).
    sim.max(ana) + p.comm_sim + p.comm_ana * 3 / 2
}

fn simulation_only(p: &NodeParts) -> Duration {
    Duration::from_secs_f64(p.sim_serial.as_secs_f64() / sim_speedup(NODE_CORES)) + p.comm_sim
}

/// Regenerate Fig. 10 (all three panels).
pub fn run(scale: Scale) -> Table {
    let edge = scale.pick(24, 32);
    let model = ClusterModel::default();

    let mut sim = MiniLulesh::serial(edge, 0.3);
    for _ in 0..3 {
        sim.step_serial();
    }
    let (_, sim_step) = time_it(|| {
        sim.step_serial();
    });
    let data_raw = sim.output().to_vec();
    let usable = (data_raw.len() / 16) * 16;
    let data = &data_raw[..usable];
    let (min, max) =
        data.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let max = max + 1e-9;

    // The three §5.6 apps with §5.4 parameters.
    let suite = measure_suite(data, min, max);
    let hist = suite.iter().find(|(n, _)| *n == "histogram").expect("hist").1;
    let km = suite.iter().find(|(n, _)| *n == "k-means").expect("km").1;
    // Moving median with the §5.4 window of 25.
    let median = measure_smart(
        smart_analytics::MovingMedian::new(25, data.len()),
        1,
        None,
        1,
        true,
        data.len(),
        data,
    );

    // Calibrate the simulation cost to the paper's regime: LULESH per-cell
    // work >> Rusanov per-cell work; scale so one simulation step costs
    // ~3.5 passes of the heaviest analytics. That reproduces the paper's
    // governing relationship — the node is simulation-dominated, so space
    // sharing wins for compute-heavy analytics by overlapping them with a
    // simulation that has stopped scaling.
    let heaviest = median.t1.max(km.t1).max(hist.t1);
    let substeps = (3.5 * heaviest.as_secs_f64() / sim_step.as_secs_f64()).ceil().max(1.0) as u32;
    let sim_serial = sim_step * substeps;

    let comm_sim = model.halo_time(edge * edge * 8 * 5, NODES)
        + model.allreduce_time(8, NODES, Duration::ZERO);

    let schemes = [(50usize, 10usize), (40, 20), (30, 30), (20, 40), (10, 50)];
    let mut table = Table::new(
        "Fig. 10 — time sharing vs space sharing on a 60-core node (per-step time)",
        &["app", "sim-only", "time-sharing", "50_10", "40_20", "30_30", "20_40", "10_50", "best"],
    );

    for (name, m) in [("histogram", hist), ("k-means", km), ("moving-median", median)] {
        let per_iter_merge = if m.iters > 0 { m.combine(1) / m.iters as u32 } else { m.combine(1) };
        let parts = NodeParts {
            sim_serial,
            ana: m,
            comm_sim,
            comm_ana: model.allreduce_time(m.global_bytes, NODES, per_iter_merge)
                * m.iters.max(1) as u32,
        };
        let ts = time_sharing(&parts);
        let space: Vec<Duration> =
            schemes.iter().map(|&(n, a)| space_sharing(&parts, n, a)).collect();

        let mut best_name = "time-sharing".to_string();
        let mut best = ts;
        for (i, &t) in space.iter().enumerate() {
            if t < best {
                best = t;
                best_name = format!("{}_{}", schemes[i].0, schemes[i].1);
            }
        }

        table.row(vec![
            name.to_string(),
            fmt_dur(simulation_only(&parts)),
            fmt_dur(ts),
            fmt_dur(space[0]),
            fmt_dur(space[1]),
            fmt_dur(space[2]),
            fmt_dur(space[3]),
            fmt_dur(space[4]),
            best_name,
        ]);
    }

    table.note(format!(
        "MiniLulesh edge {edge} x{substeps} substeps (sim cost calibrated to the paper's \
         simulation-dominated regime); {NODES} nodes; sim speedup capped at {SIM_SPEEDUP_CAP} \
         threads (Phi saturation); space sharing serializes MPI calls (analytics comm charged 1.5x)."
    ));
    table.note("expected shape: k-means and moving median best under a space-sharing split (paper: 50_10 +10%, 30_30 +48%); histogram best under time sharing (paper: space sharing 4.4% worse).");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_dur(s: &str) -> f64 {
        if let Some(ms) = s.strip_suffix("ms") {
            ms.parse::<f64>().unwrap() / 1e3
        } else if let Some(us) = s.strip_suffix("us") {
            us.parse::<f64>().unwrap() / 1e6
        } else {
            s.trim_end_matches('s').parse::<f64>().unwrap()
        }
    }

    #[test]
    fn quick_run_has_three_apps() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn compute_heavy_apps_prefer_space_sharing() {
        let t = run(Scale::Quick);
        let median_row = t.rows.iter().find(|r| r[0] == "moving-median").unwrap();
        assert_ne!(median_row[8], "time-sharing", "median should win under space sharing");
        // And the winning space scheme beats time sharing measurably.
        let ts = parse_dur(&median_row[2]);
        let best_space: f64 =
            median_row[3..8].iter().map(|s| parse_dur(s)).fold(f64::INFINITY, f64::min);
        assert!(best_space < ts);
    }
}
