//! One module per figure of the paper's evaluation section (§5), plus the
//! §5.2 memory-footprint and §5.3 lines-of-code measurements, plus the
//! beyond-the-paper placement comparison (`transit`), fault-tolerance
//! overhead/recovery measurement (`ftrec`), multi-tenant service-tier
//! ablation (`serve`), and the out-of-core spill-threshold ablation
//! (`spill`).

pub mod fig01;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod ft;
pub mod loc;
pub mod mem;
pub mod serve;
pub mod spill;
pub mod transit;

use crate::util::{Scale, Table};

/// An experiment entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(Scale) -> Table);

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("fig1", "in-situ vs offline k-means case study", fig01::run),
        ("fig5", "Smart vs (Mini)Spark", fig05::run),
        ("fig6", "Smart vs hand-coded low-level analytics", fig06::run),
        ("fig7", "node scaling on Heat3D (9 apps)", fig07::run),
        ("fig8", "thread scaling on Lulesh (9 apps)", fig08::run),
        ("fig9", "zero-copy vs copy time sharing", fig09::run),
        ("fig10", "time sharing vs space sharing", fig10::run),
        ("fig11", "early-emission window optimization", fig11::run),
        ("mem", "analytics memory footprint vs MiniSpark", mem::run),
        ("loc", "lines-of-code reduction vs low-level", loc::run),
        ("transit", "time sharing vs space sharing vs in-transit", transit::run),
        ("ftrec", "checkpoint overhead and recovery time", ft::run),
        ("serve", "multi-job service tier: shared scan vs N passes", serve::run),
        ("spill", "spill-threshold ablation: bounded-memory reduction + sketches", spill::run),
    ]
}
