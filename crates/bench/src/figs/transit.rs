//! Placement comparison — time sharing vs space sharing vs in-transit.
//!
//! The paper's evaluation stops at the two in-situ modes (§3.2); this
//! experiment adds the third placement (`smart_core::in_transit`) and
//! measures the axes that separate them:
//!
//! * **sim-visible step latency** — what one simulation rank waits per
//!   time-step before it may overwrite its output buffer: the whole
//!   analytics pass (time sharing), a copy into the circular buffer (space
//!   sharing), or wire serialization plus credit backpressure (in-transit);
//! * **bytes moved** — analytics traffic only: every rank runs an
//!   independent serial Heat3D slab so no halo exchange pollutes the
//!   counters;
//! * **staging buffer peak** — bytes of simulation output parked on the
//!   analytics side: zero for zero-copy time sharing, `capacity ×
//!   step-bytes` for the circular buffer, and credit-window-bounded for the
//!   streaming transport (measured high-water mark, not the bound).
//!
//! Workload: `RANKS` simulation ranks each owning an `edge³ / RANKS` slab,
//! histogram (32 buckets) as the analytics, 2 threads per scheduler.

use crate::util::{fmt_dur, time_it, Scale, Table};
use smart_analytics::Histogram;
use smart_comm::{run_cluster, CommConfig, TransportKind};
use smart_core::space::SpaceShared;
use smart_core::{
    run_in_transit, InTransitConfig, KeyMode, Placement, Producer, SchedArgs, Scheduler, Topology,
};
use smart_pool::shared_pool;
use smart_sim::Heat3D;
use std::time::Duration;

const RANKS: usize = 4;
const STAGERS: usize = 2;
const WINDOW: usize = 2;
const BUFFER_STEPS: usize = 2;
const THREADS: usize = 2;
const BUCKETS: usize = 32;
const R: f64 = 0.15;

/// One placement's measurements, worst rank where per-rank.
struct Measured {
    /// Mean per-step latency the slowest simulation rank observed.
    step_latency: Duration,
    /// Analytics bytes moved (combination and/or streaming transport).
    bytes_moved: u64,
    /// Peak bytes of simulation output buffered on the analytics side.
    staging_peak: u64,
}

fn scheduler() -> Scheduler<Histogram> {
    let pool = shared_pool(THREADS).expect("pool");
    Scheduler::new(Histogram::new(0.0, 100.0, BUCKETS), SchedArgs::new(THREADS, 1), pool)
        .expect("scheduler")
}

/// The rank-local slab: an independent serial Heat3D so the byte counters
/// see only analytics traffic.
fn slab(edge: usize) -> Heat3D {
    Heat3D::serial(edge, edge, edge / RANKS, R)
}

fn time_sharing(edge: usize, steps: usize) -> Measured {
    let per_rank = run_cluster(RANKS, |mut comm| {
        let mut sim = slab(edge);
        let mut sched = scheduler();
        let mut out = vec![0u64; BUCKETS];
        let (_, elapsed) = time_it(|| {
            for _ in 0..steps {
                sim.step_serial();
                sched.run_dist(&mut comm, sim.output(), &mut out).expect("run_dist");
            }
        });
        (elapsed / steps as u32, comm.sent_bytes())
    });
    Measured {
        step_latency: per_rank.iter().map(|r| r.0).max().unwrap(),
        bytes_moved: per_rank.iter().map(|r| r.1).sum(),
        staging_peak: 0,
    }
}

fn space_sharing(edge: usize, steps: usize) -> Measured {
    let step_bytes = (edge * edge * (edge / RANKS) * std::mem::size_of::<f64>()) as u64;
    let per_rank = run_cluster(RANKS, |mut comm| {
        let mut shared = SpaceShared::new(scheduler(), BUFFER_STEPS);
        let feeder = shared.feeder();
        smart_sync::thread::scope(|scope| {
            // The simulation task: steps and copies into the circular
            // buffer, blocking only when all `BUFFER_STEPS` slots are full.
            let sim_task = scope.spawn(move || {
                let mut sim = slab(edge);
                let (_, elapsed) = time_it(|| {
                    for _ in 0..steps {
                        sim.step_serial();
                        feeder.feed(sim.output()).expect("feed");
                    }
                });
                feeder.close();
                elapsed / steps as u32
            });
            let mut out = vec![0u64; BUCKETS];
            while shared.run_step_dist(&mut comm, &mut out).expect("run_step") {}
            sim_task.join().expect("sim task")
        })
    });
    let worst = per_rank.into_iter().max().unwrap();
    // `sent_bytes` is consumed inside the closure's communicator; the
    // combination traffic is identical to time sharing's, so re-measure it
    // is not worth a second run — the buffer is the differentiator here.
    Measured {
        step_latency: worst,
        bytes_moved: 0,
        staging_peak: BUFFER_STEPS as u64 * step_bytes * RANKS as u64,
    }
}

fn in_transit(edge: usize, steps: usize, kind: TransportKind) -> Measured {
    let comm = CommConfig { transport: Some(kind), ..CommConfig::default() };
    let outcome = run_in_transit(
        Topology::new(RANKS, STAGERS),
        InTransitConfig::with_window(WINDOW).with_comm(comm),
        KeyMode::Single,
        |prod: &mut Producer<f64>| {
            let mut sim = slab(edge);
            let (_, elapsed) = time_it(|| {
                for _ in 0..steps {
                    sim.step_serial();
                    prod.feed(0, sim.output()).expect("feed");
                }
            });
            Ok(elapsed / steps as u32)
        },
        |_s| Ok((scheduler(), vec![0u64; BUCKETS])),
    );
    let (producers, stagers) = outcome.into_result().expect("in-transit run");
    Measured {
        step_latency: producers.iter().map(|p| p.result).max().unwrap(),
        bytes_moved: stagers.iter().map(|s| s.stats.transit_bytes).sum(),
        staging_peak: stagers
            .iter()
            .map(|s| s.streams.iter().map(|rx| rx.buffered_bytes_peak).sum::<u64>())
            .sum(),
    }
}

/// Compare the three placements on the same simulation + analytics.
pub fn run(scale: Scale) -> Table {
    let edge = scale.pick(16, 48);
    let steps = scale.pick(8, 40);

    let placements = [
        Placement::TimeSharing,
        Placement::SpaceSharing { buffer_capacity: BUFFER_STEPS },
        Placement::InTransit { staging_ranks: STAGERS, window: WINDOW },
    ];
    let mut table = Table::new(
        format!("Placement comparison — Heat3D {edge}³/{RANKS} ranks, {steps} steps, histogram"),
        &["placement", "sim-visible step latency", "bytes moved", "staging buffer peak"],
    );
    let fmt_row = |label: String, m: &Measured| {
        vec![
            label,
            fmt_dur(m.step_latency),
            if m.bytes_moved == 0 {
                "(as time-sharing)".to_string()
            } else {
                format!("{} KiB", m.bytes_moved / 1024)
            },
            format!("{} KiB", m.staging_peak / 1024),
        ]
    };
    for placement in placements {
        let m = match placement {
            Placement::TimeSharing => time_sharing(edge, steps),
            Placement::SpaceSharing { .. } => space_sharing(edge, steps),
            Placement::InTransit { .. } => in_transit(edge, steps, TransportKind::InProcess),
        };
        table.row(fmt_row(placement.label().to_string(), &m));
    }
    // Transport ablation: the same in-transit pipeline with the
    // producer→stager streams and both combination universes on real
    // sockets — what the sim rank's step latency pays for leaving the
    // process (serialization is identical; the delta is syscalls + loopback
    // framing against the in-process row above).
    for (label, kind) in [
        ("in-transit (TCP loopback)", TransportKind::Tcp),
        ("in-transit (UDS)", TransportKind::Uds),
    ] {
        let m = in_transit(edge, steps, kind);
        table.row(fmt_row(label.to_string(), &m));
    }
    table.note(format!(
        "latency = slowest rank's mean step wall time before its output buffer is free; \
         space sharing buffers {BUFFER_STEPS} steps/rank, in-transit window = {WINDOW} \
         steps/producer ({STAGERS} staging ranks)"
    ));
    table.note(
        "bytes: time sharing counts global combination; in-transit counts the streaming \
         transport (staging-side combination runs on a separate universe)",
    );
    table.note(
        "transport rows rerun the in-transit placement with every universe on TCP loopback \
         or Unix domain sockets (SMART_TRANSPORT equivalents); results are bit-identical, \
         only the step latency moves",
    );
    table
}
