//! §5.2's memory-footprint comparison: Smart's analytics state vs the
//! RDD engine's, on the histogram workload. The paper reports Spark holding
//! >90% of a 12 GB node while Smart's analytics state is ~16 MB beyond the
//! > time-step itself.

use crate::util::{fmt_ratio, Scale, Table};
use smart_analytics::Histogram;
use smart_core::{SchedArgs, Scheduler};
use smart_memtrack::{fmt_bytes, MemScope};
use smart_minispark::{histogram_spark, SparkContext};
use smart_sim::NormalEmulator;

/// Regenerate the §5.2 memory comparison.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(100_000, 2_000_000);
    let mut emu = NormalEmulator::standard(77);
    let data = emu.step(n);
    let step_bytes = n * 8;

    // Smart: peak allocation beyond the (borrowed) time-step.
    let smart_peak = {
        let pool = smart_pool::shared_pool(1).expect("pool");
        let mut s = Scheduler::new(Histogram::new(-4.0, 4.0, 100), SchedArgs::new(1, 1), pool)
            .expect("scheduler");
        let mut out = vec![0u64; 100];
        let scope = MemScope::begin();
        s.run(&data, &mut out).expect("run");
        scope.finish().peak_above_entry
    };

    // MiniSpark: peak allocation of the same job.
    let spark_peak = {
        let ctx = SparkContext::with_service_threads(1, 0);
        let scope = MemScope::begin();
        let _ = histogram_spark(&ctx, &data, -4.0, 4.0, 100, 8);
        scope.finish().peak_above_entry
    };

    let mut table = Table::new(
        "§5.2 — analytics memory footprint, histogram on one time-step",
        &["engine", "time-step size", "peak analytics memory", "vs time-step"],
    );
    table.row(vec![
        "Smart".into(),
        fmt_bytes(step_bytes),
        fmt_bytes(smart_peak),
        fmt_ratio(smart_peak as f64 / step_bytes as f64),
    ]);
    table.row(vec![
        "MiniSpark".into(),
        fmt_bytes(step_bytes),
        fmt_bytes(spark_peak),
        fmt_ratio(spark_peak as f64 / step_bytes as f64),
    ]);
    if smart_memtrack::is_tracking() {
        table.note(format!(
            "MiniSpark/Smart peak ratio: {} (paper: Spark >90% of node RAM vs Smart's ~3% \
             including the step; the RDD engine materializes every emitted pair).",
            fmt_ratio(spark_peak as f64 / smart_peak.max(1) as f64)
        ));
    } else {
        table.note(
            "tracking allocator not registered: run the smart-bench binary for real numbers.",
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_two_engines() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "Smart");
        assert_eq!(t.rows[1][0], "MiniSpark");
    }
}
