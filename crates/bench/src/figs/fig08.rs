//! Fig. 8 — in-situ processing time with a varying number of threads per
//! node, on Lulesh output across 64 nodes, for all nine analytics.
//!
//! The per-node partition and every app's phase costs are measured for
//! real; threads divide the measured reduction (and the simulation update,
//! which parallelizes over planes), while the measured combination and the
//! modeled 64-rank synchronization do not scale with threads — which is
//! exactly why the paper's parallel efficiency lands at 59% for the light
//! apps and 79% for the compute-heavy window apps.

use crate::model::{parallel_efficiency, ClusterModel};
use crate::util::{fmt_dur, fmt_pct, time_it, Scale, Table};
use crate::workloads::{measure_reduce_pair, measure_suite};
use smart_analytics::Histogram;
use smart_sim::MiniLulesh;
use std::time::Duration;

const RANKS: usize = 64;

/// Data-parity communication scaling, as in Fig. 7: the paper's Lulesh run
/// puts ~168 MB per node-step (1 TB / 93 steps / 64 nodes); ours is smaller
/// by F, so communication is charged at 1/F to preserve the paper's
/// compute-to-communication ratio.
const PAPER_NODE_STEP_BYTES: f64 = 1e12 / 93.0 / 64.0;

/// Regenerate Fig. 8.
pub fn run(scale: Scale) -> Table {
    let edge = scale.pick(12, 24);
    let threads_sweep = [1usize, 2, 4, 8];
    let model = ClusterModel::default();

    let mut sim = MiniLulesh::serial(edge, 0.3);
    for _ in 0..3 {
        sim.step_serial(); // let the blast develop
    }
    let (_, sim_serial) = time_it(|| {
        sim.step_serial();
    });
    let data_raw = sim.output().to_vec();
    let usable = (data_raw.len() / 16) * 16;
    let data = &data_raw[..usable];
    let (min, max) = data.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
        (lo.min(v), hi.max(v.max(lo + 1e-9)))
    });

    let mut table = Table::new(
        "Fig. 8 — in-situ step time vs threads per node on Lulesh (64 nodes)",
        &["app", "1 thread", "2 threads", "4 threads", "8 threads", "efficiency@8"],
    );

    let suite = measure_suite(data, min, max + 1e-9);
    let plane_bytes = edge * edge * 8 * 5;

    let mut light_eff = Vec::new();
    let mut window_eff = Vec::new();
    for (idx, (app_name, m)) in suite.iter().enumerate() {
        let mut times: Vec<Duration> = Vec::new();
        let parity = (PAPER_NODE_STEP_BYTES / (data.len() * 8) as f64).max(1.0) as u32;
        for &threads in &threads_sweep {
            let sim_t = sim_serial / threads as u32;
            let halo = model.halo_time(plane_bytes, RANKS) / parity;
            let node = m.node_time(threads);
            let comm = (m.cluster_time(&model, threads, RANKS) - node) / parity;
            times.push(sim_t + halo + node + comm);
        }
        let eff = parallel_efficiency(times[0], 1, times[3], 8);
        if idx < 5 {
            light_eff.push(eff);
        } else {
            window_eff.push(eff);
        }
        table.row(vec![
            app_name.to_string(),
            fmt_dur(times[0]),
            fmt_dur(times[1]),
            fmt_dur(times[2]),
            fmt_dur(times[3]),
            fmt_pct(eff),
        ]);
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.note(format!(
        "MiniLulesh edge {edge} per node, 64 nodes; windows of 25; interconnect costs scaled \
         by the data-parity factor vs the paper's 168 MB node-steps."
    ));
    table.note(format!(
        "avg efficiency@8 — first five apps: {}, window apps: {} (paper: 59% / 79%).",
        fmt_pct(avg(&light_eff)),
        fmt_pct(avg(&window_eff)),
    ));
    table.note(
        "divergence note: the paper's light apps scale worse than its window apps because \
         low-arithmetic-intensity kernels saturate the node's memory bandwidth across 8 \
         threads — a hardware contention effect a calibrated single-core replay cannot \
         measure. Our replay reproduces the per-phase cost structure (reduction scales, \
         combination and synchronization do not) but not DRAM contention.",
    );

    // Scalar-vs-kernel delta of the reduce hot loop on this node's
    // partition, recorded alongside the figure (see Fig. 7's note too).
    let hist = Histogram::new(min, max + 1e-9, 1200);
    let simd = hist.simd_enabled();
    let (kernel, scalar) = measure_reduce_pair(hist, 1, None, 1, false, 1200, data);
    table.note(format!(
        "histogram reduce kernel {} vs scalar walk {} ({:.2}x, simd={})",
        fmt_dur(kernel),
        fmt_dur(scalar),
        scalar.as_secs_f64() / kernel.as_secs_f64().max(1e-12),
        if simd { "avx2" } else { "off" },
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_nine_apps() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn efficiencies_are_physical() {
        let t = run(Scale::Quick);
        let eff = |row: &Vec<String>| -> f64 { row[5].trim_end_matches('%').parse().unwrap() };
        for row in &t.rows {
            let e = eff(row);
            // Strong scaling of measured work: between "no scaling at all"
            // and slightly super-linear (timing noise).
            assert!((5.0..=115.0).contains(&e), "{row:?}");
        }
    }
}
