//! §5.3's programmability measurement: how much parallelization code the
//! Smart API eliminates, by comparing the hand-written low-level
//! implementations against the Smart application code for the same two
//! analytics.
//!
//! Sources are embedded at compile time so the count always reflects the
//! code actually built.

use crate::util::{fmt_pct, Scale, Table};

const LOWLEVEL_SRC: &str = include_str!("../../../baseline/src/lowlevel.rs");
const KMEANS_SRC: &str = include_str!("../../../analytics/src/kmeans.rs");
const LOGISTIC_SRC: &str = include_str!("../../../analytics/src/logistic.rs");

/// Count substantive code lines: strip tests, comments, and blanks.
fn code_lines(src: &str) -> usize {
    let body = src.split("#[cfg(test)]").next().unwrap_or(src);
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Lines of the named function's body (brace-balanced from its `fn` line).
fn fn_lines(src: &str, name: &str) -> usize {
    let needle = format!("fn {name}");
    let start = match src.find(&needle) {
        Some(s) => s,
        None => return 0,
    };
    let mut depth = 0i32;
    let mut lines = 0;
    let mut started = false;
    for line in src[start..].lines() {
        lines += 1;
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth == 0 {
            break;
        }
    }
    lines
}

/// Lines in a function body that touch parallelization machinery: thread
/// pools, split scheduling, per-thread partial buffers, merges, and the
/// communicator. These are exactly the lines Smart's sequential view
/// removes (the paper's "eliminated or converted into sequential code").
fn parallel_lines(src: &str, name: &str) -> usize {
    const KEYWORDS: &[&str] = &[
        "pool",
        "run_on_workers",
        "split_range",
        "partial",
        "local",
        "sync_buf",
        "allreduce",
        "num_threads",
        "comm",
        "ThreadPool",
        "tid",
        "range",
        "merge",
        "Vec<Vec<",
    ];
    let needle = format!("fn {name}");
    let start = match src.find(&needle) {
        Some(s) => s,
        None => return 0,
    };
    let mut depth = 0i32;
    let mut started = false;
    let mut count = 0;
    for line in src[start..].lines() {
        let t = line.trim();
        if !t.is_empty() && !t.starts_with("//") && KEYWORDS.iter().any(|k| t.contains(k)) {
            count += 1;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth == 0 {
            break;
        }
    }
    count
}

/// Regenerate the §5.3 lines-of-code table.
pub fn run(_scale: Scale) -> Table {
    let low_km = fn_lines(LOWLEVEL_SRC, "lowlevel_kmeans");
    let low_lr = fn_lines(LOWLEVEL_SRC, "lowlevel_logistic");
    let par_km = parallel_lines(LOWLEVEL_SRC, "lowlevel_kmeans");
    let par_lr = parallel_lines(LOWLEVEL_SRC, "lowlevel_logistic");
    let smart_km = code_lines(KMEANS_SRC);
    let smart_lr = code_lines(LOGISTIC_SRC);

    let mut table = Table::new(
        "§5.3 — programmability: low-level vs Smart application code",
        &[
            "app",
            "low-level fn lines",
            "of which parallel",
            "Smart app lines",
            "parallel code eliminated",
        ],
    );
    table.row(vec![
        "k-means".into(),
        low_km.to_string(),
        par_km.to_string(),
        smart_km.to_string(),
        fmt_pct(par_km as f64 / low_km as f64),
    ]);
    table.row(vec![
        "logistic-regression".into(),
        low_lr.to_string(),
        par_lr.to_string(),
        smart_lr.to_string(),
        fmt_pct(par_lr as f64 / low_lr as f64),
    ]);
    table.note("paper: 55% (k-means) / 69% (LR) of the low-level OpenMP/MPI lines are eliminated or become sequential under Smart.");
    table.note("the Smart app files also contain doc comments' worth of API (reduction object + callbacks) but zero threading, partitioning, or message-passing code.");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_sources_are_nonempty() {
        assert!(code_lines(LOWLEVEL_SRC) > 50);
        assert!(code_lines(KMEANS_SRC) > 50);
        assert!(code_lines(LOGISTIC_SRC) > 50);
    }

    #[test]
    fn fn_extraction_finds_both_functions() {
        assert!(fn_lines(LOWLEVEL_SRC, "lowlevel_kmeans") > 20);
        assert!(fn_lines(LOWLEVEL_SRC, "lowlevel_logistic") > 20);
        assert_eq!(fn_lines(LOWLEVEL_SRC, "nonexistent_fn"), 0);
    }

    #[test]
    fn table_renders() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
    }
}
