//! Fig. 9 — evaluating the zero-copy time-sharing design: Smart without an
//! input copy vs an implementation that copies each time-step before
//! analyzing it, as the memory pressure of the time-step grows.
//!
//! Fully real measurements on one rank: the copy variant is
//! `SchedArgs::with_copy_input(true)`, the memory footprints come from the
//! tracking allocator, and the "crash" is an [`smart_memtrack::Budget`]
//! violation — the reproduction of the paper's out-of-memory crash at a
//! 2 GB time-step on a 12 GB node.

use crate::util::{fmt_dur, fmt_ratio, time_it, Scale, Table};
use smart_analytics::{LogisticRegression, MutualInformation};
use smart_core::{Analytics, SchedArgs, Scheduler};
use smart_memtrack::{fmt_bytes, Budget, MemScope};
use smart_sim::{Heat3D, MiniLulesh};
use std::time::Duration;

struct Row {
    label: String,
    step_bytes: usize,
    zero_copy: Duration,
    copy: Duration,
    copy_peak: usize,
}

fn measure_pair<A>(
    make_app: impl Fn() -> A,
    extra: Option<A::Extra>,
    chunk: usize,
    iters: usize,
    data: &[f64],
    steps: usize,
) -> (Duration, Duration, usize)
where
    A: Analytics<In = f64>,
    A::Out: Default + Clone,
    A::Extra: Clone,
{
    let run_mode = |copy: bool| -> (Duration, usize) {
        let pool = smart_pool::shared_pool(1).expect("pool");
        let mut args = SchedArgs::new(1, chunk).with_iters(iters).with_copy_input(copy);
        if let Some(e) = extra.clone() {
            args = args.with_extra(e);
        }
        let mut s = Scheduler::new(make_app(), args, pool).expect("scheduler");
        let mut out: Vec<A::Out> = Vec::new();
        let scope = MemScope::begin();
        let (_, t) = time_it(|| {
            for _ in 0..steps {
                s.run(data, &mut out).expect("run");
            }
        });
        (t, scope.finish().peak_above_entry)
    };
    let (zero_copy, _) = run_mode(false);
    let (copy, copy_peak) = run_mode(true);
    (zero_copy, copy, copy_peak)
}

/// Regenerate Fig. 9 (both panels).
pub fn run(scale: Scale) -> Table {
    let steps = scale.pick(3, 2);

    let mut rows: Vec<Row> = Vec::new();

    // ---- (a) Heat3D + logistic regression, time-step size swept ---------
    let heat_nz: &[usize] = scale.pick(&[16, 32][..], &[64, 128, 192, 256][..]);
    let (hx, hy) = scale.pick((16, 16), (96, 96));
    for &nz in heat_nz {
        let mut sim = Heat3D::serial(hx, hy, nz, 0.1);
        let data = sim.step_serial().to_vec();
        let usable = (data.len() / 16) * 16;
        let (zc, cp, peak) = measure_pair(
            || LogisticRegression::new(15, 0.1),
            Some(vec![0.0; 15]),
            16,
            3,
            &data[..usable],
            steps,
        );
        rows.push(Row {
            label: format!("Heat3D+LR nz={nz}"),
            step_bytes: data.len() * 8,
            zero_copy: zc,
            copy: cp,
            copy_peak: peak,
        });
    }

    // ---- (b) Lulesh + mutual information, edge size swept ----------------
    let edges: &[usize] = scale.pick(&[12, 16][..], &[24, 32, 40, 48][..]);
    for &edge in edges {
        let mut sim = MiniLulesh::serial(edge, 0.3);
        sim.step_serial();
        let data = sim.output().to_vec();
        let usable = (data.len() / 2) * 2;
        let (min, max) = data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let (zc, cp, peak) = measure_pair(
            || MutualInformation::new((min, max + 1e-9, 100), (min, max + 1e-9, 100)),
            None,
            2,
            1,
            &data[..usable],
            steps,
        );
        rows.push(Row {
            label: format!("Lulesh+MI edge={edge}"),
            step_bytes: data.len() * 8,
            zero_copy: zc,
            copy: cp,
            copy_peak: peak,
        });
    }

    // The node's memory budget sits between the largest zero-copy footprint
    // and the largest copy footprint — the regime the paper's 12 GB node is
    // in when an 1.8 GB time-step fits but a copied 2 GB step crashes.
    let largest_step = rows.iter().map(|r| r.step_bytes).max().unwrap_or(0);
    let largest_copy_peak = rows.iter().map(|r| r.copy_peak).max().unwrap_or(0);
    let budget = Budget::new(largest_copy_peak.max(largest_step).saturating_sub(largest_step / 4));

    let mut table = Table::new(
        "Fig. 9 — zero-copy vs copy-based time sharing",
        &["workload", "step size", "zero-copy", "with copy", "copy slowdown", "copy verdict"],
    );
    for r in &rows {
        let verdict = if smart_memtrack::is_tracking() && budget.check(r.copy_peak).is_err() {
            "CRASH (over budget)".to_string()
        } else {
            "ok".to_string()
        };
        table.row(vec![
            r.label.clone(),
            fmt_bytes(r.step_bytes),
            fmt_dur(r.zero_copy),
            fmt_dur(r.copy),
            fmt_ratio(r.copy.as_secs_f64() / r.zero_copy.as_secs_f64()),
            verdict,
        ]);
    }
    table.note(format!(
        "memory budget {} (chosen between the largest zero-copy and copy footprints, as the \
         paper's 12 GB node sits between its 1.8 GB-step zero-copy and 2 GB-step copy cases).",
        fmt_bytes(budget.limit())
    ));
    if !smart_memtrack::is_tracking() {
        table.note("tracking allocator not registered in this process: footprints/crashes not evaluated (run the smart-bench binary).");
    }
    table.note("expected shape: copy variant slower, gap growing with step size; largest copied step exceeds the budget (paper: up to 11% and a crash at 2 GB).");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let slowdown: f64 = row[4].trim_end_matches('x').parse().unwrap();
            // Quick-scale runs are microseconds, so allow wide timing noise;
            // the Full-scale EXPERIMENTS.md run is the real measurement.
            assert!((0.1..100.0).contains(&slowdown), "{row:?}");
        }
    }
}
