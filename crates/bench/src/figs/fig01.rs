//! Fig. 1 — the motivating case study: in-situ vs offline (store-first-
//! analyze-after) k-means over Heat3D output, with the k-means iteration
//! count varying the amount of analytics computation.
//!
//! Everything here is measured for real; the only model is the storage
//! bandwidth. The paper's offline baseline writes 1 TB through a parallel
//! file system; this host's page cache would hide that cost, so the store
//! charges a 300 MB/s effective storage bandwidth (a modest parallel-FS
//! share per node) on top of the real file I/O it performs.

use crate::util::{fmt_dur, fmt_ratio, time_it, Scale, Table};
use smart_analytics::KMeans;
use smart_baseline::OfflineStore;
use smart_core::{SchedArgs, Scheduler};
use smart_sim::Heat3D;
use std::time::{Duration, Instant};

const STORAGE_BYTES_PER_SEC: f64 = 300e6;

/// Sleep off the difference between the modeled storage time for `bytes`
/// and the time the real I/O already took.
fn charge_storage(bytes: usize, actual: Duration) -> Duration {
    let modeled = Duration::from_secs_f64(bytes as f64 / STORAGE_BYTES_PER_SEC);
    if modeled > actual {
        smart_sync::thread::sleep(modeled - actual);
        modeled
    } else {
        actual
    }
}

fn kmeans_scheduler(iters: usize, threads: usize) -> Scheduler<KMeans> {
    let (k, dims) = (8, 4);
    let init: Vec<f64> =
        (0..k * dims).map(|i| ((i / dims) as f64 + 0.5) * 100.0 / k as f64).collect();
    let args = SchedArgs::new(threads, dims).with_extra(init).with_iters(iters);
    let pool = smart_pool::shared_pool(threads).expect("pool");
    Scheduler::new(KMeans::new(k, dims), args, pool).expect("scheduler")
}

/// Regenerate Fig. 1.
pub fn run(scale: Scale) -> Table {
    let (nx, ny, nz, steps) = scale.pick((24, 24, 16, 2), (48, 48, 32, 5));
    let iters_sweep: &[usize] = scale.pick(&[1, 10][..], &[1, 5, 10, 20][..]);

    let mut table = Table::new(
        "Fig. 1 — in-situ vs offline k-means on Heat3D (total processing time)",
        &["k-means iters", "in-situ", "offline", "offline I/O", "in-situ speedup"],
    );

    for &iters in iters_sweep {
        // ---- in-situ: analyze each time-step as it is produced ----------
        // Best of two runs: k-means timing is data-dependent enough that a
        // single pass is noisy at this scale.
        let run_insitu = || {
            let mut sim = Heat3D::serial(nx, ny, nz, 0.1);
            let mut smart = kmeans_scheduler(iters, 1);
            let mut out = vec![Vec::new(); 8];
            let started = Instant::now();
            for _ in 0..steps {
                let data = sim.step_serial();
                smart.run(data, &mut out).expect("in-situ run");
            }
            started.elapsed()
        };
        let insitu = run_insitu().min(run_insitu());

        // ---- offline: write every step, then read back and analyze ------
        let run_offline = || {
            let store = OfflineStore::temp(&format!("fig1-{iters}")).expect("store");
            let mut sim = Heat3D::serial(nx, ny, nz, 0.1);
            let mut io_total = Duration::ZERO;
            let started = Instant::now();
            for step in 0..steps {
                let data = sim.step_serial();
                let bytes = data.len() * 8;
                let (_, w) = time_it(|| store.write_step(0, step, data).expect("write"));
                io_total += charge_storage(bytes, w);
            }
            let mut smart = kmeans_scheduler(iters, 1);
            let mut out = vec![Vec::new(); 8];
            for step in 0..steps {
                let (data, r) = time_it(|| store.read_step(0, step).expect("read"));
                io_total += charge_storage(data.len() * 8, r);
                smart.run(&data, &mut out).expect("offline run");
            }
            let total = started.elapsed();
            store.destroy().expect("cleanup");
            (total, io_total)
        };
        let (offline, io) = {
            let a = run_offline();
            let b = run_offline();
            if a.0 <= b.0 {
                a
            } else {
                b
            }
        };

        table.row(vec![
            iters.to_string(),
            fmt_dur(insitu),
            fmt_dur(offline),
            fmt_dur(io),
            fmt_ratio(offline.as_secs_f64() / insitu.as_secs_f64()),
        ]);
    }

    table.note(format!(
        "Heat3D {nx}x{ny}x{nz}, {steps} steps, k-means k=8 dims=4; storage charged at 300 MB/s \
         (page cache would otherwise hide the parallel-FS cost the paper measures)."
    ));
    table.note("expected shape: in-situ wins big at low iteration counts; gap narrows as analytics compute grows (paper: up to 10.4x).");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_insitu_wins() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        // Speedup column must show in-situ at least as fast for the
        // low-iteration row (I/O dominates there).
        let speedup: f64 = t.rows[0][4].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 1.0, "in-situ should win: {speedup}");
    }

    #[test]
    fn storage_charge_enforces_floor() {
        let start = Instant::now();
        let charged = charge_storage(3_000_000, Duration::ZERO); // 10ms at 300MB/s
        assert!(charged >= Duration::from_millis(9));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }
}
