//! Fig. 11 — the early-emission optimization for window-based analytics,
//! against the same application with the trigger disabled
//! (`SchedArgs::with_trigger_disabled(true)`).
//!
//! Fully real, single rank: wall times, live reduction-object counts, and
//! tracked memory. The paper's crashes (a 1 GB Heat3D step / edge-200
//! Lulesh run kill the unoptimized version) reproduce as
//! [`smart_memtrack::Budget`] violations.

use crate::util::{fmt_dur, fmt_ratio, time_it, Scale, Table};
use smart_analytics::{MovingAverage, MovingMedian};
use smart_core::{Analytics, SchedArgs, Scheduler};
use smart_memtrack::{fmt_bytes, Budget, MemScope};
use smart_sim::{Heat3D, MiniLulesh};
use std::time::Duration;

struct Row {
    label: String,
    step_bytes: usize,
    with_trigger: Duration,
    without: Duration,
    objs_with: usize,
    objs_without: usize,
    peak_without: usize,
}

fn measure_pair<A>(
    make_app: impl Fn() -> A,
    data: &[f64],
) -> (Duration, Duration, usize, usize, usize)
where
    A: Analytics<In = f64, Out = f64, Extra = ()>,
{
    let run_mode = |disable: bool| -> (Duration, usize, usize) {
        let pool = smart_pool::shared_pool(1).expect("pool");
        let args = SchedArgs::new(1, 1).with_trigger_disabled(disable);
        let mut s = Scheduler::new(make_app(), args, pool).expect("scheduler");
        let mut out = vec![0.0f64; data.len()];
        let scope = MemScope::begin();
        let (_, t) = time_it(|| s.run2(data, &mut out).expect("run2"));
        let peak = scope.finish().peak_above_entry;
        (t, s.combination_map().len(), peak)
    };
    let (with_t, objs_with, _) = run_mode(false);
    let (without_t, objs_without, peak_without) = run_mode(true);
    (with_t, without_t, objs_with, objs_without, peak_without)
}

/// Regenerate Fig. 11 (both panels).
pub fn run(scale: Scale) -> Table {
    let mut rows: Vec<Row> = Vec::new();

    // ---- (a) Heat3D + moving average, window 7, step size swept ----------
    let heat_nz: &[usize] = scale.pick(&[16, 32][..], &[32, 64, 96, 128][..]);
    let (hx, hy) = scale.pick((16, 16), (64, 64));
    for &nz in heat_nz {
        let mut sim = Heat3D::serial(hx, hy, nz, 0.1);
        let data = sim.step_serial().to_vec();
        let n = data.len();
        let (wt, wo, ow, own, peak) = measure_pair(|| MovingAverage::new(7, n), &data);
        rows.push(Row {
            label: format!("Heat3D+moving-avg nz={nz}"),
            step_bytes: n * 8,
            with_trigger: wt,
            without: wo,
            objs_with: ow,
            objs_without: own,
            peak_without: peak,
        });
    }

    // ---- (b) Lulesh + moving median, window 11, edge size swept ----------
    let edges: &[usize] = scale.pick(&[10, 14][..], &[20, 28, 36, 44][..]);
    for &edge in edges {
        let mut sim = MiniLulesh::serial(edge, 0.3);
        sim.step_serial();
        let data = sim.output().to_vec();
        let n = data.len();
        let (wt, wo, ow, own, peak) = measure_pair(|| MovingMedian::new(11, n), &data);
        rows.push(Row {
            label: format!("Lulesh+moving-median edge={edge}"),
            step_bytes: n * 8,
            with_trigger: wt,
            without: wo,
            objs_with: ow,
            objs_without: own,
            peak_without: peak,
        });
    }

    // Budget between the two footprints at the largest size, as in Fig. 9.
    let largest_peak = rows.iter().map(|r| r.peak_without).max().unwrap_or(0);
    let budget = Budget::new(largest_peak.saturating_sub(largest_peak / 4));

    let mut table = Table::new(
        "Fig. 11 — early emission of reduction objects vs no trigger",
        &[
            "workload",
            "step size",
            "with trigger",
            "no trigger",
            "speedup",
            "live objs (with/without)",
            "no-trigger verdict",
        ],
    );
    for r in &rows {
        let verdict = if smart_memtrack::is_tracking() && budget.check(r.peak_without).is_err() {
            "CRASH (over budget)".to_string()
        } else {
            "ok".to_string()
        };
        table.row(vec![
            r.label.clone(),
            fmt_bytes(r.step_bytes),
            fmt_dur(r.with_trigger),
            fmt_dur(r.without),
            fmt_ratio(r.without.as_secs_f64() / r.with_trigger.as_secs_f64()),
            format!("{}/{}", r.objs_with, r.objs_without),
            verdict,
        ]);
    }
    table.note(format!(
        "budget {} (between the optimized and unoptimized footprints at the largest size, as the \
         paper's node is for its crashing 1 GB-step / edge-200 runs).",
        fmt_bytes(budget.limit())
    ));
    table.note("expected shape: trigger version faster with the gap growing in the input size; live reduction objects drop from O(input) to ~0 retained (paper: up to 5.6x / 5.2x, 10^6x fewer objects, crashes at the largest sizes).");
    if !smart_memtrack::is_tracking() {
        table.note("tracking allocator not registered: crash verdicts not evaluated (run the smart-bench binary).");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_version_retains_far_fewer_objects() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let (with, without) = row[5].split_once('/').unwrap();
            let with: usize = with.parse().unwrap();
            let without: usize = without.parse().unwrap();
            assert!(without > 100 * with.max(1), "{row:?}");
        }
    }

    #[test]
    fn trigger_version_is_not_slower() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            let speedup: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 0.8, "trigger should not lose: {row:?}");
        }
    }
}
