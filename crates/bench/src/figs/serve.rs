//! Service-tier scaling — shared-scan fan-out vs N independent passes.
//!
//! The paper runs one analytics job per simulation; the service tier
//! (`smart-serve`) runs many against one stream. This experiment measures
//! what the sharing buys, sweeping the job count N over a Heat3D stream
//! with three strategies on identical job fleets:
//!
//! * **N-pass** — the no-service baseline: N independent copy-input
//!   schedulers, each staging its own copy of every time-step before
//!   reducing (N stages + N reductions per step);
//! * **shared scan** — one `ServeDriver`: the step is staged once and all
//!   N jobs reduce against the same buffer (1 stage + N reductions);
//! * **shared + coalesced** — the N jobs additionally declare the same
//!   `CoalesceKey`, so the group leader reduces once and every member's
//!   output is demultiplexed from the shared combination map (1 stage +
//!   1 reduction).
//!
//! The staged-bytes columns come from the observer's byte counters: N-pass
//! staging grows linearly with N, the service tier's does not (the
//! equivalence suite asserts the invariance bit-exactly; this table shows
//! the wall-clock consequence).

use crate::util::{fmt_dur, time_it, Scale, Table};
use smart_analytics::Histogram;
use smart_core::{RunStats, SchedArgs, Scheduler, StepSpec};
use smart_pool::shared_pool;
use smart_serve::{CoalesceKey, JobSpec, Registry, RegistryConfig, ServeDriver, TenantQuota};
use smart_sim::Heat3D;
use std::time::Duration;

const THREADS: usize = 2;
const BUCKETS: usize = 64;
const R: f64 = 0.15;

fn stream(edge: usize, steps: usize) -> Vec<Vec<f64>> {
    let mut sim = Heat3D::serial(edge, edge, edge, R);
    (0..steps).map(|_| sim.step_serial().to_vec()).collect()
}

/// N independent copy-input schedulers, each staging every step for
/// itself. Returns (total wall, staged bytes over the run).
fn n_pass(steps: &[Vec<f64>], n: usize) -> (Duration, u64) {
    let mut scheds: Vec<Scheduler<Histogram>> = (0..n)
        .map(|_| {
            let pool = shared_pool(THREADS).expect("pool");
            Scheduler::new(
                Histogram::new(0.0, 100.0, BUCKETS),
                SchedArgs::new(THREADS, 1).with_copy_input(true),
                pool,
            )
            .expect("scheduler")
        })
        .collect();
    let mut outs = vec![vec![0u64; BUCKETS]; n];
    let mut stats = RunStats::default();
    let (_, elapsed) = time_it(|| {
        for step in steps {
            for (sched, out) in scheds.iter_mut().zip(&mut outs) {
                let parts = [(0usize, step.as_slice())];
                sched.execute_with(StepSpec::new(&parts), out, &mut stats).expect("execute");
            }
        }
    });
    (elapsed, stats.staged_bytes)
}

/// One `ServeDriver` fanning every step out to N jobs over one staging
/// pass. Returns (total wall, staged bytes over the run).
fn serve_fleet(steps: &[Vec<f64>], n: usize, coalesce: bool) -> (Duration, u64) {
    let registry: Registry<f64> = Registry::new(RegistryConfig { max_active: n.max(1) });
    registry.add_tenant("bench", TenantQuota::unlimited());
    let key = CoalesceKey::new("histogram", "0:100:64");
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let mut spec = JobSpec::new(
                Histogram::new(0.0, 100.0, BUCKETS),
                SchedArgs::new(THREADS, 1),
                BUCKETS,
            )
            .with_tenant("bench");
            if coalesce {
                spec = spec.with_coalesce(key.clone());
            }
            registry.submit(spec).expect("submit")
        })
        .collect();
    let mut driver = ServeDriver::new(registry, shared_pool(THREADS).expect("pool"));
    driver.set_collect_stats(true);
    let (_, elapsed) = time_it(|| {
        for step in steps {
            driver.step(&[(0, step)], None).expect("step");
        }
    });
    let stats = driver.finish();
    for h in handles {
        h.join().expect("job");
    }
    (elapsed, stats.staged_bytes)
}

/// Sweep the job count: N passes vs shared scan vs shared + coalesced.
pub fn run(scale: Scale) -> Table {
    let edge = scale.pick(12, 32);
    let steps = scale.pick(4, 16);
    let stream = stream(edge, steps);
    let step_bytes = stream[0].len() * std::mem::size_of::<f64>();

    let mut table = Table::new(
        format!(
            "Service tier — shared scan vs N passes, Heat3D {edge}³, {steps} steps, \
             histogram ({BUCKETS} buckets)"
        ),
        &["jobs", "N-pass", "shared scan", "shared+coalesced", "staged (N-pass)", "staged (serve)"],
    );
    for n in [1usize, 2, 4, 8] {
        let (base, base_staged) = n_pass(&stream, n);
        let (shared, shared_staged) = serve_fleet(&stream, n, false);
        let (coal, _) = serve_fleet(&stream, n, true);
        table.row(vec![
            n.to_string(),
            fmt_dur(base),
            fmt_dur(shared),
            fmt_dur(coal),
            format!("{} KiB", base_staged / 1024),
            format!("{} KiB", shared_staged / 1024),
        ]);
    }
    table.note(format!(
        "one time-step = {} KiB; N-pass stages N copies of it, the service tier stages one \
         regardless of N (observer byte counters)",
        step_bytes / 1024
    ));
    table.note(
        "all three strategies produce bit-identical per-job results \
         (crates/serve/tests/equivalence.rs)",
    );
    table
}
