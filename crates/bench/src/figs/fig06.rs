//! Fig. 6 — Smart vs hand-written low-level (MPI+OpenMP-style) analytics:
//! k-means and logistic regression over 8..64 ranks.
//!
//! Both sides' per-rank compute is measured for real on the rank's data
//! share; the cluster composition charges the α–β model over each side's
//! *actual* synchronization payload — Smart ships serialized reduction-map
//! entries (its measured `global_bytes`), the low-level code ships one
//! contiguous `f64` buffer. That difference is precisely the overhead the
//! paper attributes to Smart (§5.3, up to 9% on k-means).

use crate::model::{AppMeasurement, ClusterModel};
use crate::util::{fmt_dur, fmt_pct, time_it, Scale, Table};
use crate::workloads::measure_smart;
use smart_analytics::{KMeans, LogisticRegression};
use smart_baseline::{lowlevel_kmeans, lowlevel_logistic};
use smart_pool::ThreadPool;
use smart_sim::{ClusteredEmulator, LabeledEmulator};
use std::time::Duration;

const THREADS_PER_NODE: usize = 8;

struct Side {
    node_compute: Duration,
    sync_bytes: usize,
    per_round_merge: Duration,
    iters: usize,
}

fn cluster_time(side: &Side, model: &ClusterModel, ranks: usize) -> Duration {
    side.node_compute
        + model.allreduce_time(side.sync_bytes, ranks, side.per_round_merge)
            * side.iters.max(1) as u32
}

/// Time merging two contiguous f64 buffers of `len` (the low-level side's
/// per-round reduce work).
fn vec_merge_cost(len: usize) -> Duration {
    let a = vec![1.0f64; len];
    let mut b = vec![2.0f64; len];
    let (_, d) = time_it(|| {
        for (x, y) in b.iter_mut().zip(&a) {
            *x += y;
        }
        std::hint::black_box(&b);
    });
    d
}

/// Regenerate Fig. 6.
pub fn run(scale: Scale) -> Table {
    let div = scale.pick(10, 1);
    let km_points_total = 40_000 / div;
    let lr_records_total = 40_000 / div;
    let iters = 10;
    let model = ClusterModel::default();

    let mut table = Table::new(
        "Fig. 6 — Smart vs hand-coded low-level analytics (per-step time)",
        &["app", "ranks", "Smart", "low-level", "Smart overhead"],
    );

    let mut emu_km = ClusteredEmulator::new(61, 8, 64, 1.0);
    let km_data = emu_km.step(km_points_total);
    let km_init: Vec<f64> = km_data[..8 * 64].to_vec();

    let mut emu_lr = LabeledEmulator::new(62, 15);
    let lr_data = emu_lr.step(lr_records_total);

    for &ranks in &[8usize, 16, 32, 64] {
        // ---- k-means -----------------------------------------------------
        {
            let share = (km_points_total / ranks) * 64;
            let slice = &km_data[..share];
            let m: AppMeasurement = measure_smart(
                KMeans::new(8, 64),
                64,
                Some(km_init.clone()),
                iters,
                false,
                8,
                slice,
            );
            let smart_side = Side {
                node_compute: m.node_time(THREADS_PER_NODE),
                sync_bytes: m.global_bytes,
                per_round_merge: m.combine(1) / iters as u32,
                iters,
            };

            let pool = ThreadPool::new(1).expect("pool");
            let (_, low_t1) = time_it(|| {
                lowlevel_kmeans(&pool, None, slice, 64, 8, &km_init, iters, 1).expect("lowlevel")
            });
            let buf_len = 8 * 64 + 8;
            let low_side = Side {
                node_compute: low_t1 / THREADS_PER_NODE as u32,
                sync_bytes: buf_len * 8,
                per_round_merge: vec_merge_cost(buf_len),
                iters,
            };

            let s = cluster_time(&smart_side, &model, ranks);
            let l = cluster_time(&low_side, &model, ranks);
            table.row(vec![
                "k-means".into(),
                ranks.to_string(),
                fmt_dur(s),
                fmt_dur(l),
                fmt_pct(s.as_secs_f64() / l.as_secs_f64() - 1.0),
            ]);
        }

        // ---- logistic regression ------------------------------------------
        {
            let share = (lr_records_total / ranks) * 16;
            let slice = &lr_data[..share];
            let m = measure_smart(
                LogisticRegression::new(15, 0.1),
                16,
                Some(vec![0.0; 15]),
                iters,
                false,
                1,
                slice,
            );
            let smart_side = Side {
                node_compute: m.node_time(THREADS_PER_NODE),
                sync_bytes: m.global_bytes,
                per_round_merge: m.combine(1) / iters as u32,
                iters,
            };

            let pool = ThreadPool::new(1).expect("pool");
            let (_, low_t1) = time_it(|| {
                lowlevel_logistic(&pool, None, slice, 15, 0.1, iters, 1).expect("lowlevel")
            });
            let buf_len = 16;
            let low_side = Side {
                node_compute: low_t1 / THREADS_PER_NODE as u32,
                sync_bytes: buf_len * 8,
                per_round_merge: vec_merge_cost(buf_len),
                iters,
            };

            let s = cluster_time(&smart_side, &model, ranks);
            let l = cluster_time(&low_side, &model, ranks);
            table.row(vec![
                "logistic-regression".into(),
                ranks.to_string(),
                fmt_dur(s),
                fmt_dur(l),
                fmt_pct(s.as_secs_f64() / l.as_secs_f64() - 1.0),
            ]);
        }
    }

    table.note(format!(
        "{km_points_total} k-means points (64 dims, k=8) and {lr_records_total} LR records \
         (15 dims), 10 iterations, strong-scaled over ranks; {THREADS_PER_NODE} threads/node."
    ));
    table.note("expected shape: Smart within ~10% of hand-coded; k-means gap > LR gap (map serialization vs a single tiny object) — paper: <=9% / unnoticeable.");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_all_rows_and_modest_overhead() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        // Overhead percentages are only meaningful in optimized builds
        // (debug builds distort the two implementations very differently).
        #[cfg(not(debug_assertions))]
        for row in &t.rows {
            let pct: f64 = row[4].trim_end_matches('%').parse().expect("overhead cell");
            assert!(pct < 60.0, "{}: Smart overhead {pct}% is out of band", row[0]);
            assert!(pct > -60.0, "{}: low-level should not lose badly: {pct}%", row[0]);
        }
    }
}
