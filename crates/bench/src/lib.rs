//! # smart-bench
//!
//! The evaluation harness: one module per figure of the Smart paper's §5,
//! each regenerating the same rows/series the paper reports.
//!
//! ## Measurement methodology on small hosts
//!
//! The paper's testbed is a 512-core multi-core cluster and an 8-node Xeon
//! Phi cluster; this reproduction routinely runs on a laptop-class host (CI
//! machines may expose a *single* core). Wall-clock alone cannot exhibit
//! parallel speedup there, so the harness uses a **calibrated replay**
//! (DESIGN.md, substitutions):
//!
//! * every *serial* component — reduction over a split, a combination
//!   merge, a simulation slab update, a MiniSpark stage task — is **really
//!   executed and timed** (busy time, single-threaded, unoversubscribed);
//! * parallel composition is modeled structurally: a phase ends when its
//!   busiest worker does (`max` over measured split times), pipelined
//!   producer/consumer stages overlap (`max`), sequential phases add;
//! * communication is charged with the α–β model of
//!   [`smart_comm::CostModel`] over the *real* serialized byte counts
//!   reported by `Scheduler::last_stats`.
//!
//! Figures that do not need parallelism (Fig. 1, Fig. 9, Fig. 11, the
//! memory comparison) are measured entirely for real.

pub mod figs;
pub mod model;
pub mod record;
pub mod util;
pub mod workloads;

pub use record::BenchRecord;
pub use util::{Scale, Table};
