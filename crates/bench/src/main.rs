//! `smart-bench` — regenerate the Smart paper's evaluation figures.
//!
//! ```text
//! smart-bench all [--quick] [--markdown]
//! smart-bench fig1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|mem|loc [--quick] [--markdown]
//! smart-bench list
//! smart-bench check [file...]       # validate committed BENCH_*.json records
//! ```

use smart_bench::figs;
use smart_bench::record::BenchRecord;
use smart_bench::util::{Scale, Table};

// Real memory numbers for Figs. 9/11 and the §5.2 comparison.
#[global_allocator]
static ALLOC: smart_memtrack::TrackingAlloc = smart_memtrack::TrackingAlloc::new();

/// Emit the table in the requested formats; with `--json` also persist a
/// versioned `BENCH_<fig>.json` record next to the working directory.
fn emit(id: &str, table: &Table, scale: Scale, markdown: bool, json: bool) {
    if markdown {
        print!("{}", table.render_markdown());
    } else {
        table.print();
    }
    if json {
        let scale_name = if scale == Scale::Quick { "quick" } else { "full" };
        let simd = if std::env::var_os("SMART_NO_SIMD").is_some_and(|v| v != "0") {
            "disabled"
        } else {
            "auto"
        };
        let params = [("scale", scale_name.to_string()), ("simd", simd.to_string())];
        let record = BenchRecord::capture(id, &params, table);
        match record.write_to(std::path::Path::new(".")) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", record.file_name());
                std::process::exit(1);
            }
        }
    }
}

/// Validate one committed `BENCH_<fig>.json` record: schema version, fig
/// id matching the file name, and a non-empty sample table. Textual
/// checks against the shapes `BenchRecord::to_json` emits — enough for CI
/// to catch a schema drift or a truncated check-in without a JSON parser.
fn check_record(path: &std::path::Path) -> Result<(), String> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
    let fig = name
        .strip_prefix("BENCH_")
        .and_then(|n| n.strip_suffix(".json"))
        .ok_or_else(|| format!("{name}: not a BENCH_<fig>.json file"))?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("{name}: {e}"))?;
    let version = format!("\"schema_version\": {},", smart_bench::record::SCHEMA_VERSION);
    if !body.contains(&version) {
        return Err(format!("{name}: missing or wrong schema_version (want {version})"));
    }
    if !body.contains(&format!("\"fig\": \"{fig}\"")) {
        return Err(format!("{name}: fig id does not match file name `{fig}`"));
    }
    for field in ["\"rev\": \"", "\"date_unix\": ", "\"headers\": [\"", "\"rows\": ["] {
        if !body.contains(field) {
            return Err(format!("{name}: missing field {field}"));
        }
    }
    let rows_empty = body.contains("\"rows\": [\n    ]") || body.contains("\"rows\": []");
    if rows_empty {
        return Err(format!("{name}: sample table has no rows"));
    }
    Ok(())
}

/// `check [file...]` — validate records (default: every `BENCH_*.json` in
/// the working directory). Exits non-zero on the first malformed record.
fn check(files: &[String]) {
    let paths: Vec<std::path::PathBuf> = if files.is_empty() {
        let mut found: Vec<_> = std::fs::read_dir(".")
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        found
    } else {
        files.iter().map(std::path::PathBuf::from).collect()
    };
    if paths.is_empty() {
        eprintln!("no BENCH_*.json records found");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_record(path) {
            Ok(()) => println!("ok {}", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let command = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);

    let experiments = figs::all();

    match command {
        None | Some("help") | Some("--help") => {
            eprintln!("usage: smart-bench <experiment|all|list> [--quick] [--markdown] [--json]");
            eprintln!("experiments:");
            for (id, desc, _) in &experiments {
                eprintln!("  {id:<6} {desc}");
            }
        }
        Some("list") => {
            for (id, desc, _) in &experiments {
                println!("{id:<6} {desc}");
            }
        }
        Some("check") => {
            let files: Vec<String> = args
                .iter()
                .skip_while(|a| a.as_str() != "check")
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .collect();
            check(&files);
        }
        Some("all") => {
            for (id, _, runner) in &experiments {
                eprintln!("running {id} ...");
                let table = runner(scale);
                emit(id, &table, scale, markdown, json);
            }
        }
        Some(id) => match experiments.iter().find(|(eid, _, _)| *eid == id) {
            Some((_, _, runner)) => {
                let table = runner(scale);
                emit(id, &table, scale, markdown, json);
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `smart-bench list`");
                std::process::exit(2);
            }
        },
    }
}
