//! `smart-bench` — regenerate the Smart paper's evaluation figures.
//!
//! ```text
//! smart-bench all [--quick] [--markdown]
//! smart-bench fig1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|mem|loc [--quick] [--markdown]
//! smart-bench list
//! ```

use smart_bench::figs;
use smart_bench::util::Scale;

// Real memory numbers for Figs. 9/11 and the §5.2 comparison.
#[global_allocator]
static ALLOC: smart_memtrack::TrackingAlloc = smart_memtrack::TrackingAlloc::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let command = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);

    let experiments = figs::all();

    match command {
        None | Some("help") | Some("--help") => {
            eprintln!("usage: smart-bench <experiment|all|list> [--quick] [--markdown]");
            eprintln!("experiments:");
            for (id, desc, _) in &experiments {
                eprintln!("  {id:<6} {desc}");
            }
        }
        Some("list") => {
            for (id, desc, _) in &experiments {
                println!("{id:<6} {desc}");
            }
        }
        Some("all") => {
            for (id, _, runner) in &experiments {
                eprintln!("running {id} ...");
                let table = runner(scale);
                if markdown {
                    print!("{}", table.render_markdown());
                } else {
                    table.print();
                }
            }
        }
        Some(id) => match experiments.iter().find(|(eid, _, _)| *eid == id) {
            Some((_, _, runner)) => {
                let table = runner(scale);
                if markdown {
                    print!("{}", table.render_markdown());
                } else {
                    table.print();
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `smart-bench list`");
                std::process::exit(2);
            }
        },
    }
}
