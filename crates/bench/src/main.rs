//! `smart-bench` — regenerate the Smart paper's evaluation figures.
//!
//! ```text
//! smart-bench all [--quick] [--markdown]
//! smart-bench fig1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|mem|loc [--quick] [--markdown]
//! smart-bench list
//! ```

use smart_bench::figs;
use smart_bench::record::BenchRecord;
use smart_bench::util::{Scale, Table};

// Real memory numbers for Figs. 9/11 and the §5.2 comparison.
#[global_allocator]
static ALLOC: smart_memtrack::TrackingAlloc = smart_memtrack::TrackingAlloc::new();

/// Emit the table in the requested formats; with `--json` also persist a
/// versioned `BENCH_<fig>.json` record next to the working directory.
fn emit(id: &str, table: &Table, scale: Scale, markdown: bool, json: bool) {
    if markdown {
        print!("{}", table.render_markdown());
    } else {
        table.print();
    }
    if json {
        let scale_name = if scale == Scale::Quick { "quick" } else { "full" };
        let simd = if std::env::var_os("SMART_NO_SIMD").is_some_and(|v| v != "0") {
            "disabled"
        } else {
            "auto"
        };
        let params = [("scale", scale_name.to_string()), ("simd", simd.to_string())];
        let record = BenchRecord::capture(id, &params, table);
        match record.write_to(std::path::Path::new(".")) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", record.file_name());
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let command = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);

    let experiments = figs::all();

    match command {
        None | Some("help") | Some("--help") => {
            eprintln!("usage: smart-bench <experiment|all|list> [--quick] [--markdown] [--json]");
            eprintln!("experiments:");
            for (id, desc, _) in &experiments {
                eprintln!("  {id:<6} {desc}");
            }
        }
        Some("list") => {
            for (id, desc, _) in &experiments {
                println!("{id:<6} {desc}");
            }
        }
        Some("all") => {
            for (id, _, runner) in &experiments {
                eprintln!("running {id} ...");
                let table = runner(scale);
                emit(id, &table, scale, markdown, json);
            }
        }
        Some(id) => match experiments.iter().find(|(eid, _, _)| *eid == id) {
            Some((_, _, runner)) => {
                let table = runner(scale);
                emit(id, &table, scale, markdown, json);
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `smart-bench list`");
                std::process::exit(2);
            }
        },
    }
}
