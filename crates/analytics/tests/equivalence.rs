//! Kernel/backend equivalence suite.
//!
//! The batched-reduce contract (see `Analytics::reduce_batch`) is that a
//! kernel must be **bit-identical** to the classic per-chunk
//! `gen_key`/`accumulate` walk, and the dense RedMap backend must be
//! bit-identical to the hash backend. This suite pins that contract for
//! every analytics application: for each thread count, the four
//! (scalar-reduce × dense-maps) knob combinations must produce exactly the
//! same wire-serialized combination map and output — compared as bytes, so
//! even a single ULP of floating-point divergence (or a NaN payload flip)
//! fails the test.
//!
//! Thread counts are compared *within*, not across: changing the thread
//! count changes the merge association, which is allowed to change FP
//! results; the kernels are not.

use serde::Serialize;
use smart_analytics::{
    Dims3, GaussianSmoother, Grid3DAggregation, GridAggregation, Histogram, KMeans, KnnSmoother,
    LogisticRegression, Moments, MovingAverage, MovingMedian, MutualInformation, SavitzkyGolay,
    ValueRange,
};
use smart_core::{Analytics, SchedArgs, Scheduler};

/// All four knob combinations; `(true, false)` — classic walk over hash
/// maps — is the reference the other three must match byte for byte.
const KNOBS: [(bool, bool); 4] = [(true, false), (false, false), (true, true), (false, true)];

/// Run one configuration and fingerprint it: wire bytes of the sorted
/// combination-map entries plus wire bytes of the output slice.
fn fingerprint<A>(
    app: A,
    args: SchedArgs<A::Extra>,
    data: &[A::In],
    out_len: usize,
    multi: bool,
    scalar: bool,
    dense: bool,
) -> (Vec<u8>, Vec<u8>)
where
    A: Analytics,
    A::In: Clone,
    A::Red: Serialize,
    A::Out: Default + Clone + Serialize,
{
    let pool = smart_pool::shared_pool(4).unwrap();
    let mut s = Scheduler::new(app, args, pool).unwrap();
    s.set_scalar_reduce(scalar);
    s.set_dense_maps(dense);
    let mut out = vec![A::Out::default(); out_len];
    if multi {
        s.run2(data, &mut out).unwrap();
    } else {
        s.run(data, &mut out).unwrap();
    }
    (
        smart_wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap(),
        smart_wire::to_bytes(&out).unwrap(),
    )
}

/// Drive `make` through every (threads × knobs) cell and demand
/// bit-identity within each thread count.
fn assert_knob_equivalence<A, F>(label: &str, data: &[A::In], out_len: usize, multi: bool, make: F)
where
    A: Analytics,
    A::In: Clone,
    A::Red: Serialize,
    A::Out: Default + Clone + Serialize,
    F: Fn(usize) -> (A, SchedArgs<A::Extra>),
{
    for threads in [1, 2, 4] {
        let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
        for (scalar, dense) in KNOBS {
            let (app, args) = make(threads);
            let got = fingerprint(app, args, data, out_len, multi, scalar, dense);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    &got, r,
                    "{label}: scalar={scalar} dense={dense} threads={threads} \
                     diverged from the classic hash walk"
                ),
            }
        }
    }
}

/// Mixed payload crossing several reduce batches (BATCH_CHUNKS = 4096),
/// with a length that leaves a SIMD tail and values exercising every
/// routing case: NaN, ±inf, subnormals, range boundaries.
fn adversarial_f64(n: usize) -> Vec<f64> {
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        -0.0,
        0.0,
    ];
    (0..n)
        .map(|i| {
            if i % 97 == 0 {
                specials[i % specials.len()]
            } else {
                ((i * 37) % 2001) as f64 / 10.0 - 100.0
            }
        })
        .collect()
}

/// Smooth finite payload for the window/stat apps.
fn wave(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37).sin() * 50.0 + (i % 13) as f64).collect()
}

#[test]
fn histogram_kernels_and_backends_are_bit_identical() {
    // 10_007 elements: crosses two full batches, leaves a 4-lane tail.
    let data = adversarial_f64(10_007);
    assert_knob_equivalence("histogram", &data, 64, false, |t| {
        (Histogram::new(-100.0, 100.0, 64), SchedArgs::new(t, 1))
    });
}

#[test]
fn value_range_kernel_is_bit_identical() {
    let data = adversarial_f64(9_000);
    assert_knob_equivalence("value_range", &data, 0, false, |t| (ValueRange, SchedArgs::new(t, 1)));
}

#[test]
fn moments_kernel_is_bit_identical() {
    // Finite data (power sums of inf/NaN poison everything identically,
    // but finite sums make the byte comparison meaningful).
    let data = wave(9_001);
    assert_knob_equivalence("moments", &data, 0, false, |t| (Moments, SchedArgs::new(t, 1)));
}

#[test]
fn moving_average_kernel_is_bit_identical() {
    let data = wave(5_003);
    let n = data.len();
    assert_knob_equivalence("moving_average", &data, n, true, |t| {
        (MovingAverage::new(9, n), SchedArgs::new(t, 1))
    });
}

#[test]
fn moving_average_kernel_is_bit_identical_without_trigger() {
    // Trigger disabled: every window object survives to conversion, so the
    // combination-map fingerprint covers the full key space.
    let data = wave(1_500);
    let n = data.len();
    assert_knob_equivalence("moving_average_no_trigger", &data, n, true, |t| {
        (MovingAverage::new(7, n), SchedArgs::new(t, 1).with_trigger_disabled(true))
    });
}

#[test]
fn moving_median_default_path_is_backend_invariant() {
    // No custom kernel — pins that reduce_default itself is backend- and
    // knob-invariant for a holistic (Vec-payload) reduction object.
    let data = wave(800);
    let n = data.len();
    assert_knob_equivalence("moving_median", &data, n, true, |t| {
        (MovingMedian::new(5, n), SchedArgs::new(t, 1))
    });
}

#[test]
fn gaussian_smoother_default_path_is_backend_invariant() {
    let data = wave(1_200);
    let n = data.len();
    assert_knob_equivalence("gaussian", &data, n, true, |t| {
        (GaussianSmoother::new(9, n), SchedArgs::new(t, 1))
    });
}

#[test]
fn savitzky_golay_default_path_is_backend_invariant() {
    let data = wave(1_100);
    let n = data.len();
    assert_knob_equivalence("savgol", &data, n, true, |t| {
        (SavitzkyGolay::new(7, 2, n), SchedArgs::new(t, 1))
    });
}

#[test]
fn knn_smoother_default_path_is_backend_invariant() {
    let data = wave(700);
    let n = data.len();
    assert_knob_equivalence("knn", &data, n, true, |t| {
        (KnnSmoother::new(9, 4, n), SchedArgs::new(t, 1))
    });
}

#[test]
fn grid_aggregation_is_backend_invariant() {
    let data = wave(6_000);
    let app = GridAggregation::new(100, data.len());
    let cells = app.cells();
    assert_knob_equivalence("grid", &data, cells, false, |t| {
        (GridAggregation::new(100, data.len()), SchedArgs::new(t, 1))
    });
}

#[test]
fn grid3d_aggregation_is_backend_invariant() {
    let dims = Dims3 { nx: 20, ny: 15, nz: 12 };
    let data = wave(20 * 15 * 12);
    let app = Grid3DAggregation::new(dims, (5, 5, 4));
    let blocks = app.num_blocks();
    assert_knob_equivalence("grid3d", &data, blocks, false, |t| {
        (Grid3DAggregation::new(dims, (5, 5, 4)), SchedArgs::new(t, 1))
    });
}

#[test]
fn kmeans_kernel_is_bit_identical_across_iterations() {
    // The centroid-snapshot kernel must track the classic per-point
    // nearest() walk through every Lloyd round, where a one-ULP divergence
    // would compound into different assignments.
    let data: Vec<f64> = (0..1_500)
        .map(|i| {
            let c = (i / 3 % 4) as f64 * 25.0;
            c + ((i * 31) % 17) as f64 * 0.3
        })
        .collect();
    let init: Vec<f64> = data[..4 * 3].to_vec();
    assert_knob_equivalence("kmeans", &data, 4, false, |t| {
        (KMeans::new(4, 3), SchedArgs::new(t, 3).with_extra(init.clone()).with_iters(5))
    });
}

#[test]
fn logistic_regression_is_backend_invariant() {
    // chunk = dims + 1 (features + label).
    let dims = 4;
    let data: Vec<f64> = (0..500)
        .flat_map(|i| {
            let mut rec: Vec<f64> = (0..dims).map(|d| ((i * (d + 3)) % 11) as f64 - 5.0).collect();
            let label = if rec.iter().sum::<f64>() > 0.0 { 1.0 } else { 0.0 };
            rec.push(label);
            rec
        })
        .collect();
    let app = LogisticRegression::new(dims, 0.1);
    let chunk = app.chunk_size();
    assert_knob_equivalence("logistic", &data, 1, false, move |t| {
        (
            LogisticRegression::new(dims, 0.1),
            SchedArgs::new(t, chunk).with_extra(vec![0.0; dims]).with_iters(4),
        )
    });
}

#[test]
fn mutual_information_is_backend_invariant() {
    // chunk = 2 (an (x, y) pair per unit chunk).
    let data: Vec<f64> = (0..4_000)
        .flat_map(|i| {
            let x = ((i * 7) % 100) as f64 / 10.0;
            [x, (x * 0.5 + ((i * 13) % 9) as f64).min(9.9)]
        })
        .collect();
    assert_knob_equivalence("mutual_info", &data, 0, false, |t| {
        (MutualInformation::new((0.0, 10.0, 20), (0.0, 10.0, 20)), SchedArgs::new(t, 2))
    });
}
