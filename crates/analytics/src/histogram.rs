//! Equi-width histogram (paper Listing 3) — the statistical-analytics
//! representative.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// One histogram bucket: a single count (paper Listing 3's `Bucket`).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Bucket {
    /// Elements that fell into this bucket.
    pub count: u64,
}

impl RedObj for Bucket {}

/// Equi-width histogram over `[min, max)` with `buckets` buckets.
/// Out-of-range values clamp into the first/last bucket.
///
/// Unit chunk: 1 element. Output: `out[bucket] = count`.
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    width: f64,
    buckets: usize,
}

impl Histogram {
    /// Histogram with `buckets` equal buckets spanning `[min, max)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(max > min, "empty value range");
        Histogram { min, width: (max - min) / buckets as f64, buckets }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The bucket a value falls into (clamped).
    pub fn bucket_of(&self, v: f64) -> usize {
        if !v.is_finite() || v < self.min {
            return 0;
        }
        (((v - self.min) / self.width) as usize).min(self.buckets - 1)
    }
}

impl Analytics for Histogram {
    type In = f64;
    type Red = Bucket;
    type Out = u64;
    type Extra = ();

    fn gen_key(&self, chunk: &Chunk, data: &[f64], _com: &ComMap<Bucket>) -> Key {
        self.bucket_of(data[chunk.local_start]) as Key
    }

    fn accumulate(&self, _chunk: &Chunk, _data: &[f64], _key: Key, obj: &mut Option<Bucket>) {
        obj.get_or_insert_with(Bucket::default).count += 1;
    }

    fn merge(&self, red: &Bucket, com: &mut Bucket) {
        com.count += red.count;
    }

    fn convert(&self, obj: &Bucket, out: &mut u64) {
        *out = obj.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    /// Sequential oracle.
    fn oracle(h: &Histogram, data: &[f64]) -> Vec<u64> {
        let mut counts = vec![0u64; h.buckets()];
        for &v in data {
            counts[h.bucket_of(v)] += 1;
        }
        counts
    }

    #[test]
    fn bucket_of_clamps() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.bucket_of(-5.0), 0);
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(9.99), 9);
        assert_eq!(h.bucket_of(10.0), 9);
        assert_eq!(h.bucket_of(1e12), 9);
        assert_eq!(h.bucket_of(f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn smart_histogram_matches_oracle() {
        let h = Histogram::new(-3.0, 3.0, 12);
        let data: Vec<f64> = (0..5000).map(|i| ((i * 37) % 600) as f64 / 100.0 - 3.0).collect();
        let expected = oracle(&h, &data);

        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(h, SchedArgs::new(4, 1), pool).unwrap();
        let mut out = vec![0u64; 12];
        s.run(&data, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn histogram_accumulates_across_time_steps() {
        let pool = smart_pool::shared_pool(2).unwrap();
        let mut s =
            Scheduler::new(Histogram::new(0.0, 1.0, 2), SchedArgs::new(2, 1), pool).unwrap();
        let mut out = vec![0u64; 2];
        s.run(&[0.1, 0.9], &mut out).unwrap();
        s.run(&[0.2, 0.8], &mut out).unwrap();
        assert_eq!(out, vec![2, 2]);
    }

    proptest! {
        #[test]
        fn matches_oracle_on_random_data(
            data in proptest::collection::vec(-100.0f64..100.0, 0..500),
            threads in 1usize..5,
        ) {
            // Trim to a multiple of chunk size 1 (always true) and run.
            let h = Histogram::new(-100.0, 100.0, 23);
            let expected = oracle(&h, &data);
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(h, SchedArgs::new(threads, 1), pool).unwrap();
            let mut out = vec![0u64; 23];
            s.run(&data, &mut out).unwrap();
            prop_assert_eq!(out, expected);
        }

        #[test]
        fn total_count_equals_input_len(
            data in proptest::collection::vec(any::<f64>(), 0..300)
        ) {
            let h = Histogram::new(-1.0, 1.0, 7);
            let counts = oracle(&h, &data);
            prop_assert_eq!(counts.iter().sum::<u64>() as usize, data.len());
        }
    }
}
