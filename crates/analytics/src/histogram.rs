//! Equi-width histogram (paper Listing 3) — the statistical-analytics
//! representative, and the showcase for the batched reduce kernel: bucket
//! search is pure arithmetic on the element value, so a whole batch of it
//! vectorizes (AVX2, four lanes of `f64`) while the per-bucket counting
//! stays in the dense reduction map.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Batch, BatchSink, Chunk, ComMap, Key, KeyMode, RedObj};

/// One histogram bucket: a single count (paper Listing 3's `Bucket`).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Bucket {
    /// Elements that fell into this bucket.
    pub count: u64,
}

impl RedObj for Bucket {}

/// Which batched bucket-search kernel [`Histogram::reduce_batch`] runs.
/// Decided once at construction — never per element, and never per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    /// Portable scalar kernel (also the tail handler for the SIMD kernel).
    Scalar,
    /// Four-lane `f64` AVX2 bucket search.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// Pick the kernel: AVX2 when the CPU has it, the build targets x86-64,
/// `SMART_NO_SIMD` is not set (the CI force-disable leg), and the bucket
/// count fits the `i32` lanes of `_mm256_cvttpd_epi32`.
fn detect_simd(buckets: usize) -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        let disabled = std::env::var_os("SMART_NO_SIMD").is_some_and(|v| v != "0");
        if !disabled && buckets <= i32::MAX as usize && std::arch::is_x86_feature_detected!("avx2")
        {
            return SimdLevel::Avx2;
        }
    }
    let _ = buckets;
    SimdLevel::Scalar
}

/// Equi-width histogram over `[min, max)` with `buckets` buckets.
///
/// Out-of-range routing policy (documented because the three non-finite
/// cases used to disagree): values below `min`, `-inf`, and `NaN` land in
/// the **first** bucket; values at or above `max` and `+inf` clamp into the
/// **last** bucket. In short: anything that fails `v >= min` goes low,
/// everything else goes where the arithmetic sends it, clamped high.
///
/// Unit chunk: 1 element. Output: `out[bucket] = count`.
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    width: f64,
    buckets: usize,
    simd: SimdLevel,
}

impl Histogram {
    /// Histogram with `buckets` equal buckets spanning `[min, max)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(max > min, "empty value range");
        Histogram { min, width: (max - min) / buckets as f64, buckets, simd: detect_simd(buckets) }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// `true` when the SIMD bucket-search kernel is selected (CPU support
    /// present and `SMART_NO_SIMD` unset). Exposed so benches and CI can
    /// report which kernel actually ran.
    pub fn simd_enabled(&self) -> bool {
        self.simd != SimdLevel::Scalar
    }

    /// The bucket a value falls into (see the routing policy on
    /// [`Histogram`]).
    pub fn bucket_of(&self, v: f64) -> usize {
        // NaN and everything below the range (including -inf) route to the
        // first bucket; the explicit is_nan check is what keeps NaN from
        // falling through to the arithmetic (NaN fails `v < min` too).
        if v.is_nan() || v < self.min {
            return 0;
        }
        // +inf and values at/above max saturate through the `as usize`
        // cast and clamp into the last bucket.
        (((v - self.min) / self.width) as usize).min(self.buckets - 1)
    }

    /// Scalar batched kernel: [`Histogram::bucket_of`] per chunk without
    /// the `gen_keys` detour. Also the tail handler for the AVX2 kernel,
    /// so both must keep byte-for-byte the same routing.
    fn reduce_batch_scalar(
        &self,
        data: &[f64],
        batch: &Batch,
        sink: &mut BatchSink<'_, '_, Self>,
        from: usize,
    ) {
        for i in from..batch.chunks {
            let chunk = batch.chunk_at(i);
            let key = self.bucket_of(data[chunk.local_start]) as Key;
            sink.accumulate_keyed(self, &chunk, data, key);
        }
    }

    /// AVX2 batched kernel: four `f64` lanes per iteration compute
    /// `clamp((v - min) / width)` with the exact scalar operations (sub,
    /// div, min, truncating convert — no FMA contraction, no
    /// approximations), so the lane results are bit-identical to
    /// [`Histogram::bucket_of`]:
    ///
    /// * `cmp GE_OQ(v, min)` is false for NaN, `-inf`, and `v < min` —
    ///   the mask zeroes those lanes into bucket 0, matching the scalar
    ///   early-return;
    /// * `min_pd(t, buckets-1)` clamps `+inf`/above-range lanes before the
    ///   `i32` convert (constructor guarantees `buckets - 1` fits `i32`),
    ///   matching the scalar `.min(buckets - 1)`;
    /// * `cvttpd_epi32` truncates toward zero exactly like `as usize` for
    ///   the in-range values that survive the clamp.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 (guaranteed by
    /// [`detect_simd`] gating the `SimdLevel::Avx2` selection).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_batch_avx2(
        &self,
        data: &[f64],
        batch: &Batch,
        sink: &mut BatchSink<'_, '_, Self>,
    ) {
        use std::arch::x86_64::{
            _mm256_and_pd, _mm256_cmp_pd, _mm256_cvttpd_epi32, _mm256_div_pd, _mm256_loadu_pd,
            _mm256_min_pd, _mm256_set1_pd, _mm256_sub_pd, _mm_storeu_si128, _CMP_GE_OQ,
        };
        let n = batch.chunks;
        let vals = &data[batch.local_start..batch.local_start + n];
        let vmin = _mm256_set1_pd(self.min);
        let vwidth = _mm256_set1_pd(self.width);
        let vlast = _mm256_set1_pd((self.buckets - 1) as f64);
        let mut lanes = [0i32; 4];
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps the four-lane load inside `vals`.
            let v = unsafe { _mm256_loadu_pd(vals.as_ptr().add(i)) };
            let in_range = _mm256_cmp_pd::<_CMP_GE_OQ>(v, vmin);
            let t = _mm256_div_pd(_mm256_sub_pd(v, vmin), vwidth);
            let t = _mm256_min_pd(t, vlast); // +inf → last bucket (b if t is NaN never occurs masked)
            let t = _mm256_and_pd(t, in_range); // below-range / NaN lanes → 0.0
            let idx = _mm256_cvttpd_epi32(t);
            // SAFETY: `lanes` is exactly the 16 bytes the store writes.
            unsafe { _mm_storeu_si128(lanes.as_mut_ptr().cast(), idx) };
            for (lane, &key) in lanes.iter().enumerate() {
                let chunk = batch.chunk_at(i + lane);
                sink.accumulate_keyed(self, &chunk, data, key as Key);
            }
            i += 4;
        }
        // Scalar tail: fewer than four chunks left.
        self.reduce_batch_scalar(data, batch, sink, i);
    }
}

impl Analytics for Histogram {
    type In = f64;
    type Red = Bucket;
    type Out = u64;
    type Extra = ();

    fn gen_key(&self, chunk: &Chunk, data: &[f64], _com: &ComMap<Bucket>) -> Key {
        self.bucket_of(data[chunk.local_start]) as Key
    }

    fn accumulate(&self, _chunk: &Chunk, _data: &[f64], _key: Key, obj: &mut Option<Bucket>) {
        obj.get_or_insert_with(Bucket::default).count += 1;
    }

    fn merge(&self, red: &Bucket, com: &mut Bucket) {
        com.count += red.count;
    }

    /// Wire merge for the POD reduction object: fold the encoded count
    /// directly instead of round-tripping through a decoded `Bucket`. A
    /// `Bucket` carries no heap data so this saves no allocation — it
    /// exercises the fixed-width side of the [`Analytics::merge_wire`] seam.
    fn merge_wire(
        &self,
        de: &mut smart_wire::Deserializer<'_>,
        com: &mut Bucket,
    ) -> smart_wire::Result<()> {
        use serde::Deserialize;
        com.count += u64::deserialize(de)?;
        Ok(())
    }

    fn convert(&self, obj: &Bucket, out: &mut u64) {
        *out = obj.count;
    }

    fn key_bound(&self) -> Option<usize> {
        Some(self.buckets)
    }

    fn spill_safe(&self) -> bool {
        // Bucket counts are integer adds: exact under any fragmentation.
        true
    }

    fn reduce_batch(&self, data: &[f64], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>) {
        // The kernels assume the 1-element unit chunk the histogram is
        // specified with and single-key dispatch; anything else takes the
        // generic walk.
        if batch.chunk_size != 1 || sink.key_mode() != KeyMode::Single {
            sink.reduce_default(self, data, batch);
            return;
        }
        match self.simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only ever selected by detect_simd after
            // is_x86_feature_detected!("avx2") returned true on this CPU.
            SimdLevel::Avx2 => unsafe { self.reduce_batch_avx2(data, batch, sink) },
            SimdLevel::Scalar => self.reduce_batch_scalar(data, batch, sink, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    /// Sequential oracle.
    fn oracle(h: &Histogram, data: &[f64]) -> Vec<u64> {
        let mut counts = vec![0u64; h.buckets()];
        for &v in data {
            counts[h.bucket_of(v)] += 1;
        }
        counts
    }

    /// The wire-merge override must match decode + `merge` exactly.
    #[test]
    fn merge_wire_override_matches_owned_merge() {
        let h = Histogram::new(0.0, 1.0, 4);
        let bytes = smart_wire::to_bytes(&Bucket { count: 41 }).unwrap();

        let mut owned = Bucket { count: 9 };
        h.merge(&smart_wire::from_bytes(&bytes).unwrap(), &mut owned);

        let mut viewed = Bucket { count: 9 };
        let mut de = smart_wire::Deserializer::new(&bytes);
        h.merge_wire(&mut de, &mut viewed).unwrap();
        assert_eq!(de.remaining(), 0, "override must consume exactly one Bucket");
        assert_eq!(owned.count, viewed.count);
    }

    #[test]
    fn bucket_of_clamps() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.bucket_of(-5.0), 0);
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(9.99), 9);
        assert_eq!(h.bucket_of(10.0), 9);
        assert_eq!(h.bucket_of(1e12), 9);
        assert_eq!(h.bucket_of(f64::NAN), 0);
    }

    #[test]
    fn bucket_of_routes_non_finite_values_symmetrically() {
        // The documented policy: NaN and -inf go low with the below-range
        // values; +inf clamps high with the above-range values. (+inf used
        // to fall into bucket 0 through a blanket !is_finite() check.)
        let h = Histogram::new(-2.0, 2.0, 8);
        assert_eq!(h.bucket_of(f64::NEG_INFINITY), 0);
        assert_eq!(h.bucket_of(f64::NAN), 0);
        assert_eq!(h.bucket_of(-f64::NAN), 0);
        assert_eq!(h.bucket_of(f64::INFINITY), 7);
        assert_eq!(h.bucket_of(f64::MAX), 7);
        assert_eq!(h.bucket_of(f64::MIN), 0);
        assert_eq!(h.bucket_of(f64::MIN_POSITIVE), 4);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn smart_histogram_matches_oracle() {
        let h = Histogram::new(-3.0, 3.0, 12);
        let data: Vec<f64> = (0..5000).map(|i| ((i * 37) % 600) as f64 / 100.0 - 3.0).collect();
        let expected = oracle(&h, &data);

        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(h, SchedArgs::new(4, 1), pool).unwrap();
        let mut out = vec![0u64; 12];
        s.run(&data, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn histogram_accumulates_across_time_steps() {
        let pool = smart_pool::shared_pool(2).unwrap();
        let mut s =
            Scheduler::new(Histogram::new(0.0, 1.0, 2), SchedArgs::new(2, 1), pool).unwrap();
        let mut out = vec![0u64; 2];
        s.run(&[0.1, 0.9], &mut out).unwrap();
        s.run(&[0.2, 0.8], &mut out).unwrap();
        assert_eq!(out, vec![2, 2]);
    }

    #[test]
    fn kernel_and_scalar_walk_agree_on_adversarial_values() {
        // Non-finite values, range boundaries, and subnormals through both
        // the batched kernel (SIMD if available) and the forced classic
        // walk — counts must match the oracle exactly in both.
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -0.0,
            0.0,
            10.0,
            9.999_999,
            -1e-300,
        ];
        let data: Vec<f64> =
            (0..997).map(|i| specials[i % specials.len()]).chain(specials).collect();
        let h = Histogram::new(0.0, 10.0, 10);
        let expected = oracle(&h, &data);
        for scalar in [false, true] {
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(h.clone(), SchedArgs::new(3, 1), pool).unwrap();
            s.set_scalar_reduce(scalar);
            let mut out = vec![0u64; 10];
            s.run(&data, &mut out).unwrap();
            assert_eq!(out, expected, "scalar_reduce={scalar}");
        }
    }

    proptest! {
        #[test]
        fn matches_oracle_on_random_data(
            data in proptest::collection::vec(-100.0f64..100.0, 0..500),
            threads in 1usize..5,
        ) {
            // Trim to a multiple of chunk size 1 (always true) and run.
            let h = Histogram::new(-100.0, 100.0, 23);
            let expected = oracle(&h, &data);
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(h, SchedArgs::new(threads, 1), pool).unwrap();
            let mut out = vec![0u64; 23];
            s.run(&data, &mut out).unwrap();
            prop_assert_eq!(out, expected);
        }

        #[test]
        fn total_count_equals_input_len(
            data in proptest::collection::vec(any::<f64>(), 0..300)
        ) {
            let h = Histogram::new(-1.0, 1.0, 7);
            let counts = oracle(&h, &data);
            prop_assert_eq!(counts.iter().sum::<u64>() as usize, data.len());
        }

        /// The routing-policy invariants, pinned by property: NaN and
        /// below-range always bucket 0; at/above max always the last
        /// bucket; in-range values always land in the analytically correct
        /// bucket.
        #[test]
        fn bucket_policy_holds_for_arbitrary_values(v in any::<f64>()) {
            let h = Histogram::new(-1.0, 1.0, 16);
            let b = h.bucket_of(v);
            prop_assert!(b < 16);
            if v.is_nan() || v < -1.0 {
                prop_assert_eq!(b, 0);
            } else if v >= 1.0 {
                prop_assert_eq!(b, 15);
            } else {
                prop_assert_eq!(b, (((v + 1.0) / 0.125) as usize).min(15));
            }
        }
    }
}
