//! Small dense linear algebra: just enough to derive Savitzky–Golay
//! smoothing coefficients (least-squares polynomial fit over a window).

/// Solve `A x = b` for a small dense system by Gaussian elimination with
/// partial pivoting. `a` is row-major `n × n`.
///
/// Returns `None` if the matrix is numerically singular.
#[allow(clippy::needless_range_loop)] // split-borrow elimination in-place
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite pivots")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);

        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Savitzky–Golay *smoothing* coefficients for a window of `2h + 1` points
/// and a fit polynomial of degree `order`.
///
/// The smoothed center value is `Σᵢ c[i] · x[i]` over the window; the
/// coefficients are the center row of the least-squares projection
/// `A (AᵀA)⁻¹ Aᵀ` with `A[i][j] = (i − h)ʲ`.
///
/// # Panics
/// Panics if the window is even/zero or `order ≥ window`.
pub fn savgol_coefficients(window: usize, order: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd and positive");
    assert!(order < window, "order must be below the window size");
    let h = (window / 2) as i64;
    let m = order + 1;

    // Normal equations: (AᵀA) y = e₀, coefficients c_i = Σ_j y_j · i^j.
    let mut ata = vec![vec![0.0; m]; m];
    for (r, row) in ata.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = (-h..=h).map(|i| (i as f64).powi((r + c) as i32)).sum();
        }
    }
    let mut e0 = vec![0.0; m];
    e0[0] = 1.0;
    let y = solve(ata, e0).expect("SG normal equations are nonsingular for order < window");

    (-h..=h).map(|i| (0..m).map(|j| y[j] * (i as f64).powi(j as i32)).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let x = solve(a, vec![1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn savgol_5_2_matches_published_coefficients() {
        // Classic table: window 5, quadratic → (−3, 12, 17, 12, −3)/35.
        let c = savgol_coefficients(5, 2);
        let want = [-3.0, 12.0, 17.0, 12.0, -3.0].map(|v| v / 35.0);
        for (a, b) in c.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10, "{c:?}");
        }
    }

    #[test]
    fn savgol_7_2_matches_published_coefficients() {
        // Window 7, quadratic → (−2, 3, 6, 7, 6, 3, −2)/21.
        let c = savgol_coefficients(7, 2);
        let want = [-2.0, 3.0, 6.0, 7.0, 6.0, 3.0, -2.0].map(|v| v / 21.0);
        for (a, b) in c.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10, "{c:?}");
        }
    }

    #[test]
    fn savgol_order_zero_is_moving_average() {
        let c = savgol_coefficients(9, 0);
        for v in &c {
            assert!((v - 1.0 / 9.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        let _ = savgol_coefficients(4, 2);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn excessive_order_rejected() {
        let _ = savgol_coefficients(5, 5);
    }

    proptest! {
        #[test]
        fn coefficients_sum_to_one(hw in 1usize..13, order in 0usize..5) {
            let window = 2 * hw + 1;
            prop_assume!(order < window);
            let c = savgol_coefficients(window, order);
            let sum: f64 = c.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        }

        #[test]
        fn coefficients_are_symmetric(hw in 1usize..13, order in 0usize..5) {
            let window = 2 * hw + 1;
            prop_assume!(order < window);
            let c = savgol_coefficients(window, order);
            for i in 0..window / 2 {
                prop_assert!((c[i] - c[window - 1 - i]).abs() < 1e-8);
            }
        }

        #[test]
        fn filter_reproduces_polynomials_exactly(hw in 1usize..8, order in 1usize..4) {
            // An SG filter of degree `order` must reproduce any polynomial of
            // that degree exactly at the window center.
            let window = 2 * hw + 1;
            prop_assume!(order < window);
            let c = savgol_coefficients(window, order);
            let poly = |x: f64| 1.0 + 2.0 * x + if order >= 2 { 0.5 * x * x } else { 0.0 };
            let center = 10.0;
            let smoothed: f64 = (0..window)
                .map(|i| c[i] * poly(center + i as f64 - hw as f64))
                .sum();
            prop_assert!((smoothed - poly(center)).abs() < 1e-6, "{smoothed}");
        }

        #[test]
        fn solve_random_diagonally_dominant(
            n in 1usize..6,
            seed in proptest::collection::vec(-1.0f64..1.0, 36 + 6)
        ) {
            // Build a diagonally dominant (hence nonsingular) system, solve,
            // and verify the residual.
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                let mut row_sum = 0.0;
                for j in 0..n {
                    a[i][j] = seed[i * 6 + j];
                    row_sum += a[i][j].abs();
                }
                a[i][i] = row_sum + 1.0;
            }
            let b: Vec<f64> = seed[36..36 + n].to_vec();
            let x = solve(a.clone(), b.clone()).expect("dominant system solvable");
            for i in 0..n {
                let ax: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
                prop_assert!((ax - b[i]).abs() < 1e-8);
            }
        }
    }
}
