//! Window-based analytics (paper §4, §5.1): moving average (Listing 5),
//! moving median, Gaussian kernel smoothing, and the Savitzky–Golay filter.
//!
//! All four map each element to every window position it contributes to
//! (`gen_keys`, the paper's flatMap analogue) and lean on the early-emission
//! trigger: a window's reduction object is converted into `out[center]` and
//! erased as soon as it has received all of its contributions, capping live
//! objects at O(window) instead of O(input) — the optimization Fig. 11
//! evaluates.
//!
//! One refinement over the paper's Listing 5: the trigger compares against
//! the window's *feasible* size (truncated at the global array edges), not
//! the nominal `WIN_SIZE`, so the O(window) edge keys can also emit early.
//! Interior keys behave identically to the paper.

use crate::linalg::savgol_coefficients;
use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Batch, BatchSink, Chunk, ComMap, Key, KeyMode, RedObj};

/// Shared window geometry: half-width plus the global element count.
#[derive(Debug, Clone, Copy)]
struct WindowSpec {
    half: usize,
    total_len: usize,
}

impl WindowSpec {
    fn new(window: usize, total_len: usize) -> Self {
        assert!(window % 2 == 1 && window > 0, "window must be odd and positive");
        assert!(total_len > 0, "total_len must be positive");
        WindowSpec { half: window / 2, total_len }
    }

    fn window(&self) -> usize {
        2 * self.half + 1
    }

    /// Keys (window centers) an element at global position `gs` feeds.
    fn keys_for(&self, gs: usize, keys: &mut Vec<Key>) {
        let lo = gs.saturating_sub(self.half);
        let hi = (gs + self.half).min(self.total_len - 1);
        for k in lo..=hi {
            keys.push(k as Key);
        }
    }

    /// Elements the (possibly edge-truncated) window centered at `key`
    /// will receive in total.
    fn expected_at(&self, key: Key) -> u64 {
        let k = key as usize;
        let lo = k.saturating_sub(self.half);
        let hi = (k + self.half).min(self.total_len - 1);
        (hi - lo + 1) as u64
    }
}

// ---------------------------------------------------------------------------
// Moving average (paper Listing 5)
// ---------------------------------------------------------------------------

/// Algebraic window object: Θ(1) per window (paper §4.1's moving-average
/// case).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct WinObj {
    /// Running sum of window members.
    pub sum: f64,
    /// Members received so far.
    pub count: u64,
    /// Members the window will receive in total.
    pub expected: u64,
}

impl RedObj for WinObj {
    fn trigger(&self) -> bool {
        self.expected > 0 && self.count == self.expected
    }
}

/// Moving average over a sliding window of odd size.
///
/// Unit chunk: 1 element. Output: `out[i] = mean of the window centered at
/// global element i` (edge windows truncate).
#[derive(Debug, Clone)]
pub struct MovingAverage {
    spec: WindowSpec,
}

impl MovingAverage {
    /// Window of `window` (odd) elements over a `total_len`-element dataset.
    pub fn new(window: usize, total_len: usize) -> Self {
        MovingAverage { spec: WindowSpec::new(window, total_len) }
    }
}

impl Analytics for MovingAverage {
    type In = f64;
    type Red = WinObj;
    type Out = f64;
    type Extra = ();

    fn gen_keys(&self, chunk: &Chunk, _d: &[f64], _com: &ComMap<WinObj>, keys: &mut Vec<Key>) {
        self.spec.keys_for(chunk.global_start, keys);
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<WinObj>) {
        let w = obj.get_or_insert_with(|| WinObj {
            sum: 0.0,
            count: 0,
            expected: self.spec.expected_at(key),
        });
        w.sum += data[chunk.local_start];
        w.count += 1;
    }

    fn merge(&self, red: &WinObj, com: &mut WinObj) {
        com.sum += red.sum;
        com.count += red.count;
    }

    fn convert(&self, obj: &WinObj, out: &mut f64) {
        *out = if obj.count > 0 { obj.sum / obj.count as f64 } else { 0.0 };
    }

    fn key_bound(&self) -> Option<usize> {
        // Keys are window centers, i.e. global element positions. RedMap
        // falls back to the hash backend on its own for large datasets.
        Some(self.spec.total_len)
    }

    fn reduce_batch(&self, data: &[f64], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>) {
        // Multi-key kernel: the window-center keys for one element are the
        // contiguous run `keys_for` would have pushed — generate them
        // inline instead of filling the key scratch vector. Key order (and
        // thus trigger/emission order) matches the default walk exactly.
        if batch.chunk_size != 1 || sink.key_mode() != KeyMode::Multi {
            sink.reduce_default(self, data, batch);
            return;
        }
        for i in 0..batch.chunks {
            let chunk = batch.chunk_at(i);
            let gs = chunk.global_start;
            let lo = gs.saturating_sub(self.spec.half);
            let hi = (gs + self.spec.half).min(self.spec.total_len - 1);
            for k in lo..=hi {
                sink.accumulate_keyed(self, &chunk, data, k as Key);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Moving median
// ---------------------------------------------------------------------------

/// Holistic window object: Θ(window) per window — the paper's point that
/// median cannot be computed from a constant-size summary (§4.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct WinMedianObj {
    /// All window members seen so far.
    pub vals: Vec<f64>,
    /// Members the window will receive in total.
    pub expected: u64,
}

impl RedObj for WinMedianObj {
    fn trigger(&self) -> bool {
        self.expected > 0 && self.vals.len() as u64 == self.expected
    }
}

/// Moving median over a sliding window of odd size.
#[derive(Debug, Clone)]
pub struct MovingMedian {
    spec: WindowSpec,
}

impl MovingMedian {
    /// Window of `window` (odd) elements over a `total_len`-element dataset.
    pub fn new(window: usize, total_len: usize) -> Self {
        MovingMedian { spec: WindowSpec::new(window, total_len) }
    }
}

impl Analytics for MovingMedian {
    type In = f64;
    type Red = WinMedianObj;
    type Out = f64;
    type Extra = ();

    fn gen_keys(
        &self,
        chunk: &Chunk,
        _d: &[f64],
        _com: &ComMap<WinMedianObj>,
        keys: &mut Vec<Key>,
    ) {
        self.spec.keys_for(chunk.global_start, keys);
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<WinMedianObj>) {
        let w = obj.get_or_insert_with(|| WinMedianObj {
            vals: Vec::with_capacity(self.spec.window()),
            expected: self.spec.expected_at(key),
        });
        w.vals.push(data[chunk.local_start]);
    }

    fn merge(&self, red: &WinMedianObj, com: &mut WinMedianObj) {
        com.vals.extend_from_slice(&red.vals);
    }

    fn convert(&self, obj: &WinMedianObj, out: &mut f64) {
        *out = median(&obj.vals);
    }
}

/// Median of a slice (average of the middle two for even lengths).
pub fn median(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let mut v = vals.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in window data"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

// ---------------------------------------------------------------------------
// Offset-weighted windows: Gaussian kernel smoothing & Savitzky–Golay
// ---------------------------------------------------------------------------

/// Window object for offset-weighted kernels: a weighted accumulator plus a
/// plain sum for edge fallback. Still Θ(1) per window.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct WinWeightedObj {
    /// Kernel-weighted accumulator.
    pub acc: f64,
    /// Companion accumulator (kernel mass for Gaussian; raw sum for SG).
    pub aux: f64,
    /// Members received so far.
    pub count: u64,
    /// Members the window will receive in total.
    pub expected: u64,
}

impl RedObj for WinWeightedObj {
    fn trigger(&self) -> bool {
        self.expected > 0 && self.count == self.expected
    }
}

/// Gaussian kernel smoother (positional Nadaraya–Watson): the output at
/// position `i` is `Σⱼ K(j−i)·xⱼ / Σⱼ K(j−i)` over the window, with
/// `K(d) = exp(−d²/2σ²)`, `σ = window/6` — the paper's "Gaussian kernel
/// density estimation" window application.
#[derive(Debug, Clone)]
pub struct GaussianSmoother {
    spec: WindowSpec,
    inv_two_sigma2: f64,
}

impl GaussianSmoother {
    /// Window of `window` (odd) elements over a `total_len`-element dataset.
    pub fn new(window: usize, total_len: usize) -> Self {
        let spec = WindowSpec::new(window, total_len);
        let sigma = window as f64 / 6.0;
        GaussianSmoother { spec, inv_two_sigma2: 1.0 / (2.0 * sigma * sigma) }
    }

    /// Kernel weight for a positional offset.
    pub fn weight(&self, offset: f64) -> f64 {
        (-offset * offset * self.inv_two_sigma2).exp()
    }
}

impl Analytics for GaussianSmoother {
    type In = f64;
    type Red = WinWeightedObj;
    type Out = f64;
    type Extra = ();

    fn gen_keys(
        &self,
        chunk: &Chunk,
        _d: &[f64],
        _com: &ComMap<WinWeightedObj>,
        keys: &mut Vec<Key>,
    ) {
        self.spec.keys_for(chunk.global_start, keys);
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<WinWeightedObj>) {
        let w = obj.get_or_insert_with(|| WinWeightedObj {
            acc: 0.0,
            aux: 0.0,
            count: 0,
            expected: self.spec.expected_at(key),
        });
        let offset = chunk.global_start as f64 - key as f64;
        let weight = self.weight(offset);
        w.acc += weight * data[chunk.local_start];
        w.aux += weight;
        w.count += 1;
    }

    fn merge(&self, red: &WinWeightedObj, com: &mut WinWeightedObj) {
        com.acc += red.acc;
        com.aux += red.aux;
        com.count += red.count;
    }

    fn convert(&self, obj: &WinWeightedObj, out: &mut f64) {
        *out = if obj.aux > 0.0 { obj.acc / obj.aux } else { 0.0 };
    }
}

/// Savitzky–Golay smoothing filter (paper \[39\]): least-squares polynomial
/// fit over the window, evaluated at the center. Full windows apply the
/// precomputed convolution coefficients; truncated edge windows fall back to
/// the window mean (standard practice).
#[derive(Debug, Clone)]
pub struct SavitzkyGolay {
    spec: WindowSpec,
    coeffs: Vec<f64>,
}

impl SavitzkyGolay {
    /// Filter of odd `window` size fitting a degree-`order` polynomial.
    pub fn new(window: usize, order: usize, total_len: usize) -> Self {
        let spec = WindowSpec::new(window, total_len);
        SavitzkyGolay { spec, coeffs: savgol_coefficients(window, order) }
    }

    /// The precomputed smoothing coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }
}

impl Analytics for SavitzkyGolay {
    type In = f64;
    type Red = WinWeightedObj;
    type Out = f64;
    type Extra = ();

    fn gen_keys(
        &self,
        chunk: &Chunk,
        _d: &[f64],
        _com: &ComMap<WinWeightedObj>,
        keys: &mut Vec<Key>,
    ) {
        self.spec.keys_for(chunk.global_start, keys);
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<WinWeightedObj>) {
        let w = obj.get_or_insert_with(|| WinWeightedObj {
            acc: 0.0,
            aux: 0.0,
            count: 0,
            expected: self.spec.expected_at(key),
        });
        let x = data[chunk.local_start];
        // Offset within the window: 0..window, center at `half`.
        let idx = (chunk.global_start as i64 - key + self.spec.half as i64) as usize;
        w.acc += self.coeffs[idx] * x;
        w.aux += x;
        w.count += 1;
    }

    fn merge(&self, red: &WinWeightedObj, com: &mut WinWeightedObj) {
        com.acc += red.acc;
        com.aux += red.aux;
        com.count += red.count;
    }

    fn convert(&self, obj: &WinWeightedObj, out: &mut f64) {
        *out = if obj.count == self.spec.window() as u64 {
            obj.acc
        } else if obj.count > 0 {
            obj.aux / obj.count as f64
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn run_app<A>(app: A, data: &[f64], threads: usize, disable_trigger: bool) -> Vec<f64>
    where
        A: Analytics<In = f64, Out = f64, Extra = ()>,
    {
        let pool = smart_pool::shared_pool(4).unwrap();
        let args = SchedArgs::new(threads, 1).with_trigger_disabled(disable_trigger);
        let mut s = Scheduler::new(app, args, pool).unwrap();
        let mut out = vec![0.0f64; data.len()];
        s.run2(data, &mut out).unwrap();
        out
    }

    fn oracle_moving_average(data: &[f64], window: usize) -> Vec<f64> {
        let half = window / 2;
        (0..data.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half).min(data.len() - 1);
                data[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
            })
            .collect()
    }

    fn oracle_moving_median(data: &[f64], window: usize) -> Vec<f64> {
        let half = window / 2;
        (0..data.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half).min(data.len() - 1);
                median(&data[lo..=hi])
            })
            .collect()
    }

    #[test]
    fn moving_average_matches_oracle() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 7) % 31) as f64).collect();
        for window in [3, 7, 25] {
            let got = run_app(MovingAverage::new(window, data.len()), &data, 4, false);
            let want = oracle_moving_average(&data, window);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-10, "window {window}");
            }
        }
    }

    #[test]
    fn moving_average_trigger_and_no_trigger_agree() {
        let data: Vec<f64> = (0..300).map(|i| (i as f64 * 0.7).sin()).collect();
        let with = run_app(MovingAverage::new(7, data.len()), &data, 3, false);
        let without = run_app(MovingAverage::new(7, data.len()), &data, 3, true);
        for (a, b) in with.iter().zip(&without) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn early_emission_keeps_map_small() {
        let data: Vec<f64> = vec![1.0; 10_000];
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s =
            Scheduler::new(MovingAverage::new(25, data.len()), SchedArgs::new(1, 1), pool).unwrap();
        let mut out = vec![0.0f64; data.len()];
        s.run2(&data, &mut out).unwrap();
        // Everything triggered during the single split's pass.
        assert_eq!(s.combination_map().len(), 0);

        // Without the trigger, the map holds every window — the O(N)
        // blow-up Fig. 11 measures.
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s = Scheduler::new(
            MovingAverage::new(25, data.len()),
            SchedArgs::new(1, 1).with_trigger_disabled(true),
            pool,
        )
        .unwrap();
        s.run2(&data, &mut out).unwrap();
        assert_eq!(s.combination_map().len(), data.len());
    }

    #[test]
    fn moving_median_matches_oracle() {
        let data: Vec<f64> = (0..150).map(|i| ((i * 13) % 17) as f64 - 8.0).collect();
        for window in [3, 11] {
            let got = run_app(MovingMedian::new(window, data.len()), &data, 4, false);
            let want = oracle_moving_median(&data, window);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-12, "window {window} pos {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn moving_median_suppresses_impulse_noise() {
        let mut data: Vec<f64> = vec![1.0; 99];
        data[50] = 1000.0; // impulse
        let got = run_app(MovingMedian::new(5, data.len()), &data, 2, false);
        assert_eq!(got[50], 1.0, "median filter must reject the outlier");
    }

    #[test]
    fn median_helper_handles_edge_cases() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn gaussian_smoother_preserves_constants() {
        let data = vec![4.2; 120];
        let got = run_app(GaussianSmoother::new(9, data.len()), &data, 3, false);
        for v in &got {
            assert!((v - 4.2).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_smoother_reduces_variance() {
        let data: Vec<f64> = (0..500).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let got = run_app(GaussianSmoother::new(11, data.len()), &data, 4, false);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&got[20..480]) < 0.05 * var(&data));
    }

    #[test]
    fn gaussian_center_weight_dominates() {
        let g = GaussianSmoother::new(7, 100);
        assert!(g.weight(0.0) > g.weight(1.0));
        assert!(g.weight(1.0) > g.weight(3.0));
        assert_eq!(g.weight(0.0), 1.0);
    }

    #[test]
    fn savitzky_golay_reproduces_quadratics_in_the_interior() {
        let data: Vec<f64> =
            (0..100).map(|i| 2.0 + 0.5 * i as f64 + 0.01 * (i * i) as f64).collect();
        let got = run_app(SavitzkyGolay::new(7, 2, data.len()), &data, 3, false);
        for i in 3..97 {
            assert!((got[i] - data[i]).abs() < 1e-8, "pos {i}: {} vs {}", got[i], data[i]);
        }
    }

    #[test]
    fn savitzky_golay_matches_direct_convolution() {
        let data: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).sin() * 5.0).collect();
        let sg = SavitzkyGolay::new(5, 2, data.len());
        let c = sg.coefficients().to_vec();
        let got = run_app(sg, &data, 2, false);
        for i in 2..78 {
            let direct: f64 = (0..5).map(|j| c[j] * data[i + j - 2]).sum();
            assert!((got[i] - direct).abs() < 1e-10, "pos {i}");
        }
    }

    #[test]
    fn savitzky_golay_edges_fall_back_to_mean() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let got = run_app(SavitzkyGolay::new(5, 2, data.len()), &data, 1, false);
        // Position 0's truncated window covers 0..=2 → mean 1.0.
        assert!((got[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        let _ = MovingAverage::new(4, 100);
    }

    proptest! {
        #[test]
        fn moving_average_thread_and_trigger_invariant(
            data in proptest::collection::vec(-10.0f64..10.0, 1..200),
            hw in 1usize..6,
            threads in 1usize..5,
        ) {
            let window = 2 * hw + 1;
            let base = oracle_moving_average(&data, window);
            let got = run_app(MovingAverage::new(window, data.len()), &data, threads, false);
            let got_nt = run_app(MovingAverage::new(window, data.len()), &data, threads, true);
            for ((a, b), c) in got.iter().zip(&base).zip(&got_nt) {
                prop_assert!((a - b).abs() < 1e-9);
                prop_assert!((a - c).abs() < 1e-9);
            }
        }

        #[test]
        fn moving_median_matches_oracle_prop(
            data in proptest::collection::vec(-100.0f64..100.0, 1..120),
            hw in 1usize..5,
            threads in 1usize..4,
        ) {
            let window = 2 * hw + 1;
            let want = oracle_moving_median(&data, window);
            let got = run_app(MovingMedian::new(window, data.len()), &data, threads, false);
            for (a, b) in got.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn smoothers_stay_within_data_range(
            data in proptest::collection::vec(-5.0f64..5.0, 1..150),
        ) {
            // Gaussian (positive kernel) output is a convex combination.
            let got = run_app(GaussianSmoother::new(9, data.len()), &data, 2, false);
            let lo = data.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-9;
            let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
            for v in &got {
                prop_assert!((lo..=hi).contains(v));
            }
        }
    }
}
