//! Scalar statistics: value range and central moments.
//!
//! Two small but load-bearing applications:
//!
//! * [`ValueRange`] — global min/max. The paper's histogram assumes "the
//!   minimum element value can be taken as a priori knowledge or be
//!   retrieved by an earlier Smart analytics job" (§3.5) — this *is* that
//!   earlier job (see the `adaptive_histogram` example).
//! * [`Moments`] — one-pass mean/variance/skewness/kurtosis from raw power
//!   sums, the "statistics like averages" in-situ use case (§2.2). Power
//!   sums are distributive, so `merge` is exact regardless of how splits
//!   and ranks carve the data.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Batch, BatchSink, Chunk, ComMap, Key, KeyMode, RedObj};

/// Running minimum and maximum.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RangeObj {
    /// Smallest element seen.
    pub min: f64,
    /// Largest element seen.
    pub max: f64,
    /// Elements seen.
    pub count: u64,
}

impl Default for RangeObj {
    fn default() -> Self {
        RangeObj { min: f64::INFINITY, max: f64::NEG_INFINITY, count: 0 }
    }
}

impl RedObj for RangeObj {}

/// Global min/max under a single key.
///
/// Unit chunk: 1 element. Output: none (read the combination map or use
/// [`ValueRange::range`]).
#[derive(Debug, Clone, Default)]
pub struct ValueRange;

impl ValueRange {
    /// Extract `(min, max)` from a finished combination map; `None` if no
    /// elements were reduced.
    pub fn range(com: &ComMap<RangeObj>) -> Option<(f64, f64)> {
        com.get(0).filter(|o| o.count > 0).map(|o| (o.min, o.max))
    }
}

impl Analytics for ValueRange {
    type In = f64;
    type Red = RangeObj;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<RangeObj>) {
        let o = obj.get_or_insert_with(RangeObj::default);
        let v = data[chunk.local_start];
        o.min = o.min.min(v);
        o.max = o.max.max(v);
        o.count += 1;
    }

    fn merge(&self, red: &RangeObj, com: &mut RangeObj) {
        com.min = com.min.min(red.min);
        com.max = com.max.max(red.max);
        com.count += red.count;
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }

    fn reduce_batch(&self, data: &[f64], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>) {
        // Single fixed key: skip the per-chunk gen_key round-trip and fold
        // straight into slot 0, in element order (min/max are order-
        // insensitive, but keeping the scalar order costs nothing).
        if sink.key_mode() != KeyMode::Single {
            sink.reduce_default(self, data, batch);
            return;
        }
        for i in 0..batch.chunks {
            let chunk = batch.chunk_at(i);
            sink.accumulate_keyed(self, &chunk, data, 0);
        }
    }
}

/// Raw power sums up to order 4.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct MomentsObj {
    /// Σx
    pub s1: f64,
    /// Σx²
    pub s2: f64,
    /// Σx³
    pub s3: f64,
    /// Σx⁴
    pub s4: f64,
    /// Elements seen.
    pub count: u64,
}

impl RedObj for MomentsObj {}

/// Derived statistics from the power sums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Skewness (0 for symmetric distributions).
    pub skewness: f64,
    /// Excess kurtosis (0 for a normal distribution).
    pub excess_kurtosis: f64,
    /// Elements summarized.
    pub count: u64,
}

/// One-pass central moments under a single key.
///
/// Unit chunk: 1 element.
#[derive(Debug, Clone, Default)]
pub struct Moments;

impl Moments {
    /// Derive the summary from a finished combination map.
    pub fn summary(com: &ComMap<MomentsObj>) -> Option<MomentsSummary> {
        let o = com.get(0)?;
        if o.count == 0 {
            return None;
        }
        let n = o.count as f64;
        let mean = o.s1 / n;
        let m2 = o.s2 / n - mean * mean;
        let m3 = o.s3 / n - 3.0 * mean * o.s2 / n + 2.0 * mean.powi(3);
        let m4 =
            o.s4 / n - 4.0 * mean * o.s3 / n + 6.0 * mean * mean * o.s2 / n - 3.0 * mean.powi(4);
        let variance = m2.max(0.0);
        let sd = variance.sqrt();
        Some(MomentsSummary {
            mean,
            variance,
            skewness: if sd > 0.0 { m3 / sd.powi(3) } else { 0.0 },
            excess_kurtosis: if variance > 0.0 { m4 / (variance * variance) - 3.0 } else { 0.0 },
            count: o.count,
        })
    }
}

impl Analytics for Moments {
    type In = f64;
    type Red = MomentsObj;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<MomentsObj>) {
        let o = obj.get_or_insert_with(MomentsObj::default);
        let v = data[chunk.local_start];
        let v2 = v * v;
        o.s1 += v;
        o.s2 += v2;
        o.s3 += v2 * v;
        o.s4 += v2 * v2;
        o.count += 1;
    }

    fn merge(&self, red: &MomentsObj, com: &mut MomentsObj) {
        com.s1 += red.s1;
        com.s2 += red.s2;
        com.s3 += red.s3;
        com.s4 += red.s4;
        com.count += red.count;
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }

    fn reduce_batch(&self, data: &[f64], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>) {
        // Single fixed key, and the power-sum adds run in the exact element
        // order of the scalar walk, so the sums are bit-identical.
        if sink.key_mode() != KeyMode::Single {
            sink.reduce_default(self, data, batch);
            return;
        }
        for i in 0..batch.chunks {
            let chunk = batch.chunk_at(i);
            sink.accumulate_keyed(self, &chunk, data, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn run_range(data: &[f64], threads: usize) -> Option<(f64, f64)> {
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(ValueRange, SchedArgs::new(threads, 1), pool).unwrap();
        s.run(data, &mut []).unwrap();
        ValueRange::range(s.combination_map())
    }

    fn run_moments(data: &[f64], threads: usize) -> Option<MomentsSummary> {
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(Moments, SchedArgs::new(threads, 1), pool).unwrap();
        s.run(data, &mut []).unwrap();
        Moments::summary(s.combination_map())
    }

    #[test]
    fn range_finds_extremes() {
        let data = [3.0, -7.5, 0.0, 12.25, 5.0];
        assert_eq!(run_range(&data, 2), Some((-7.5, 12.25)));
    }

    #[test]
    fn range_of_empty_is_none() {
        assert_eq!(run_range(&[], 1), None);
    }

    #[test]
    fn range_distributed_matches_local() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 83) % 101) as f64 - 50.0).collect();
        let expected = run_range(&data, 1).unwrap();
        let results = smart_comm::run_cluster(3, |mut comm| {
            let share = data.len() / comm.size();
            let lo = comm.rank() * share;
            let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
            let pool = smart_pool::shared_pool(1).unwrap();
            let mut s = Scheduler::new(ValueRange, SchedArgs::new(1, 1), pool).unwrap();
            s.run_dist(&mut comm, &data[lo..hi], &mut []).unwrap();
            ValueRange::range(s.combination_map()).unwrap()
        });
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn moments_of_known_distribution() {
        // Uniform over {0..999}: mean 499.5, variance (n²-1)/12.
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = run_moments(&data, 3).unwrap();
        assert_eq!(m.count, 1000);
        assert!((m.mean - 499.5).abs() < 1e-9);
        assert!((m.variance - (1000.0 * 1000.0 - 1.0) / 12.0).abs() < 1e-3);
        assert!(m.skewness.abs() < 1e-9, "uniform is symmetric: {}", m.skewness);
        // Uniform excess kurtosis = -6/5.
        assert!((m.excess_kurtosis + 1.2).abs() < 0.01, "{}", m.excess_kurtosis);
    }

    #[test]
    fn moments_of_constant_data() {
        let m = run_moments(&[4.0; 50], 2).unwrap();
        assert_eq!(m.mean, 4.0);
        assert!(m.variance.abs() < 1e-9);
        assert_eq!(m.skewness, 0.0);
    }

    #[test]
    fn moments_of_empty_is_none() {
        assert!(run_moments(&[], 1).is_none());
    }

    proptest! {
        #[test]
        fn range_matches_iterator_minmax(
            data in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
            threads in 1usize..5,
        ) {
            let (min, max) = run_range(&data, threads).unwrap();
            let emin = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let emax = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(min, emin);
            prop_assert_eq!(max, emax);
        }

        #[test]
        fn moments_match_two_pass_oracle(
            data in proptest::collection::vec(-10.0f64..10.0, 2..300),
            threads in 1usize..5,
        ) {
            let m = run_moments(&data, threads).unwrap();
            let n = data.len() as f64;
            let mean = data.iter().sum::<f64>() / n;
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((m.mean - mean).abs() < 1e-9);
            prop_assert!((m.variance - var).abs() < 1e-6, "{} vs {}", m.variance, var);
        }

        #[test]
        fn moments_thread_invariant(
            data in proptest::collection::vec(-5.0f64..5.0, 1..200),
        ) {
            let a = run_moments(&data, 1).unwrap();
            let b = run_moments(&data, 4).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-12);
            prop_assert!((a.variance - b.variance).abs() < 1e-9);
        }
    }
}
