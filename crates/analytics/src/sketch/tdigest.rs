//! t-digest: approximate quantiles from a bounded set of centroids.
//!
//! Elements accumulate into weighted centroids; when the set outgrows its
//! buffer it is sorted (by `f64::total_cmp` — a total order, so the pass
//! is deterministic) and greedily re-clustered so that a centroid sitting
//! at quantile `q` holds at most `4·W·q·(1−q)/compression` weight
//! (Dunning's scale-function bound). Weight concentrates at the tails,
//! which is exactly where quantile queries need resolution: rank error is
//! `O(q(1−q)/compression)`.
//!
//! Merging concatenates centroid sets and re-clusters. The result is
//! deterministic for a fixed execution plan, but — unlike the other
//! sketches — the centroid layout depends on *when* compressions happen,
//! so different split/spill plans yield byte-different digests with the
//! same error bound. Cross-plan tests compare quantiles by rank error,
//! not bytes.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// Uncompressed centroids a sketch may hold before re-clustering.
const BUFFER_FACTOR: usize = 8;

/// The reduction object: a weighted centroid set.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TdSketch {
    /// Accuracy/size knob: more compression → more centroids → tighter
    /// quantiles.
    pub compression: f64,
    /// `(mean, weight)` clusters; compressed form is sorted by mean.
    pub centroids: Vec<(f64, f64)>,
    /// Total weight (elements folded in).
    pub count: u64,
}

impl TdSketch {
    fn new(compression: f64) -> TdSketch {
        TdSketch { compression, centroids: Vec::new(), count: 0 }
    }

    fn buffer_limit(&self) -> usize {
        (self.compression as usize).max(8) * BUFFER_FACTOR
    }

    fn add(&mut self, v: f64) {
        self.centroids.push((v, 1.0));
        self.count += 1;
        if self.centroids.len() > self.buffer_limit() {
            self.compress();
        }
    }

    /// Sort and greedily re-cluster under the scale-function weight bound.
    fn compress(&mut self) {
        if self.centroids.len() <= 1 {
            return;
        }
        self.centroids.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = self.centroids.iter().map(|c| c.1).sum();
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.centroids.len());
        let mut cum = 0.0; // weight fully to the left of the open cluster
        let (mut mean, mut weight) = self.centroids[0];
        for &(m, w) in &self.centroids[1..] {
            let q = (cum + (weight + w) / 2.0) / total;
            let limit = 4.0 * total * q * (1.0 - q) / self.compression;
            if weight + w <= limit {
                // Weighted mean keeps the cluster's centroid exact.
                mean = (mean * weight + m * w) / (weight + w);
                weight += w;
            } else {
                out.push((mean, weight));
                cum += weight;
                mean = m;
                weight = w;
            }
        }
        out.push((mean, weight));
        self.centroids = out;
    }

    /// Approximate value at quantile `q ∈ [0, 1]` — `None` on an empty
    /// sketch. Interpolates between adjacent centroid means.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut cs = self.centroids.clone();
        cs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = cs.iter().map(|c| c.1).sum();
        let target = q.clamp(0.0, 1.0) * total;
        let mut cum = 0.0;
        for (i, &(m, w)) in cs.iter().enumerate() {
            let mid = cum + w / 2.0;
            if target <= mid || i + 1 == cs.len() {
                if i == 0 || target >= mid {
                    return Some(m);
                }
                // Interpolate between the previous centroid's mid and ours.
                let (pm, pw) = cs[i - 1];
                let prev_mid = cum - pw / 2.0;
                let t = (target - prev_mid) / (mid - prev_mid);
                return Some(pm + t * (m - pm));
            }
            cum += w;
        }
        cs.last().map(|c| c.0)
    }
}

impl RedObj for TdSketch {}

/// Streaming quantiles under a single key.
///
/// Unit chunk: any size. Output: none — query via [`TDigest::sketch`] /
/// [`TdSketch::quantile`].
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
}

impl TDigest {
    /// A digest with the given compression (clamped to ≥ 10). Around 100
    /// is the customary default: ~1% rank error at the median, much
    /// tighter at the tails.
    pub fn new(compression: f64) -> TDigest {
        TDigest { compression: compression.max(10.0) }
    }

    /// The finished summary from a combination map.
    pub fn sketch(com: &ComMap<TdSketch>) -> Option<&TdSketch> {
        com.get(0)
    }
}

impl Analytics for TDigest {
    type In = f64;
    type Red = TdSketch;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<TdSketch>) {
        let s = obj.get_or_insert_with(|| TdSketch::new(self.compression));
        for &v in chunk.slice(data) {
            s.add(v);
        }
    }

    fn merge(&self, red: &TdSketch, com: &mut TdSketch) {
        debug_assert_eq!(red.compression, com.compression);
        com.centroids.extend_from_slice(&red.centroids);
        com.count += red.count;
        com.compress();
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(td: &TDigest, values: &[f64]) -> TdSketch {
        let mut obj = None;
        let chunk = Chunk { local_start: 0, global_start: 0, len: values.len() };
        td.accumulate(&chunk, values, 0, &mut obj);
        obj.unwrap()
    }

    /// Fraction of the sorted stream at or below `v`.
    fn true_rank(sorted: &[f64], v: f64) -> f64 {
        sorted.iter().filter(|&&x| x <= v).count() as f64 / sorted.len() as f64
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let td = TDigest::new(100.0);
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = fill(&td, &data);
        assert_eq!(s.count, 10_000);
        assert!(s.centroids.len() <= s.buffer_limit());
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(q).unwrap();
            let rank = true_rank(&sorted, est);
            assert!((rank - q).abs() < 0.02, "q={q} est={est} rank={rank}");
        }
    }

    #[test]
    fn tails_are_exact_extremes() {
        let td = TDigest::new(50.0);
        let data: Vec<f64> = (0..5_000).map(|i| (i as f64).sin() * 100.0).collect();
        let s = fill(&td, &data);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(s.quantile(0.0).unwrap() >= lo - 1e-9);
        assert!(s.quantile(1.0).unwrap() <= hi + 1e-9);
    }

    #[test]
    fn merge_keeps_rank_error_bounded() {
        let td = TDigest::new(100.0);
        let a: Vec<f64> = (0..4_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (4_000..8_000).map(|i| i as f64).collect();
        let mut left = fill(&td, &a);
        let right = fill(&td, &b);
        td.merge(&right, &mut left);
        assert_eq!(left.count, 8_000);
        let mut sorted: Vec<f64> = a.iter().chain(&b).copied().collect();
        sorted.sort_by(f64::total_cmp);
        for &q in &[0.05, 0.5, 0.95] {
            let rank = true_rank(&sorted, left.quantile(q).unwrap());
            assert!((rank - q).abs() < 0.03, "q={q} rank={rank}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(TdSketch::new(100.0).quantile(0.5), None);
        let s = fill(&TDigest::new(100.0), &[42.0]);
        assert_eq!(s.quantile(0.5), Some(42.0));
    }
}
