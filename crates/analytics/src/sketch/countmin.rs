//! Count-Min sketch: approximate point frequencies in sub-linear space.
//!
//! A `depth × width` grid of counters; each element increments one
//! counter per row (row-seeded hash). A point query reads the *minimum*
//! across rows, so collisions only ever inflate the answer:
//! `true ≤ estimate ≤ true + εN` with probability `1 − δ`, for
//! `ε = e/width` and `δ = e^−depth` (Cormode & Muthukrishnan 2005).
//!
//! Counters are integers and merging is element-wise addition —
//! associative, commutative, exact — so any split/spill/strategy plan
//! yields the byte-identical sketch.

use super::hash_value;
use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// The reduction object: one counter grid plus the stream length.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CmSketch {
    /// Counters per row.
    pub width: u32,
    /// Independent rows.
    pub depth: u32,
    /// Row-major `depth × width` counters.
    pub counters: Vec<u64>,
    /// Elements folded in (the `N` of the ε-bound).
    pub items: u64,
}

impl CmSketch {
    fn new(width: u32, depth: u32) -> CmSketch {
        CmSketch { width, depth, counters: vec![0; (width * depth) as usize], items: 0 }
    }

    fn bucket(&self, row: u32, v: f64) -> usize {
        let h = hash_value(v, u64::from(row) + 1);
        (row * self.width + (h % u64::from(self.width)) as u32) as usize
    }

    fn add(&mut self, v: f64) {
        for row in 0..self.depth {
            let b = self.bucket(row, v);
            self.counters[b] += 1;
        }
        self.items += 1;
    }

    /// Estimated occurrences of `v`: the row minimum. Never under-counts.
    pub fn estimate(&self, v: f64) -> u64 {
        (0..self.depth).map(|row| self.counters[self.bucket(row, v)]).min().unwrap_or(0)
    }

    /// The additive error ceiling `εN = (e/width)·items` the sketch
    /// guarantees with probability `1 − e^−depth`.
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E / f64::from(self.width) * self.items as f64
    }
}

impl RedObj for CmSketch {}

/// Count-Min frequency sketching under a single key.
///
/// Unit chunk: any size (each element folds independently). Output: none —
/// query the summary via [`CountMin::sketch`] / [`CmSketch::estimate`].
#[derive(Debug, Clone)]
pub struct CountMin {
    width: u32,
    depth: u32,
}

impl CountMin {
    /// A sketch with explicit dimensions.
    pub fn new(width: u32, depth: u32) -> CountMin {
        CountMin { width: width.max(1), depth: depth.max(1) }
    }

    /// Dimensions from target bounds: over-count at most `epsilon · N`
    /// with probability at least `1 − delta`.
    pub fn with_error(epsilon: f64, delta: f64) -> CountMin {
        let width = (std::f64::consts::E / epsilon).ceil().max(1.0) as u32;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as u32;
        CountMin::new(width, depth)
    }

    /// The finished summary from a combination map.
    pub fn sketch(com: &ComMap<CmSketch>) -> Option<&CmSketch> {
        com.get(0)
    }
}

impl Analytics for CountMin {
    type In = f64;
    type Red = CmSketch;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<CmSketch>) {
        let s = obj.get_or_insert_with(|| CmSketch::new(self.width, self.depth));
        for &v in chunk.slice(data) {
            s.add(v);
        }
    }

    fn merge(&self, red: &CmSketch, com: &mut CmSketch) {
        debug_assert_eq!((red.width, red.depth), (com.width, com.depth));
        for (c, r) in com.counters.iter_mut().zip(&red.counters) {
            *c += r;
        }
        com.items += red.items;
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cm: &CountMin, values: &[f64]) -> CmSketch {
        let mut obj = None;
        let chunk = Chunk { local_start: 0, global_start: 0, len: values.len() };
        cm.accumulate(&chunk, values, 0, &mut obj);
        obj.unwrap()
    }

    #[test]
    fn never_undercounts_and_respects_epsilon_bound() {
        let cm = CountMin::with_error(0.01, 0.01);
        let data: Vec<f64> = (0..2000).map(|i| (i % 50) as f64).collect();
        let s = fill(&cm, &data);
        assert_eq!(s.items, 2000);
        for v in 0..50 {
            let est = s.estimate(v as f64);
            assert!(est >= 40, "undercount for {v}: {est}");
            assert!(
                (est as f64) <= 40.0 + s.error_bound(),
                "overcount past bound for {v}: {est} > 40 + {}",
                s.error_bound()
            );
        }
    }

    #[test]
    fn merge_is_elementwise_and_exact() {
        let cm = CountMin::new(64, 4);
        let a: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| (i % 5) as f64).collect();
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        let mut left = fill(&cm, &a);
        let right = fill(&cm, &b);
        cm.merge(&right, &mut left);
        assert_eq!(left, fill(&cm, &whole));
    }

    #[test]
    fn unseen_values_estimate_low() {
        let cm = CountMin::new(1024, 4);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = fill(&cm, &data);
        // ε-bound: e/1024 · 100 < 1, so an unseen value estimates 0 with
        // high probability; allow the bound, not zero.
        assert!((s.estimate(1e9) as f64) <= s.error_bound().ceil());
    }
}
