//! Mergeable sketch summaries as ordinary Smart analytics.
//!
//! Out-of-core reduction (the spilling shuffle, `smart-spill`) attacks
//! unbounded *key* cardinality; sketches attack unbounded *state per
//! answer*: each app here reduces an arbitrarily large input stream into
//! a **fixed-size summary** whose `merge` is associative and commutative,
//! so the summary flows through split, spill, local and global
//! combination exactly like any reduction object — the sequential
//! programming view of the paper, unchanged.
//!
//! | sketch | answers | summary size | error bound |
//! |---|---|---|---|
//! | [`CountMin`] | point frequencies | `width × depth` u64 | over-count ≤ εN with prob 1−δ (ε = e/width, δ = e^−depth) |
//! | [`HyperLogLog`] | distinct count | `2^precision` u8 | relative error ≈ 1.04/√2^precision |
//! | [`TDigest`] | quantiles | ≤ ~2·compression centroids | rank error O(q(1−q)/compression) |
//! | [`ReservoirSample`] | uniform sample | `k` elements | exact k-sample of the stream |
//!
//! Count-Min (element-wise add), HyperLogLog (element-wise max), and the
//! bottom-k reservoir (set minimum) are *order-insensitive*: any
//! partitioning, spill fragmentation, or combination strategy produces
//! the byte-identical summary. The t-digest's centroid layout depends on
//! when compressions happen, so it is deterministic for a fixed execution
//! plan but compared by rank-error bound — not bytes — across plans.
//!
//! All four opt into the spilling shuffle ([`Analytics::spill_safe`]):
//! no triggers, no combination-map reads, identity `post_combine`, and
//! accumulation distributes over `merge` by construction.
//!
//! [`Analytics::spill_safe`]: smart_core::Analytics::spill_safe

pub mod countmin;
pub mod hll;
pub mod reservoir;
pub mod tdigest;

pub use countmin::{CmSketch, CountMin};
pub use hll::{HllSketch, HyperLogLog};
pub use reservoir::{ResSketch, ReservoirSample};
pub use tdigest::{TDigest, TdSketch};

/// SplitMix64: the finalizer-quality 64-bit mixer every sketch hashes
/// through. Deterministic across platforms and runs — sketch contents are
/// part of the bit-identity surface.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an input element. `f64::to_bits` keeps the map total (NaN and
/// signed zero included) and exact — no rounding before hashing.
pub(crate) fn hash_value(v: f64, seed: u64) -> u64 {
    splitmix64(v.to_bits() ^ splitmix64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Known vector: splitmix64 of 0 per the reference implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn hash_value_separates_negative_zero_and_nan() {
        assert_ne!(hash_value(0.0, 1), hash_value(-0.0, 1));
        assert_eq!(hash_value(f64::NAN, 1), hash_value(f64::NAN, 1));
    }
}
