//! Deterministic reservoir sampling: a uniform `k`-sample of the stream.
//!
//! Classic reservoir sampling (Vitter's Algorithm R) draws randomness
//! per element, which makes the sample depend on processing order —
//! useless in a framework whose contract is bit-identical results across
//! thread counts, split layouts, spill plans, and combination
//! strategies. This variant derives each element's *priority* from a
//! keyed hash of its **global array index**:
//!
//! ```text
//! priority(i) = splitmix64(seed ⊕ splitmix64(i))
//! ```
//!
//! and keeps the `k` elements with the smallest priorities (bottom-k).
//! Priorities are a pure function of position, so the winning set is a
//! *set function* of the stream: any partitioning reaches the same `k`
//! winners, and merging (union → sort → truncate) is associative,
//! commutative, and idempotent — the summary is byte-identical across
//! every execution plan. Against the hash the indices behave as i.i.d.
//! uniform draws, so the winners are a uniform `k`-subset of positions.

use super::splitmix64;
use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// The reduction object: the current bottom-`k` winners.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ResSketch {
    /// Sample size cap.
    pub k: usize,
    /// `(priority, value)` pairs, sorted ascending by priority, at most
    /// `k` of them.
    pub entries: Vec<(u64, f64)>,
    /// Stream length folded in.
    pub items: u64,
}

impl ResSketch {
    fn new(k: usize) -> ResSketch {
        ResSketch { k, entries: Vec::new(), items: 0 }
    }

    /// Re-establish the invariant: sorted by priority, truncated to `k`.
    /// Global indices are distinct so priorities collide only by hash
    /// accident; the value bits break such ties deterministically.
    fn settle(&mut self) {
        self.entries.sort_unstable_by_key(|&(p, v)| (p, v.to_bits()));
        self.entries.truncate(self.k);
    }

    fn add(&mut self, priority: u64, v: f64) {
        self.items += 1;
        if self.entries.len() == self.k {
            // PANIC-FREE: len == k and ResSketch::new starts empty, so k > 0 here.
            if priority >= self.entries[self.k - 1].0 {
                return; // loses to the current worst winner
            }
        }
        self.entries.push((priority, v));
        self.settle();
    }

    /// The sampled values, in priority order.
    pub fn sample(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|&(_, v)| v)
    }
}

impl RedObj for ResSketch {}

/// Uniform `k`-sampling under a single key, deterministic for a fixed
/// `(k, seed)` regardless of execution plan.
///
/// Unit chunk: any size. Output: none — read the sample via
/// [`ReservoirSample::sketch`] / [`ResSketch::sample`].
#[derive(Debug, Clone)]
pub struct ReservoirSample {
    k: usize,
    seed: u64,
}

impl ReservoirSample {
    /// Sample `k` elements (minimum 1) under `seed`.
    pub fn new(k: usize, seed: u64) -> ReservoirSample {
        ReservoirSample { k: k.max(1), seed }
    }

    /// The priority the sketch assigns to global element index `i`.
    pub fn priority(&self, i: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(i))
    }

    /// The finished summary from a combination map.
    pub fn sketch(com: &ComMap<ResSketch>) -> Option<&ResSketch> {
        com.get(0)
    }
}

impl Analytics for ReservoirSample {
    type In = f64;
    type Red = ResSketch;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<ResSketch>) {
        let s = obj.get_or_insert_with(|| ResSketch::new(self.k));
        for (i, &v) in chunk.slice(data).iter().enumerate() {
            s.add(self.priority((chunk.global_start + i) as u64), v);
        }
    }

    fn merge(&self, red: &ResSketch, com: &mut ResSketch) {
        debug_assert_eq!(red.k, com.k);
        com.entries.extend_from_slice(&red.entries);
        com.items += red.items;
        com.settle();
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_from(rs: &ReservoirSample, values: &[f64], global_start: usize) -> ResSketch {
        let mut obj = None;
        let chunk = Chunk { local_start: 0, global_start, len: values.len() };
        rs.accumulate(&chunk, values, 0, &mut obj);
        obj.unwrap()
    }

    #[test]
    fn keeps_exactly_k_when_stream_is_larger() {
        let rs = ReservoirSample::new(16, 7);
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = fill_from(&rs, &data, 0);
        assert_eq!(s.entries.len(), 16);
        assert_eq!(s.items, 1000);
    }

    #[test]
    fn short_stream_is_kept_whole() {
        let rs = ReservoirSample::new(32, 7);
        let s = fill_from(&rs, &[1.0, 2.0, 3.0], 0);
        assert_eq!(s.entries.len(), 3);
    }

    #[test]
    fn split_points_do_not_change_the_sample() {
        let rs = ReservoirSample::new(8, 99);
        let data: Vec<f64> = (0..500).map(|i| (i * i % 311) as f64).collect();
        let whole = fill_from(&rs, &data, 0);
        for cut in [1, 100, 250, 499] {
            let mut left = fill_from(&rs, &data[..cut], 0);
            let right = fill_from(&rs, &data[cut..], cut);
            rs.merge(&right, &mut left);
            assert_eq!(left, whole, "cut at {cut}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let rs = ReservoirSample::new(8, 3);
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let a = fill_from(&rs, &data[..90], 0);
        let b = fill_from(&rs, &data[90..], 90);
        let mut ab = a.clone();
        rs.merge(&b, &mut ab);
        let mut ba = b.clone();
        rs.merge(&a, &mut ba);
        assert_eq!(ab, ba);
    }

    #[test]
    fn different_seeds_pick_different_samples() {
        let data: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let a = fill_from(&ReservoirSample::new(8, 1), &data, 0);
        let b = fill_from(&ReservoirSample::new(8, 2), &data, 0);
        assert_ne!(a.entries, b.entries);
    }

    #[test]
    fn sample_roughly_uniform_over_positions() {
        // With k=100 of 1000 positions, the mean sampled value for data[i]=i
        // should land near 499.5; a wildly skewed picker would not.
        let rs = ReservoirSample::new(100, 42);
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = fill_from(&rs, &data, 0);
        let mean: f64 = s.sample().sum::<f64>() / 100.0;
        assert!((mean - 499.5).abs() < 120.0, "mean {mean}");
    }
}
