//! HyperLogLog: approximate distinct counting in `2^precision` bytes.
//!
//! Each element hashes to 64 bits; the top `p` bits pick a register and
//! the remaining bits' leading-zero count (plus one) is the observation.
//! A register keeps the *maximum* observation, so merging is element-wise
//! `max` — associative, commutative, idempotent — and any split/spill
//! plan produces the byte-identical register file. The estimator is the
//! bias-corrected harmonic mean (Flajolet et al. 2007) with the
//! small-range linear-counting correction; its standard relative error
//! is `≈ 1.04 / √m` for `m = 2^precision` registers.

use super::hash_value;
use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// Seed separating the HLL hash stream from the other sketches'.
const HLL_SEED: u64 = 0x48_4C_4C; // "HLL"

/// The reduction object: one register file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HllSketch {
    /// Register-index bits (`m = 2^precision` registers).
    pub precision: u32,
    /// One max-rank observation per register.
    pub registers: Vec<u8>,
}

impl HllSketch {
    fn new(precision: u32) -> HllSketch {
        HllSketch { precision, registers: vec![0; 1 << precision] }
    }

    fn add(&mut self, v: f64) {
        let h = hash_value(v, HLL_SEED);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the first set bit in the remaining 64−p bits, 1-based;
        // an all-zero suffix ranks 64−p+1.
        let rank = ((h << self.precision) | (1 << (self.precision - 1))).leading_zeros() as u8 + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct elements folded in.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| (-f64::from(r)).exp2()).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting on empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Standard relative error of the estimator: `1.04 / √m`.
    pub fn rel_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

impl RedObj for HllSketch {}

/// Distinct counting under a single key.
///
/// Unit chunk: any size. Output: none — query via
/// [`HyperLogLog::sketch`] / [`HllSketch::estimate`].
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u32,
}

impl HyperLogLog {
    /// A sketch with `2^precision` registers. Precision is clamped to
    /// `[4, 16]` (the estimator's classical operating range).
    pub fn new(precision: u32) -> HyperLogLog {
        HyperLogLog { precision: precision.clamp(4, 16) }
    }

    /// The finished summary from a combination map.
    pub fn sketch(com: &ComMap<HllSketch>) -> Option<&HllSketch> {
        com.get(0)
    }
}

impl Analytics for HyperLogLog {
    type In = f64;
    type Red = HllSketch;
    type Out = f64;
    type Extra = ();

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<HllSketch>) {
        let s = obj.get_or_insert_with(|| HllSketch::new(self.precision));
        for &v in chunk.slice(data) {
            s.add(v);
        }
    }

    fn merge(&self, red: &HllSketch, com: &mut HllSketch) {
        debug_assert_eq!(red.precision, com.precision);
        for (c, r) in com.registers.iter_mut().zip(&red.registers) {
            *c = (*c).max(*r);
        }
    }

    fn key_bound(&self) -> Option<usize> {
        Some(1)
    }

    fn spill_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(hll: &HyperLogLog, values: &[f64]) -> HllSketch {
        let mut obj = None;
        let chunk = Chunk { local_start: 0, global_start: 0, len: values.len() };
        hll.accumulate(&chunk, values, 0, &mut obj);
        obj.unwrap()
    }

    #[test]
    fn estimates_within_three_sigma() {
        let hll = HyperLogLog::new(12);
        for &n in &[100usize, 1_000, 20_000] {
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let s = fill(&hll, &data);
            let est = s.estimate();
            let tol = 3.0 * s.rel_error() * n as f64;
            assert!((est - n as f64).abs() <= tol.max(3.0), "n={n} est={est} tol={tol}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let hll = HyperLogLog::new(10);
        let distinct: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let repeated: Vec<f64> = (0..6400).map(|i| (i % 64) as f64).collect();
        assert_eq!(fill(&hll, &distinct), fill(&hll, &repeated));
    }

    #[test]
    fn merge_is_union() {
        let hll = HyperLogLog::new(10);
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let b: Vec<f64> = (250..750).map(|i| i as f64).collect();
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        let mut left = fill(&hll, &a);
        let right = fill(&hll, &b);
        hll.merge(&right, &mut left);
        assert_eq!(left, fill(&hll, &whole));
    }

    #[test]
    fn precision_is_clamped() {
        assert_eq!(fill(&HyperLogLog::new(1), &[1.0]).registers.len(), 16);
        assert_eq!(fill(&HyperLogLog::new(40), &[1.0]).registers.len(), 1 << 16);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = HllSketch::new(10);
        assert_eq!(s.estimate(), 0.0);
    }
}
