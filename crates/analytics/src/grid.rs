//! Grid aggregation (paper §5.1, after SAGA \[57\]) — the visualization
//! representative: collapse every `grid_size` consecutive elements into one
//! aggregate for multi-resolution rendering.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// Aggregate of one grid cell.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct GridCell {
    /// Sum of the cell's elements.
    pub sum: f64,
    /// Elements aggregated so far.
    pub count: u64,
    /// Elements the cell will receive in total; used by the early-emission
    /// trigger.
    pub expected: u64,
}

impl RedObj for GridCell {
    fn trigger(&self) -> bool {
        self.expected > 0 && self.count == self.expected
    }
}

/// Structural aggregation: element `i` belongs to grid cell `i / grid_size`;
/// the output is each cell's mean. Keys come from *global* element
/// positions, so the aggregation is consistent across rank partitions.
///
/// Unit chunk: 1 element. Output: `out[cell] = mean`.
#[derive(Debug, Clone)]
pub struct GridAggregation {
    grid_size: usize,
    /// Global element count; lets boundary cells (the final partial cell)
    /// compute their true expected size for the trigger.
    total_len: usize,
}

impl GridAggregation {
    /// Aggregate `total_len` global elements into cells of `grid_size`.
    ///
    /// # Panics
    /// Panics if `grid_size == 0`.
    pub fn new(grid_size: usize, total_len: usize) -> Self {
        assert!(grid_size > 0, "grid_size must be positive");
        GridAggregation { grid_size, total_len }
    }

    /// Number of output cells.
    pub fn cells(&self) -> usize {
        self.total_len.div_ceil(self.grid_size)
    }

    fn expected_in_cell(&self, cell: usize) -> u64 {
        let start = cell * self.grid_size;
        let end = ((cell + 1) * self.grid_size).min(self.total_len);
        end.saturating_sub(start) as u64
    }
}

impl Analytics for GridAggregation {
    type In = f64;
    type Red = GridCell;
    type Out = f64;
    type Extra = ();

    fn gen_key(&self, chunk: &Chunk, _data: &[f64], _com: &ComMap<GridCell>) -> Key {
        (chunk.global_start / self.grid_size) as Key
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<GridCell>) {
        let cell = obj.get_or_insert_with(|| GridCell {
            sum: 0.0,
            count: 0,
            expected: self.expected_in_cell(key as usize),
        });
        cell.sum += data[chunk.local_start];
        cell.count += 1;
    }

    fn merge(&self, red: &GridCell, com: &mut GridCell) {
        com.sum += red.sum;
        com.count += red.count;
    }

    fn convert(&self, obj: &GridCell, out: &mut f64) {
        *out = if obj.count > 0 { obj.sum / obj.count as f64 } else { 0.0 };
    }

    fn key_bound(&self) -> Option<usize> {
        // Keys are cell indices: dense and bounded by construction.
        Some(self.cells())
    }

    fn spill_safe(&self) -> bool {
        // Sum/count folds distribute over merge; the early-emission trigger
        // is simply disabled while spilling (outputs are identical either
        // way — emission only changes *when* cells convert).
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn oracle(grid: usize, data: &[f64]) -> Vec<f64> {
        data.chunks(grid).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
    }

    #[test]
    fn cells_counts_partial_tail() {
        assert_eq!(GridAggregation::new(10, 100).cells(), 10);
        assert_eq!(GridAggregation::new(10, 101).cells(), 11);
        assert_eq!(GridAggregation::new(10, 5).cells(), 1);
    }

    #[test]
    fn trigger_fires_only_when_cell_complete() {
        let full = GridCell { sum: 1.0, count: 10, expected: 10 };
        let partial = GridCell { sum: 1.0, count: 9, expected: 10 };
        assert!(full.trigger());
        assert!(!partial.trigger());
    }

    #[test]
    fn aggregation_matches_oracle() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).cos()).collect();
        let app = GridAggregation::new(25, data.len());
        let cells = app.cells();
        let expected = oracle(25, &data);

        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(4, 1), pool).unwrap();
        let mut out = vec![0.0f64; cells];
        s.run(&data, &mut out).unwrap();
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn interior_cells_emit_early() {
        // Cells entirely inside one split trigger during reduction; with a
        // single thread every cell completes locally, so the combination map
        // ends empty.
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let app = GridAggregation::new(10, data.len());
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(1, 1), pool).unwrap();
        let mut out = vec![0.0f64; 10];
        s.run(&data, &mut out).unwrap();
        assert_eq!(s.combination_map().len(), 0);
        assert!((out[0] - 4.5).abs() < 1e-12);
        assert!((out[9] - 94.5).abs() < 1e-12);
    }

    #[test]
    fn split_boundary_cells_resolve_through_combination() {
        // 2 threads, grid cells of 7 over 100 elements: some cells straddle
        // the split boundary and must be merged.
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let app = GridAggregation::new(7, data.len());
        let cells = app.cells();
        let expected = oracle(7, &data);
        let pool = smart_pool::shared_pool(2).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(2, 1), pool).unwrap();
        let mut out = vec![0.0f64; cells];
        s.run(&data, &mut out).unwrap();
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn matches_oracle_on_random_inputs(
            data in proptest::collection::vec(-50.0f64..50.0, 1..400),
            grid in 1usize..20,
            threads in 1usize..5,
        ) {
            let app = GridAggregation::new(grid, data.len());
            let cells = app.cells();
            let expected = oracle(grid, &data);
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(app, SchedArgs::new(threads, 1), pool).unwrap();
            let mut out = vec![0.0f64; cells];
            s.run(&data, &mut out).unwrap();
            for (a, b) in out.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
