//! # smart-analytics
//!
//! The nine analytics applications of the Smart paper's evaluation (§5.1),
//! written against the `smart-core` API — one per in-situ use-case class:
//!
//! | class | application | module |
//! |---|---|---|
//! | visualization | grid aggregation | [`grid`] |
//! | statistical | histogram | [`histogram`] |
//! | similarity | mutual information | [`mutual_info`] |
//! | feature | logistic regression | [`logistic`] |
//! | clustering | k-means | [`kmeans`] |
//! | window-based | moving average, moving median, Gaussian kernel smoothing, Savitzky–Golay | [`window`] |
//! | window-based (§4.1's Θ(K) case) | K-nearest-neighbor smoother | [`knn`] |
//! | statistical (pre-jobs) | value range, central moments | [`stats`] |
//! | visualization (3-D structural) | block aggregation | [`grid3d`] |
//! | sketch summaries | Count-Min, HyperLogLog, t-digest, reservoir sample | [`sketch`] |
//!
//! Exactly as the paper argues (§3.5), each application is a reduction
//! object plus a handful of sequential callbacks; no parallelization code
//! appears anywhere in this crate. The same implementations run in time
//! sharing, space sharing, and offline modes.

pub mod grid;
pub mod grid3d;
pub mod histogram;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod logistic;
pub mod mutual_info;
pub mod sketch;
pub mod stats;
pub mod window;

pub use grid::{GridAggregation, GridCell};
pub use grid3d::{Dims3, Grid3DAggregation};
pub use histogram::{Bucket, Histogram};
pub use kmeans::{ClusterObj, KMeans};
pub use knn::{KnnObj, KnnSmoother};
pub use logistic::{LogisticRegression, LrObj};
pub use mutual_info::{Cell, MutualInformation};
pub use sketch::{
    CmSketch, CountMin, HllSketch, HyperLogLog, ResSketch, ReservoirSample, TDigest, TdSketch,
};
pub use stats::{Moments, MomentsObj, MomentsSummary, RangeObj, ValueRange};
pub use window::{
    GaussianSmoother, MovingAverage, MovingMedian, SavitzkyGolay, WinMedianObj, WinObj,
    WinWeightedObj,
};
