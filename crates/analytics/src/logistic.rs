//! Logistic regression by batch gradient descent (paper §5.1) — the
//! feature-analytics representative, and the paper's example of an
//! application whose whole state is a *single* reduction object (which is
//! why its global-combination overhead is unnoticeable, §5.3).

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// The lone reduction object: current weights plus the gradient being
/// accumulated this iteration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LrObj {
    /// Model weights (one per feature).
    pub weights: Vec<f64>,
    /// Accumulated gradient (distributive field; reset by `post_combine`).
    pub grad: Vec<f64>,
    /// Records accumulated this iteration (distributive field).
    pub count: u64,
}

impl RedObj for LrObj {}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Batch-gradient-descent logistic regression.
///
/// Unit chunk: `dims + 1` doubles — the feature vector followed by the
/// 0/1 label. Extra data: the initial weights. Each scheduler iteration is
/// one gradient step over the block; `num_iters` controls the paper's
/// "number of iterations" parameter. Output: `out[0] = weights`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    dims: usize,
    learning_rate: f64,
}

impl LogisticRegression {
    /// Model over `dims` features with the given learning rate.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the learning rate is not positive.
    pub fn new(dims: usize, learning_rate: f64) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        LogisticRegression { dims, learning_rate }
    }

    /// Feature dimensionality (record length is `dims + 1`).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Unit-chunk size for the scheduler (`dims + 1`).
    pub fn chunk_size(&self) -> usize {
        self.dims + 1
    }

    /// Mean prediction accuracy of `weights` on labeled `records`.
    pub fn accuracy(&self, weights: &[f64], records: &[f64]) -> f64 {
        let rec = self.chunk_size();
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in records.chunks_exact(rec) {
            let dot: f64 = r[..self.dims].iter().zip(weights).map(|(x, w)| x * w).sum();
            let pred = f64::from(sigmoid(dot) >= 0.5);
            correct += usize::from(pred == r[self.dims]);
            total += 1;
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

impl Analytics for LogisticRegression {
    type In = f64;
    type Red = LrObj;
    type Out = Vec<f64>;
    type Extra = Vec<f64>;

    // gen_key: default (single key 0).

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<LrObj>) {
        let obj = obj.as_mut().expect("LrObj seeded by process_extra_data and distributed");
        let rec = chunk.slice(data);
        let (x, y) = (&rec[..self.dims], rec[self.dims]);
        let dot: f64 = x.iter().zip(&obj.weights).map(|(xi, wi)| xi * wi).sum();
        let err = sigmoid(dot) - y;
        for (g, xi) in obj.grad.iter_mut().zip(x) {
            *g += err * xi;
        }
        obj.count += 1;
    }

    fn merge(&self, red: &LrObj, com: &mut LrObj) {
        for (c, r) in com.grad.iter_mut().zip(&red.grad) {
            *c += r;
        }
        com.count += red.count;
    }

    fn process_extra_data(&self, extra: Option<&Vec<f64>>, com: &mut ComMap<LrObj>) {
        let weights = extra.cloned().unwrap_or_else(|| vec![0.0; self.dims]);
        assert_eq!(weights.len(), self.dims, "initial weights must have dims elements");
        com.insert(0, LrObj { weights, grad: vec![0.0; self.dims], count: 0 });
    }

    fn post_combine(&self, com: &mut ComMap<LrObj>) {
        let obj = com.get_mut(0).expect("key 0 seeded");
        if obj.count > 0 {
            let scale = self.learning_rate / obj.count as f64;
            for (w, g) in obj.weights.iter_mut().zip(&obj.grad) {
                *w -= scale * g;
            }
        }
        obj.grad.iter_mut().for_each(|g| *g = 0.0);
        obj.count = 0;
    }

    fn convert(&self, obj: &LrObj, out: &mut Vec<f64>) {
        out.clone_from(&obj.weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_core::{SchedArgs, Scheduler};
    use smart_sim::LabeledEmulator;

    /// Sequential batch-gradient oracle, identical math.
    fn oracle(dims: usize, lr: f64, init: &[f64], data: &[f64], iters: usize) -> Vec<f64> {
        let rec = dims + 1;
        let mut w = init.to_vec();
        for _ in 0..iters {
            let mut grad = vec![0.0; dims];
            let mut count = 0u64;
            for r in data.chunks_exact(rec) {
                let dot: f64 = r[..dims].iter().zip(&w).map(|(x, wi)| x * wi).sum();
                let err = sigmoid(dot) - r[dims];
                for (g, x) in grad.iter_mut().zip(&r[..dims]) {
                    *g += err * x;
                }
                count += 1;
            }
            if count > 0 {
                for (wi, g) in w.iter_mut().zip(&grad) {
                    *wi -= lr / count as f64 * g;
                }
            }
        }
        w
    }

    fn run_smart(dims: usize, lr: f64, data: &[f64], iters: usize, threads: usize) -> Vec<f64> {
        let app = LogisticRegression::new(dims, lr);
        let args =
            SchedArgs::new(threads, app.chunk_size()).with_extra(vec![0.0; dims]).with_iters(iters);
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(app, args, pool).unwrap();
        let mut out = vec![Vec::new()];
        s.run(data, &mut out).unwrap();
        out.pop().unwrap()
    }

    #[test]
    fn single_iteration_matches_oracle() {
        let mut emu = LabeledEmulator::new(5, 4);
        let data = emu.step(500);
        let got = run_smart(4, 0.5, &data, 1, 3);
        let want = oracle(4, 0.5, &[0.0; 4], &data, 1);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn ten_iterations_match_oracle_with_any_thread_count() {
        let mut emu = LabeledEmulator::new(6, 15);
        let data = emu.step(400);
        let want = oracle(15, 1.0, &[0.0; 15], &data, 10);
        for threads in [1, 2, 4] {
            let got = run_smart(15, 1.0, &data, 10, threads);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-8, "threads={threads}");
            }
        }
    }

    #[test]
    fn learns_the_planted_model() {
        let mut emu = LabeledEmulator::new(21, 8);
        let train = emu.step(4000);
        let w = run_smart(8, 2.0, &train, 30, 4);
        let app = LogisticRegression::new(8, 2.0);
        // Labels are sampled from σ(w*·x), so even the Bayes classifier
        // sits near ~0.77 on this geometry; 0.72 is far above chance.
        let acc = app.accuracy(&w, &train);
        assert!(acc > 0.72, "training accuracy {acc}");
        // Learned weights correlate with the planted alternating signs.
        for (i, wi) in w.iter().enumerate() {
            let expected_sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!(wi * expected_sign > 0.0, "weight {i} has wrong sign: {wi}");
        }
    }

    #[test]
    fn distributed_run_matches_single_rank() {
        let mut emu = LabeledEmulator::new(9, 5);
        let data = emu.step(600);
        let reference = run_smart(5, 1.0, &data, 5, 2);

        let results = smart_comm::run_cluster(3, |mut comm| {
            let app = LogisticRegression::new(5, 1.0);
            let rec = app.chunk_size();
            let records = data.len() / rec;
            let per = records / comm.size();
            let lo = comm.rank() * per * rec;
            let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + per * rec };
            let args = SchedArgs::new(2, rec).with_extra(vec![0.0; 5]).with_iters(5);
            let pool = smart_pool::shared_pool(2).unwrap();
            let mut s = Scheduler::new(app, args, pool).unwrap();
            let mut out = vec![Vec::new()];
            s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            out.pop().unwrap()
        });
        for rank_w in &results {
            for (a, b) in rank_w.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn accuracy_on_empty_data_is_zero() {
        let app = LogisticRegression::new(3, 0.1);
        assert_eq!(app.accuracy(&[0.0; 3], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn zero_dims_rejected() {
        let _ = LogisticRegression::new(0, 0.1);
    }
}
