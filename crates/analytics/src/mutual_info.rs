//! Mutual information between two co-simulated variables (paper §5.1) —
//! the similarity-analytics representative.
//!
//! The input is a stream of `(x, y)` pairs (unit chunk = 2 elements). The
//! reduction builds the joint 2-D histogram; the mutual information
//!
//! ```text
//! I(X;Y) = Σᵢⱼ p(i,j) · ln( p(i,j) / (p(i)·p(j)) )
//! ```
//!
//! is computed from the combination map afterwards — the "nuanced MapReduce
//! pipeline" pattern the paper mentions (§5.8): the Smart job produces the
//! joint distribution, a cheap sequential epilogue derives the statistic.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// One cell of the joint histogram.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Cell {
    /// Pairs observed in this cell.
    pub count: u64,
}

impl RedObj for Cell {}

/// Joint-histogram construction for mutual information.
///
/// `x` is bucketed over `[x_min, x_max)` into `x_buckets` buckets and `y`
/// likewise; the key is the flattened 2-D cell index.
#[derive(Debug, Clone)]
pub struct MutualInformation {
    x_min: f64,
    x_width: f64,
    x_buckets: usize,
    y_min: f64,
    y_width: f64,
    y_buckets: usize,
}

impl MutualInformation {
    /// Joint histogram of `x_buckets × y_buckets` cells (paper: 100 × 100).
    ///
    /// # Panics
    /// Panics on zero bucket counts or empty value ranges.
    pub fn new(
        (x_min, x_max, x_buckets): (f64, f64, usize),
        (y_min, y_max, y_buckets): (f64, f64, usize),
    ) -> Self {
        assert!(x_buckets > 0 && y_buckets > 0, "need at least one bucket per axis");
        assert!(x_max > x_min && y_max > y_min, "empty value range");
        MutualInformation {
            x_min,
            x_width: (x_max - x_min) / x_buckets as f64,
            x_buckets,
            y_min,
            y_width: (y_max - y_min) / y_buckets as f64,
            y_buckets,
        }
    }

    /// Total joint cells.
    pub fn cells(&self) -> usize {
        self.x_buckets * self.y_buckets
    }

    fn bucket(v: f64, min: f64, width: f64, n: usize) -> usize {
        if !v.is_finite() || v < min {
            return 0;
        }
        (((v - min) / width) as usize).min(n - 1)
    }

    /// The joint cell of a pair.
    pub fn cell_of(&self, x: f64, y: f64) -> usize {
        let xi = Self::bucket(x, self.x_min, self.x_width, self.x_buckets);
        let yi = Self::bucket(y, self.y_min, self.y_width, self.y_buckets);
        xi * self.y_buckets + yi
    }

    /// Mutual information (nats) from a finished combination map.
    pub fn mutual_information(&self, com: &ComMap<Cell>) -> f64 {
        let mut joint = vec![0u64; self.cells()];
        for (key, cell) in com.iter() {
            if let Ok(idx) = usize::try_from(key) {
                if idx < joint.len() {
                    joint[idx] = cell.count;
                }
            }
        }
        let n: u64 = joint.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let mut px = vec![0.0f64; self.x_buckets];
        let mut py = vec![0.0f64; self.y_buckets];
        for xi in 0..self.x_buckets {
            for yi in 0..self.y_buckets {
                let p = joint[xi * self.y_buckets + yi] as f64 / nf;
                px[xi] += p;
                py[yi] += p;
            }
        }
        let mut mi = 0.0;
        for xi in 0..self.x_buckets {
            for yi in 0..self.y_buckets {
                let p = joint[xi * self.y_buckets + yi] as f64 / nf;
                if p > 0.0 {
                    mi += p * (p / (px[xi] * py[yi])).ln();
                }
            }
        }
        mi.max(0.0)
    }
}

impl Analytics for MutualInformation {
    type In = f64;
    type Red = Cell;
    type Out = u64;
    type Extra = ();

    fn gen_key(&self, chunk: &Chunk, data: &[f64], _com: &ComMap<Cell>) -> Key {
        let pair = chunk.slice(data);
        self.cell_of(pair[0], pair[1]) as Key
    }

    fn accumulate(&self, _chunk: &Chunk, _data: &[f64], _key: Key, obj: &mut Option<Cell>) {
        obj.get_or_insert_with(Cell::default).count += 1;
    }

    fn merge(&self, red: &Cell, com: &mut Cell) {
        com.count += red.count;
    }

    fn convert(&self, obj: &Cell, out: &mut u64) {
        *out = obj.count;
    }

    fn spill_safe(&self) -> bool {
        // Pure counting: integer adds distribute exactly over merge and
        // gen_key never consults the combination map.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn app() -> MutualInformation {
        MutualInformation::new((0.0, 1.0, 10), (0.0, 1.0, 10))
    }

    fn run_pairs(mi: &MutualInformation, pairs: &[(f64, f64)], threads: usize) -> f64 {
        let data: Vec<f64> = pairs.iter().flat_map(|&(x, y)| [x, y]).collect();
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(mi.clone(), SchedArgs::new(threads, 2), pool).unwrap();
        s.run(&data, &mut []).unwrap();
        mi.mutual_information(s.combination_map())
    }

    #[test]
    fn identical_variables_have_high_mi() {
        let pairs: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let v = (i % 1000) as f64 / 1000.0;
                (v, v)
            })
            .collect();
        let mi = run_pairs(&app(), &pairs, 4);
        // X == Y uniform over 10 buckets → I = H(X) = ln(10) ≈ 2.30.
        assert!((mi - (10.0f64).ln()).abs() < 0.05, "mi = {mi}");
    }

    #[test]
    fn independent_variables_have_near_zero_mi() {
        // Deterministic low-discrepancy-ish fill of the unit square.
        let pairs: Vec<(f64, f64)> = (0..10_000)
            .map(|i| (((i * 37) % 1000) as f64 / 1000.0, ((i * 61) % 997) as f64 / 997.0))
            .collect();
        let mi = run_pairs(&app(), &pairs, 4);
        assert!(mi < 0.1, "mi = {mi}");
    }

    #[test]
    fn mi_is_nonnegative_and_empty_map_is_zero() {
        let m = app();
        assert_eq!(m.mutual_information(&ComMap::new()), 0.0);
    }

    #[test]
    fn joint_counts_match_direct_tally() {
        let m = app();
        let pairs: Vec<(f64, f64)> =
            (0..500).map(|i| ((i % 17) as f64 / 17.0, (i % 23) as f64 / 23.0)).collect();
        let data: Vec<f64> = pairs.iter().flat_map(|&(x, y)| [x, y]).collect();

        let pool = smart_pool::shared_pool(2).unwrap();
        let mut s = Scheduler::new(m.clone(), SchedArgs::new(2, 2), pool).unwrap();
        s.run(&data, &mut []).unwrap();

        let mut expected = vec![0u64; m.cells()];
        for &(x, y) in &pairs {
            expected[m.cell_of(x, y)] += 1;
        }
        for (key, cell) in s.combination_map().iter() {
            assert_eq!(cell.count, expected[key as usize], "cell {key}");
        }
        let total: u64 = s.combination_map().iter().map(|(_, c)| c.count).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn odd_length_input_is_rejected() {
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s = Scheduler::new(app(), SchedArgs::new(1, 2), pool).unwrap();
        assert!(s.run(&[1.0, 2.0, 3.0], &mut []).is_err());
    }

    proptest! {
        #[test]
        fn mi_nonnegative_and_bounded_by_entropy(
            pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..300)
        ) {
            let m = app();
            let mi = run_pairs(&m, &pairs, 2);
            prop_assert!(mi >= 0.0);
            // I(X;Y) ≤ min(H(X), H(Y)) ≤ ln(buckets)
            prop_assert!(mi <= (10.0f64).ln() + 1e-9, "mi = {mi}");
        }

        #[test]
        fn thread_count_invariant(
            pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..200)
        ) {
            let m = app();
            let a = run_pairs(&m, &pairs, 1);
            let b = run_pairs(&m, &pairs, 4);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
