//! 3-D structural grid aggregation (paper §5.8, after SAGA \[57\]).
//!
//! The 1-D [`crate::GridAggregation`] collapses consecutive elements; real
//! multi-resolution visualization collapses *spatial blocks* of the 3-D
//! field. This application demonstrates the paper's §5.8 point that Smart's
//! unit chunks "natively preserve array positional information": the key is
//! derived purely from the chunk's global index interpreted as `(x, y, z)`
//! coordinates, so blocks assemble correctly across split and rank
//! boundaries with no special handling.

use crate::grid::GridCell;
use smart_core::{Analytics, Chunk, ComMap, Key};

// Re-export to make the reduction object story explicit: a 3-D block is
// still a sum/count/expected aggregate.
pub use crate::grid::GridCell as BlockCell;

/// Dimensions helper for a plane-major `nx × ny × nz` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims3 {
    /// Fastest-varying extent.
    pub nx: usize,
    /// Middle extent.
    pub ny: usize,
    /// Slowest-varying extent (the decomposed axis).
    pub nz: usize,
}

impl Dims3 {
    /// Total elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global linear index → `(x, y, z)`.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let plane = self.nx * self.ny;
        (idx % self.nx, (idx / self.nx) % self.ny, idx / plane)
    }
}

/// Aggregate `bx × by × bz` spatial blocks of a 3-D field into their means.
///
/// Unit chunk: 1 element. Output: `out[block] = mean`, with blocks numbered
/// block-row-major.
#[derive(Debug, Clone)]
pub struct Grid3DAggregation {
    dims: Dims3,
    bx: usize,
    by: usize,
    bz: usize,
}

impl Grid3DAggregation {
    /// Aggregate `dims` into blocks of `(bx, by, bz)`.
    ///
    /// # Panics
    /// Panics if any block extent is zero.
    pub fn new(dims: Dims3, (bx, by, bz): (usize, usize, usize)) -> Self {
        assert!(bx > 0 && by > 0 && bz > 0, "block extents must be positive");
        assert!(!dims.is_empty(), "field must be non-empty");
        Grid3DAggregation { dims, bx, by, bz }
    }

    /// Blocks along each axis.
    pub fn blocks(&self) -> (usize, usize, usize) {
        (
            self.dims.nx.div_ceil(self.bx),
            self.dims.ny.div_ceil(self.by),
            self.dims.nz.div_ceil(self.bz),
        )
    }

    /// Total output blocks.
    pub fn num_blocks(&self) -> usize {
        let (a, b, c) = self.blocks();
        a * b * c
    }

    /// Block id of a global element index.
    pub fn block_of(&self, idx: usize) -> usize {
        let (x, y, z) = self.dims.coords(idx);
        let (nbx, nby, _) = self.blocks();
        (z / self.bz) * nby * nbx + (y / self.by) * nbx + x / self.bx
    }

    /// Elements a block will receive (edge blocks truncate).
    pub fn expected_in_block(&self, block: usize) -> u64 {
        let (nbx, nby, _) = self.blocks();
        let bz_i = block / (nbx * nby);
        let by_i = (block / nbx) % nby;
        let bx_i = block % nbx;
        let span = |b: usize, extent: usize, size: usize| {
            let lo = b * size;
            let hi = ((b + 1) * size).min(extent);
            hi - lo
        };
        (span(bx_i, self.dims.nx, self.bx)
            * span(by_i, self.dims.ny, self.by)
            * span(bz_i, self.dims.nz, self.bz)) as u64
    }
}

impl Analytics for Grid3DAggregation {
    type In = f64;
    type Red = GridCell;
    type Out = f64;
    type Extra = ();

    fn gen_key(&self, chunk: &Chunk, _data: &[f64], _com: &ComMap<GridCell>) -> Key {
        self.block_of(chunk.global_start) as Key
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<GridCell>) {
        let cell = obj.get_or_insert_with(|| GridCell {
            sum: 0.0,
            count: 0,
            expected: self.expected_in_block(key as usize),
        });
        cell.sum += data[chunk.local_start];
        cell.count += 1;
    }

    fn merge(&self, red: &GridCell, com: &mut GridCell) {
        com.sum += red.sum;
        com.count += red.count;
    }

    fn convert(&self, obj: &GridCell, out: &mut f64) {
        *out = if obj.count > 0 { obj.sum / obj.count as f64 } else { 0.0 };
    }

    fn spill_safe(&self) -> bool {
        // Same distributive sum/count fold as 1-D grid aggregation.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn oracle(app: &Grid3DAggregation, data: &[f64]) -> Vec<f64> {
        let mut sum = vec![0.0; app.num_blocks()];
        let mut cnt = vec![0u64; app.num_blocks()];
        for (i, &v) in data.iter().enumerate() {
            let b = app.block_of(i);
            sum[b] += v;
            cnt[b] += 1;
        }
        sum.iter().zip(&cnt).map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect()
    }

    #[test]
    fn coords_roundtrip() {
        let d = Dims3 { nx: 4, ny: 3, nz: 2 };
        assert_eq!(d.coords(0), (0, 0, 0));
        assert_eq!(d.coords(5), (1, 1, 0));
        assert_eq!(d.coords(12), (0, 0, 1));
        assert_eq!(d.coords(23), (3, 2, 1));
        assert_eq!(d.len(), 24);
    }

    #[test]
    fn block_numbering_and_expected_sizes() {
        let app = Grid3DAggregation::new(Dims3 { nx: 4, ny: 4, nz: 4 }, (2, 2, 2));
        assert_eq!(app.blocks(), (2, 2, 2));
        assert_eq!(app.num_blocks(), 8);
        for b in 0..8 {
            assert_eq!(app.expected_in_block(b), 8);
        }
        // Truncated edge blocks.
        let app = Grid3DAggregation::new(Dims3 { nx: 5, ny: 4, nz: 4 }, (2, 2, 2));
        assert_eq!(app.blocks(), (3, 2, 2));
        assert_eq!(app.expected_in_block(2), 4); // 1×2×2 sliver in x
    }

    #[test]
    fn aggregation_matches_oracle() {
        let dims = Dims3 { nx: 8, ny: 6, nz: 4 };
        let data: Vec<f64> = (0..dims.len()).map(|i| (i as f64).sin() * 10.0).collect();
        let app = Grid3DAggregation::new(dims, (3, 2, 2));
        let expected = oracle(&app, &data);
        let pool = smart_pool::shared_pool(4).unwrap();
        let blocks = app.num_blocks();
        let mut s = Scheduler::new(app, SchedArgs::new(4, 1), pool).unwrap();
        let mut out = vec![0.0; blocks];
        s.run(&data, &mut out).unwrap();
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn blocks_assemble_across_rank_partitions() {
        // A z-decomposed field whose blocks span rank boundaries (bz = 2
        // with one z-plane per rank means every block needs two ranks).
        let dims = Dims3 { nx: 4, ny: 4, nz: 4 };
        let data: Vec<f64> = (0..dims.len()).map(|i| i as f64).collect();
        let reference = {
            let app = Grid3DAggregation::new(dims, (2, 2, 2));
            oracle(&app, &data)
        };

        let results = smart_comm::run_cluster(4, |mut comm| {
            let app = Grid3DAggregation::new(dims, (2, 2, 2));
            let blocks = app.num_blocks();
            let plane = dims.nx * dims.ny;
            let lo = comm.rank() * plane;
            let hi = lo + plane;
            let pool = smart_pool::shared_pool(1).unwrap();
            let args = SchedArgs::new(1, 1).with_partition(lo, dims.len());
            let mut s = Scheduler::new(app, args, pool).unwrap();
            let mut out = vec![0.0; blocks];
            s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
            out
        });
        for out in &results {
            for (a, b) in out.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12, "{out:?} vs {reference:?}");
            }
        }
    }

    #[test]
    fn interior_blocks_emit_early_single_thread() {
        let dims = Dims3 { nx: 4, ny: 4, nz: 4 };
        let data: Vec<f64> = vec![1.0; dims.len()];
        let app = Grid3DAggregation::new(dims, (4, 4, 1)); // one block per plane
        let blocks = app.num_blocks();
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s = Scheduler::new(app, SchedArgs::new(1, 1), pool).unwrap();
        let mut out = vec![0.0; blocks];
        s.run(&data, &mut out).unwrap();
        // Plane blocks are contiguous in memory → all trigger early.
        assert_eq!(s.combination_map().len(), 0);
        assert!(out.iter().all(|&v| v == 1.0));
    }

    proptest! {
        #[test]
        fn matches_oracle_on_random_fields(
            nx in 1usize..7, ny in 1usize..7, nz in 1usize..7,
            bx in 1usize..4, by in 1usize..4, bz in 1usize..4,
            threads in 1usize..4,
            seed in any::<u64>(),
        ) {
            let dims = Dims3 { nx, ny, nz };
            let data: Vec<f64> = (0..dims.len())
                .map(|i| ((i as u64).wrapping_mul(seed | 1) % 1000) as f64)
                .collect();
            let app = Grid3DAggregation::new(dims, (bx, by, bz));
            let expected = oracle(&app, &data);
            let blocks = app.num_blocks();
            let pool = smart_pool::shared_pool(4).unwrap();
            let mut s = Scheduler::new(app, SchedArgs::new(threads, 1), pool).unwrap();
            let mut out = vec![0.0; blocks];
            s.run(&data, &mut out).unwrap();
            for (a, b) in out.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
