//! K-means clustering (paper Listing 4) — the clustering-analytics
//! representative and the paper's canonical iterative application.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Batch, BatchSink, Chunk, ComMap, Key, KeyMode, RedObj};

/// One cluster (paper Listing 4's `ClusterObj`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClusterObj {
    /// Current centroid coordinates.
    pub centroid: Vec<f64>,
    /// Sum of member points this iteration (distributive field).
    pub sum: Vec<f64>,
    /// Member count this iteration (distributive field).
    pub size: u64,
}

impl ClusterObj {
    /// Recompute the centroid from `sum`/`size`, then reset both — the
    /// paper's `update()`.
    pub fn update(&mut self) {
        if self.size > 0 {
            for (c, s) in self.centroid.iter_mut().zip(&self.sum) {
                *c = s / self.size as f64;
            }
        }
        self.sum.iter_mut().for_each(|s| *s = 0.0);
        self.size = 0;
    }
}

impl RedObj for ClusterObj {}

/// Lloyd's k-means over flat `dims`-dimensional points.
///
/// Unit chunk: `dims` doubles (one point). Extra data: the `k × dims`
/// initial centroids, flattened. Each scheduler iteration is one Lloyd
/// round. Output: `out[j] = centroid j`.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    dims: usize,
}

impl KMeans {
    /// `k` clusters over `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `k == 0` or `dims == 0`.
    pub fn new(k: usize, dims: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(dims > 0, "dims must be positive");
        KMeans { k, dims }
    }

    /// Cluster count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Point dimensionality (also the unit-chunk size).
    pub fn dims(&self) -> usize {
        self.dims
    }

    #[inline]
    fn dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Index of the centroid nearest to `point` among the map's clusters.
    pub fn nearest(&self, point: &[f64], com: &ComMap<ClusterObj>) -> Key {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for j in 0..self.k {
            if let Some(c) = com.get(j as Key) {
                let d = Self::dist2(point, &c.centroid);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
        }
        best as Key
    }

    /// Sum of squared distances from each point to its nearest centroid —
    /// the k-means objective, used as a monotonicity oracle in tests.
    pub fn objective(&self, centroids: &[Vec<f64>], points: &[f64]) -> f64 {
        points
            .chunks_exact(self.dims)
            .map(|p| centroids.iter().map(|c| Self::dist2(p, c)).fold(f64::INFINITY, f64::min))
            .sum()
    }
}

impl Analytics for KMeans {
    type In = f64;
    type Red = ClusterObj;
    type Out = Vec<f64>;
    type Extra = Vec<f64>;

    fn gen_key(&self, chunk: &Chunk, data: &[f64], com: &ComMap<ClusterObj>) -> Key {
        self.nearest(chunk.slice(data), com)
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], _key: Key, obj: &mut Option<ClusterObj>) {
        let obj = obj.as_mut().expect("clusters seeded by process_extra_data and distributed");
        for (s, x) in obj.sum.iter_mut().zip(chunk.slice(data)) {
            *s += x;
        }
        obj.size += 1;
    }

    fn merge(&self, red: &ClusterObj, com: &mut ClusterObj) {
        for (c, r) in com.sum.iter_mut().zip(&red.sum) {
            *c += r;
        }
        com.size += red.size;
    }

    /// Zero-allocation wire merge: a `ClusterObj` is the analytics' one
    /// heap-bearing reduction object (two `Vec<f64>`s per cluster), so the
    /// default decode-then-merge pays two allocations per cluster per
    /// incoming payload. The encoded layout is field concatenation —
    /// `centroid` (len + doubles), `sum` (len + doubles), `size` — so this
    /// override skips the centroid (merge ignores it), folds `sum`
    /// element-wise straight off the wire, and adds `size`.
    fn merge_wire(
        &self,
        de: &mut smart_wire::Deserializer<'_>,
        com: &mut ClusterObj,
    ) -> smart_wire::Result<()> {
        use serde::Deserialize;
        let centroid_len = u64::deserialize(&mut *de)? as usize;
        de.skip(centroid_len.saturating_mul(8))?;
        let sum_len = u64::deserialize(&mut *de)? as usize;
        // `zip` in `merge` folds min(lengths) elements; mirror that, then
        // consume whatever the wire value has beyond it so exactly one
        // encoded ClusterObj is read even on a (never-expected) mismatch.
        let folded = sum_len.min(com.sum.len());
        for c in com.sum.iter_mut().take(folded) {
            *c += f64::deserialize(&mut *de)?;
        }
        de.skip((sum_len - folded).saturating_mul(8))?;
        com.size += u64::deserialize(&mut *de)?;
        Ok(())
    }

    fn process_extra_data(&self, extra: Option<&Vec<f64>>, com: &mut ComMap<ClusterObj>) {
        let init = extra.expect("k-means requires initial centroids as extra data");
        assert_eq!(init.len(), self.k * self.dims, "extra data must be k*dims centroids");
        for (j, c) in init.chunks_exact(self.dims).enumerate() {
            com.insert(
                j as Key,
                ClusterObj { centroid: c.to_vec(), sum: vec![0.0; self.dims], size: 0 },
            );
        }
    }

    fn post_combine(&self, com: &mut ComMap<ClusterObj>) {
        for (_, obj) in com.iter_mut() {
            obj.update();
        }
    }

    fn convert(&self, obj: &ClusterObj, out: &mut Vec<f64>) {
        out.clone_from(&obj.centroid);
    }

    fn key_bound(&self) -> Option<usize> {
        Some(self.k)
    }

    fn reduce_batch(&self, data: &[f64], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>) {
        if batch.chunk_size != self.dims || sink.key_mode() != KeyMode::Single {
            sink.reduce_default(self, data, batch);
            return;
        }
        // Snapshot the centroids into the sink's reusable scratch buffer
        // once per batch, so the nearest-centroid search sweeps a
        // contiguous array instead of doing k combination-map lookups per
        // point. Missing clusters are filled with +inf coordinates: their
        // distance is then inf or NaN, which `d < best_d` never selects —
        // exactly how `nearest` skips absent keys.
        let mut scratch = sink.take_scratch();
        scratch.clear();
        scratch.resize(self.k * self.dims, f64::INFINITY);
        for (j, row) in scratch.chunks_exact_mut(self.dims).enumerate() {
            if let Some(c) = sink.com_map().get(j as Key) {
                row.copy_from_slice(&c.centroid);
            }
        }
        for i in 0..batch.chunks {
            let chunk = batch.chunk_at(i);
            let point = chunk.slice(data);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, c) in scratch.chunks_exact(self.dims).enumerate() {
                let d = Self::dist2(point, c);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            sink.accumulate_keyed(self, &chunk, data, best as Key);
        }
        sink.restore_scratch(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_core::{SchedArgs, Scheduler};
    use smart_sim::ClusteredEmulator;

    /// The hand-rolled `merge_wire` must be bit-identical to decode + `merge`
    /// (the trait's default), including when the wire object's `sum` length
    /// disagrees with the accumulator's.
    #[test]
    fn merge_wire_override_matches_owned_merge() {
        let km = KMeans::new(2, 3);
        let incoming =
            ClusterObj { centroid: vec![9.0, 8.0, 7.0], sum: vec![0.5, -1.25, 3.75], size: 4 };
        let base =
            ClusterObj { centroid: vec![1.0, 2.0, 3.0], sum: vec![10.0, 20.0, 30.0], size: 7 };
        let bytes = smart_wire::to_bytes(&incoming).unwrap();

        let mut owned = base.clone();
        km.merge(&smart_wire::from_bytes(&bytes).unwrap(), &mut owned);

        let mut viewed = base.clone();
        let mut de = smart_wire::Deserializer::new(&bytes);
        km.merge_wire(&mut de, &mut viewed).unwrap();
        assert_eq!(de.remaining(), 0, "override must consume exactly one ClusterObj");
        assert_eq!(owned, viewed);

        // Length-mismatched wire value: zip semantics, full consumption.
        let short = ClusterObj { centroid: vec![], sum: vec![1.0], size: 1 };
        let bytes = smart_wire::to_bytes(&short).unwrap();
        let mut owned = base.clone();
        km.merge(&smart_wire::from_bytes(&bytes).unwrap(), &mut owned);
        let mut viewed = base.clone();
        let mut de = smart_wire::Deserializer::new(&bytes);
        km.merge_wire(&mut de, &mut viewed).unwrap();
        assert_eq!(de.remaining(), 0);
        assert_eq!(owned, viewed);
    }

    /// Sequential Lloyd oracle, identical math (including empty-cluster
    /// handling: an empty cluster keeps its centroid).
    fn oracle(k: usize, dims: usize, init: &[f64], points: &[f64], iters: usize) -> Vec<Vec<f64>> {
        let mut centroids: Vec<Vec<f64>> = init.chunks_exact(dims).map(|c| c.to_vec()).collect();
        for _ in 0..iters {
            let mut sums = vec![vec![0.0; dims]; k];
            let mut sizes = vec![0u64; k];
            for p in points.chunks_exact(dims) {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (j, c) in centroids.iter().enumerate() {
                    let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                for (s, x) in sums[best].iter_mut().zip(p) {
                    *s += x;
                }
                sizes[best] += 1;
            }
            for j in 0..k {
                if sizes[j] > 0 {
                    for d in 0..dims {
                        centroids[j][d] = sums[j][d] / sizes[j] as f64;
                    }
                }
            }
        }
        centroids
    }

    fn run_smart(
        k: usize,
        dims: usize,
        init: &[f64],
        points: &[f64],
        iters: usize,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let app = KMeans::new(k, dims);
        let args = SchedArgs::new(threads, dims).with_extra(init.to_vec()).with_iters(iters);
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(app, args, pool).unwrap();
        let mut out = vec![Vec::new(); k];
        s.run(points, &mut out).unwrap();
        out
    }

    #[test]
    fn one_iteration_matches_oracle() {
        let mut emu = ClusteredEmulator::new(2, 3, 4, 0.8);
        let pts = emu.step(300);
        let init: Vec<f64> = pts[..3 * 4].to_vec(); // first 3 points
        let got = run_smart(3, 4, &init, &pts, 1, 2);
        let want = oracle(3, 4, &init, &pts, 1);
        for (a, b) in got.iter().zip(&want) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "{got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn ten_iterations_match_oracle_any_thread_count() {
        let mut emu = ClusteredEmulator::new(7, 4, 2, 1.0);
        let pts = emu.step(500);
        let init: Vec<f64> = pts[..4 * 2].to_vec();
        let want = oracle(4, 2, &init, &pts, 10);
        for threads in [1, 2, 4] {
            let got = run_smart(4, 2, &init, &pts, 10, threads);
            for (a, b) in got.iter().zip(&want) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-7, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let mut emu = ClusteredEmulator::new(13, 4, 3, 1.5);
        let pts = emu.step(800);
        let init: Vec<f64> = pts[..4 * 3].to_vec();
        let app = KMeans::new(4, 3);
        let mut prev = f64::INFINITY;
        for iters in 1..=8 {
            let cents = run_smart(4, 3, &init, &pts, iters, 2);
            let obj = app.objective(&cents, &pts);
            assert!(obj <= prev + 1e-6, "objective rose at iter {iters}: {obj} > {prev}");
            prev = obj;
        }
    }

    #[test]
    fn recovers_planted_centroids() {
        let mut emu = ClusteredEmulator::new(3, 3, 2, 0.3);
        let pts = emu.step(3000);
        // Perturbed planted centroids as init.
        let init: Vec<f64> =
            emu.true_centroids().iter().flat_map(|c| c.iter().map(|x| x + 1.0)).collect();
        let cents = run_smart(3, 2, &init, &pts, 15, 4);
        for planted in emu.true_centroids() {
            let nearest = cents
                .iter()
                .map(|c| c.iter().zip(planted).map(|(a, b)| (a - b).powi(2)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.1, "planted centroid not recovered: d² = {nearest}");
        }
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // Far-away initial centroid attracts nothing and must not move.
        let pts = vec![0.0, 0.0, 1.0, 1.0];
        let init = vec![0.5, 0.5, 100.0, 100.0];
        let cents = run_smart(2, 2, &init, &pts, 3, 1);
        assert_eq!(cents[1], vec![100.0, 100.0]);
    }

    #[test]
    fn distributed_matches_single_rank() {
        let mut emu = ClusteredEmulator::new(29, 3, 4, 1.0);
        let pts = emu.step(600);
        let init: Vec<f64> = pts[..3 * 4].to_vec();
        let reference = run_smart(3, 4, &init, &pts, 6, 2);

        let results = smart_comm::run_cluster(4, |mut comm| {
            let app = KMeans::new(3, 4);
            let per = (pts.len() / 4 / comm.size()) * 4;
            let lo = comm.rank() * per;
            let hi = if comm.rank() + 1 == comm.size() { pts.len() } else { lo + per };
            let args = SchedArgs::new(1, 4).with_extra(init.clone()).with_iters(6);
            let pool = smart_pool::shared_pool(1).unwrap();
            let mut s = Scheduler::new(app, args, pool).unwrap();
            let mut out = vec![Vec::new(); 3];
            s.run_dist(&mut comm, &pts[lo..hi], &mut out).unwrap();
            out
        });
        for rank_out in &results {
            for (a, b) in rank_out.iter().zip(&reference) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "initial centroids")]
    fn missing_extra_data_panics() {
        let app = KMeans::new(2, 2);
        let pool = smart_pool::shared_pool(1).unwrap();
        // No extra data but iterative → distribution on; process_extra_data
        // fires and demands centroids.
        let args: SchedArgs<Vec<f64>> = SchedArgs::new(1, 2).with_iters(2);
        let mut s = Scheduler::new(app, args, pool).unwrap();
        let _ = s.run(&[0.0, 0.0], &mut []);
    }
}
