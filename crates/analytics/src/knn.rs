//! K-nearest-neighbor smoother (paper §4.1).
//!
//! The paper names this kernel as the intermediate point on the
//! reduction-object size spectrum: moving average is Θ(1), moving median is
//! Θ(W), and "K nearest neighbor smoother, where the size of reduction
//! object is Θ(K), 1 ≤ K ≤ W". The output at position `i` is the mean of
//! the `K` window members positionally nearest to `i`; the reduction object
//! keeps only the `K` best candidates seen so far, so memory stays Θ(K) no
//! matter how contributions arrive across splits and ranks.

use serde::{Deserialize, Serialize};
use smart_core::{Analytics, Chunk, ComMap, Key, RedObj};

/// Bounded nearest-candidate set: at most `k` `(|offset|, value)` pairs,
/// ordered by distance from the window center.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct KnnObj {
    /// Candidate neighbors, sorted ascending by `|offset|`, length ≤ k.
    pub nearest: Vec<(u32, f64)>,
    /// Capacity (the K of KNN), fixed at creation.
    pub k: u32,
    /// Window members received so far.
    pub count: u64,
    /// Members the window will receive in total.
    pub expected: u64,
}

impl KnnObj {
    fn offer(&mut self, dist: u32, value: f64) {
        let pos = self.nearest.partition_point(|&(d, _)| d <= dist);
        if pos < self.k as usize {
            if self.nearest.len() == self.k as usize {
                self.nearest.pop();
            }
            self.nearest.insert(pos, (dist, value));
        }
    }
}

impl RedObj for KnnObj {
    fn trigger(&self) -> bool {
        self.expected > 0 && self.count == self.expected
    }
}

/// KNN smoother over a sliding window of odd size.
///
/// Unit chunk: 1 element. Output: `out[i] = mean of the k positionally
/// nearest window members`.
#[derive(Debug, Clone)]
pub struct KnnSmoother {
    half: usize,
    total_len: usize,
    k: usize,
}

impl KnnSmoother {
    /// Smoother with `window` (odd) positions and `k ≤ window` neighbors.
    ///
    /// # Panics
    /// Panics on an even/zero window, `k == 0`, or `k > window`.
    pub fn new(window: usize, k: usize, total_len: usize) -> Self {
        assert!(window % 2 == 1 && window > 0, "window must be odd and positive");
        assert!(k > 0 && k <= window, "k must be in 1..=window");
        assert!(total_len > 0, "total_len must be positive");
        KnnSmoother { half: window / 2, total_len, k }
    }

    fn expected_at(&self, key: Key) -> u64 {
        let c = key as usize;
        let lo = c.saturating_sub(self.half);
        let hi = (c + self.half).min(self.total_len - 1);
        (hi - lo + 1) as u64
    }
}

impl Analytics for KnnSmoother {
    type In = f64;
    type Red = KnnObj;
    type Out = f64;
    type Extra = ();

    fn gen_keys(&self, chunk: &Chunk, _d: &[f64], _com: &ComMap<KnnObj>, keys: &mut Vec<Key>) {
        let gs = chunk.global_start;
        let lo = gs.saturating_sub(self.half);
        let hi = (gs + self.half).min(self.total_len - 1);
        for key in lo..=hi {
            keys.push(key as Key);
        }
    }

    fn accumulate(&self, chunk: &Chunk, data: &[f64], key: Key, obj: &mut Option<KnnObj>) {
        let o = obj.get_or_insert_with(|| KnnObj {
            nearest: Vec::with_capacity(self.k),
            k: self.k as u32,
            count: 0,
            expected: self.expected_at(key),
        });
        let dist = (chunk.global_start as i64 - key).unsigned_abs() as u32;
        o.offer(dist, data[chunk.local_start]);
        o.count += 1;
    }

    fn merge(&self, red: &KnnObj, com: &mut KnnObj) {
        for &(d, v) in &red.nearest {
            com.offer(d, v);
        }
        com.count += red.count;
    }

    fn convert(&self, obj: &KnnObj, out: &mut f64) {
        *out = if obj.nearest.is_empty() {
            0.0
        } else {
            obj.nearest.iter().map(|&(_, v)| v).sum::<f64>() / obj.nearest.len() as f64
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smart_core::{SchedArgs, Scheduler};

    fn run_knn(window: usize, k: usize, data: &[f64], threads: usize) -> Vec<f64> {
        let pool = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(
            KnnSmoother::new(window, k, data.len()),
            SchedArgs::new(threads, 1),
            pool,
        )
        .unwrap();
        let mut out = vec![0.0; data.len()];
        s.run2(data, &mut out).unwrap();
        out
    }

    /// Oracle: sort window members by |offset| with ties broken the same
    /// way `offer` breaks them (earlier-inserted first at equal distance is
    /// order-dependent, so the oracle averages over *distance classes*:
    /// for the tie class at the cutoff it takes the mean of both sides,
    /// which equals any tie-break when values are symmetric; tests
    /// therefore use symmetric or tie-free configurations).
    fn oracle_distance_classes(data: &[f64], window: usize, k: usize, i: usize) -> f64 {
        let half = window / 2;
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(data.len() - 1);
        let mut members: Vec<(usize, f64)> = (lo..=hi).map(|j| (j.abs_diff(i), data[j])).collect();
        members.sort_by_key(|&(d, _)| d);
        let take = k.min(members.len());
        members[..take].iter().map(|&(_, v)| v).sum::<f64>() / take as f64
    }

    #[test]
    fn k_equals_window_is_moving_average() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let knn = run_knn(9, 9, &data, 3);
        for (i, &v) in knn.iter().enumerate() {
            let avg = oracle_distance_classes(&data, 9, 9, i);
            assert!((v - avg).abs() < 1e-12, "pos {i}");
        }
    }

    #[test]
    fn k_one_is_identity() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 1.5).collect();
        let knn = run_knn(7, 1, &data, 2);
        // The nearest member of position i's window is i itself.
        for (i, &v) in knn.iter().enumerate() {
            assert_eq!(v, data[i], "pos {i}");
        }
    }

    #[test]
    fn object_size_stays_theta_k() {
        let data = vec![1.0; 500];
        let pool = smart_pool::shared_pool(1).unwrap();
        let mut s = Scheduler::new(
            KnnSmoother::new(25, 5, data.len()),
            SchedArgs::new(1, 1).with_trigger_disabled(true),
            pool,
        )
        .unwrap();
        let mut out = vec![0.0; data.len()];
        s.run2(&data, &mut out).unwrap();
        for (_, obj) in s.combination_map().iter() {
            assert!(obj.nearest.len() <= 5, "Θ(K) violated: {}", obj.nearest.len());
            assert_eq!(obj.nearest.capacity().min(8), 5);
        }
    }

    #[test]
    fn smooths_an_impulse_less_than_average_would() {
        // k=3 of window 7: the impulse at distance 0 always participates,
        // so KNN keeps more signal than a full-window mean.
        let mut data = vec![0.0; 99];
        data[50] = 9.0;
        let knn = run_knn(7, 3, &data, 2);
        assert!((knn[50] - 3.0).abs() < 1e-12); // impulse + 2 zeros
        assert_eq!(knn[10], 0.0);
    }

    #[test]
    fn trigger_and_no_trigger_agree() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.17).cos()).collect();
        let with = run_knn(11, 4, &data, 3);
        let pool = smart_pool::shared_pool(3).unwrap();
        let mut s = Scheduler::new(
            KnnSmoother::new(11, 4, data.len()),
            SchedArgs::new(3, 1).with_trigger_disabled(true),
            pool,
        )
        .unwrap();
        let mut without = vec![0.0; data.len()];
        s.run2(&data, &mut without).unwrap();
        // Equal-distance ties can resolve differently between merge orders;
        // constant-free data with distinct values makes ties harmless only
        // for symmetric pairs, so compare sums (tie members are window
        // pairs with the same distance → both orders pick one of them).
        for (i, (a, b)) in with.iter().zip(&without).enumerate() {
            assert!((a - b).abs() < 1.0, "pos {i}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_rejected() {
        let _ = KnnSmoother::new(5, 6, 10);
    }

    proptest! {
        #[test]
        fn knn_mean_is_bounded_by_window_extremes(
            data in proptest::collection::vec(-100.0f64..100.0, 1..150),
            hw in 1usize..5,
            k in 1usize..8,
            threads in 1usize..4,
        ) {
            let window = 2 * hw + 1;
            prop_assume!(k <= window);
            let out = run_knn(window, k, &data, threads);
            for (i, &v) in out.iter().enumerate() {
                let lo = i.saturating_sub(hw);
                let hi = (i + hw).min(data.len() - 1);
                let wmin = data[lo..=hi].iter().cloned().fold(f64::INFINITY, f64::min);
                let wmax = data[lo..=hi].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= wmin - 1e-9 && v <= wmax + 1e-9, "pos {i}");
            }
        }

        #[test]
        fn center_value_always_included(
            data in proptest::collection::vec(0.0f64..10.0, 1..100),
            hw in 1usize..4,
        ) {
            // k=1 must return exactly the center element.
            let window = 2 * hw + 1;
            let out = run_knn(window, 1, &data, 2);
            for (i, &v) in out.iter().enumerate() {
                prop_assert_eq!(v, data[i]);
            }
        }
    }
}
