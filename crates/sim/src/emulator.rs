//! The sequential array emulator from the paper's Spark comparison (§5.2).
//!
//! For Fig. 5 the authors replace the real simulation with "a sequential
//! program that outputs double precision array elements that follow a normal
//! distribution", so the comparison isolates the analytics engines. Three
//! generators cover the three workloads:
//!
//! * [`NormalEmulator`] — normal-distribution doubles (histogram);
//! * [`LabeledEmulator`] — labeled feature vectors drawn from a planted
//!   logistic model (logistic regression);
//! * [`ClusteredEmulator`] — points around `k` planted centroids (k-means).
//!
//! All are seeded and deterministic, so Smart and the baselines analyze
//! byte-identical inputs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Standard normal sample via Box–Muller (`rand` 0.10 carries no normal
/// distribution; `rand_distr` is outside the allowed dependency set).
fn box_muller(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Emits time-steps of normally distributed doubles.
#[derive(Debug)]
pub struct NormalEmulator {
    rng: StdRng,
    mean: f64,
    std_dev: f64,
    steps_taken: usize,
}

impl NormalEmulator {
    /// Generator of `N(mean, std_dev²)` samples.
    pub fn new(seed: u64, mean: f64, std_dev: f64) -> Self {
        assert!(std_dev > 0.0, "std_dev must be positive");
        NormalEmulator { rng: StdRng::seed_from_u64(seed), mean, std_dev, steps_taken: 0 }
    }

    /// Standard normal generator.
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 0.0, 1.0)
    }

    /// Produce the next time-step of `len` elements.
    pub fn step(&mut self, len: usize) -> Vec<f64> {
        self.steps_taken += 1;
        (0..len).map(|_| self.mean + self.std_dev * box_muller(&mut self.rng)).collect()
    }

    /// Fill `buf` in place (no allocation) with the next time-step.
    pub fn step_into(&mut self, buf: &mut [f64]) {
        self.steps_taken += 1;
        for v in buf.iter_mut() {
            *v = self.mean + self.std_dev * box_muller(&mut self.rng);
        }
    }

    /// Time-steps produced so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }
}

/// Emits labeled feature vectors `[x₁..x_d, y]` from a planted logistic
/// model: `y = 1` with probability `σ(w*·x)`.
#[derive(Debug)]
pub struct LabeledEmulator {
    rng: StdRng,
    /// Planted ground-truth weights, one per feature dimension.
    weights: Vec<f64>,
}

impl LabeledEmulator {
    /// Planted model with `dims` features and fixed alternating weights.
    pub fn new(seed: u64, dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        let weights = (0..dims).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        LabeledEmulator { rng: StdRng::seed_from_u64(seed), weights }
    }

    /// Feature dimensionality (record length is `dims + 1`).
    pub fn dims(&self) -> usize {
        self.weights.len()
    }

    /// The planted ground-truth weights.
    pub fn true_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Produce `n` records, each `dims + 1` doubles (features then label).
    pub fn step(&mut self, n: usize) -> Vec<f64> {
        let d = self.dims();
        let mut out = Vec::with_capacity(n * (d + 1));
        for _ in 0..n {
            let mut dot = 0.0;
            for w in &self.weights {
                let x: f64 = self.rng.random_range(-1.0..1.0);
                dot += w * x;
                out.push(x);
            }
            let p = 1.0 / (1.0 + (-dot).exp());
            let y = f64::from(self.rng.random::<f64>() < p);
            out.push(y);
        }
        out
    }
}

/// Emits points scattered around `k` planted centroids.
#[derive(Debug)]
pub struct ClusteredEmulator {
    rng: StdRng,
    centroids: Vec<Vec<f64>>,
    noise: f64,
}

impl ClusteredEmulator {
    /// `k` planted centroids in `dims` dimensions, spread on a diagonal so
    /// they are well separated; points get `N(0, noise²)` jitter.
    pub fn new(seed: u64, k: usize, dims: usize, noise: f64) -> Self {
        assert!(k > 0 && dims > 0, "k and dims must be positive");
        assert!(noise >= 0.0);
        let centroids = (0..k)
            .map(|c| (0..dims).map(|d| (c as f64) * 10.0 + (d as f64) * 0.1).collect())
            .collect();
        ClusteredEmulator { rng: StdRng::seed_from_u64(seed), centroids, noise }
    }

    /// Point dimensionality.
    pub fn dims(&self) -> usize {
        self.centroids[0].len()
    }

    /// The planted centroids.
    pub fn true_centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Produce `n` points (flat layout, `dims` doubles each).
    pub fn step(&mut self, n: usize) -> Vec<f64> {
        let k = self.centroids.len();
        let d = self.dims();
        let mut out = Vec::with_capacity(n * d);
        for _ in 0..n {
            let c = self.rng.random_range(0..k);
            for j in 0..d {
                out.push(self.centroids[c][j] + self.noise * box_muller(&mut self.rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_emulator_is_deterministic() {
        let mut a = NormalEmulator::standard(42);
        let mut b = NormalEmulator::standard(42);
        assert_eq!(a.step(100), b.step(100));
        assert_eq!(a.steps_taken(), 1);
    }

    #[test]
    fn normal_emulator_different_seeds_differ() {
        let mut a = NormalEmulator::standard(1);
        let mut b = NormalEmulator::standard(2);
        assert_ne!(a.step(100), b.step(100));
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut e = NormalEmulator::new(7, 5.0, 2.0);
        let xs = e.step(200_000);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn step_into_matches_step() {
        let mut a = NormalEmulator::standard(9);
        let mut b = NormalEmulator::standard(9);
        let v = a.step(64);
        let mut buf = vec![0.0; 64];
        b.step_into(&mut buf);
        assert_eq!(v, buf);
    }

    #[test]
    fn labeled_records_have_unit_labels_and_right_len() {
        let mut e = LabeledEmulator::new(3, 15);
        let recs = e.step(100);
        assert_eq!(recs.len(), 100 * 16);
        for rec in recs.chunks(16) {
            let y = rec[15];
            assert!(y == 0.0 || y == 1.0);
            assert!(rec[..15].iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn labels_correlate_with_planted_model() {
        let mut e = LabeledEmulator::new(11, 8);
        let w = e.true_weights().to_vec();
        let recs = e.step(5000);
        let mut agree = 0;
        for rec in recs.chunks(9) {
            let dot: f64 = rec[..8].iter().zip(&w).map(|(x, wi)| x * wi).sum();
            let pred = f64::from(dot > 0.0);
            if pred == rec[8] {
                agree += 1;
            }
        }
        // A planted logistic model is far better than chance.
        assert!(agree > 3200, "agreement {agree}/5000");
    }

    #[test]
    fn clustered_points_sit_near_their_centroids() {
        let mut e = ClusteredEmulator::new(5, 4, 3, 0.5);
        let pts = e.step(2000);
        assert_eq!(pts.len(), 2000 * 3);
        let centroids = e.true_centroids().to_vec();
        for p in pts.chunks(3) {
            let nearest = centroids
                .iter()
                .map(|c| c.iter().zip(p).map(|(a, b)| (a - b).powi(2)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 25.0, "point too far from all centroids: {nearest}");
        }
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn zero_std_dev_rejected() {
        let _ = NormalEmulator::new(0, 0.0, 0.0);
    }
}
