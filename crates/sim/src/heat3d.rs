//! Heat3D: explicit 3-D heat diffusion with slab decomposition.
//!
//! Solves ∂u/∂t = α ∇²u on an `nx × ny × nz` grid with Dirichlet boundaries,
//! using the standard 7-point explicit stencil
//!
//! ```text
//! u'(x,y,z) = u + r * (u(x±1) + u(y±1) + u(z±1) - 6u),   r = α Δt / Δx²
//! ```
//!
//! which is stable for `r ≤ 1/6`. The global grid is decomposed into Z slabs
//! across ranks; each step exchanges one ghost plane with each neighbor
//! (point-to-point, the communication pattern the paper notes does *not* fit
//! MapReduce and must stay in the simulation, §2.3.2).

use smart_comm::{CommResult, Communicator, Tag};

const TAG_UP: Tag = 101; // plane traveling toward higher ranks
const TAG_DOWN: Tag = 102; // plane traveling toward lower ranks

/// Per-rank Heat3D simulation state.
#[derive(Debug)]
pub struct Heat3D {
    nx: usize,
    ny: usize,
    nz_global: usize,
    /// Owned (non-ghost) planes on this rank.
    nz_local: usize,
    /// First owned global plane index.
    z_offset: usize,
    rank: usize,
    size: usize,
    /// `r = α Δt / Δx²`; must be ≤ 1/6 for stability.
    r: f64,
    /// Field including one ghost plane on each side:
    /// `(nz_local + 2) * ny * nx` values, plane-major.
    grid: Vec<f64>,
    next: Vec<f64>,
    /// Owned planes copied out for `output()` (the simulation's "output
    /// buffer" that Smart's read pointer aliases).
    out: Vec<f64>,
    steps_taken: usize,
}

/// How many planes rank `r` of `size` owns, and its first global plane.
fn slab(nz: usize, size: usize, rank: usize) -> (usize, usize) {
    let base = nz / size;
    let extra = nz % size;
    let mine = base + usize::from(rank < extra);
    let offset = rank * base + rank.min(extra);
    (mine, offset)
}

impl Heat3D {
    /// Create the rank-local slab of an `nx × ny × nz` problem.
    ///
    /// The initial condition is a hot block (value `100`) in the center of
    /// the global domain over a cold (`0`) background, with `0` Dirichlet
    /// boundaries.
    ///
    /// # Panics
    /// Panics if any dimension is zero, if there are more ranks than Z
    /// planes, or if `r > 1/6` (unstable).
    pub fn new(nx: usize, ny: usize, nz: usize, r: f64, rank: usize, size: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
        assert!(size > 0 && rank < size, "invalid rank/size");
        assert!(nz >= size, "more ranks ({size}) than Z planes ({nz})");
        assert!(r > 0.0 && r <= 1.0 / 6.0, "r = {r} violates explicit stability (r <= 1/6)");

        let (nz_local, z_offset) = slab(nz, size, rank);
        let plane = nx * ny;
        let mut grid = vec![0.0; (nz_local + 2) * plane];

        // Hot block: central third of each dimension.
        let hot =
            |lo: usize, hi: usize, i: usize| i >= lo + (hi - lo) / 3 && i < lo + 2 * (hi - lo) / 3;
        for zl in 0..nz_local {
            let zg = z_offset + zl;
            if hot(0, nz, zg) {
                for y in 0..ny {
                    if hot(0, ny, y) {
                        for x in 0..nx {
                            if hot(0, nx, x) {
                                grid[(zl + 1) * plane + y * nx + x] = 100.0;
                            }
                        }
                    }
                }
            }
        }

        let next = grid.clone();
        let out = vec![0.0; nz_local * plane];
        Heat3D {
            nx,
            ny,
            nz_global: nz,
            nz_local,
            z_offset,
            rank,
            size,
            r,
            grid,
            next,
            out,
            steps_taken: 0,
        }
    }

    /// Single-rank convenience constructor.
    pub fn serial(nx: usize, ny: usize, nz: usize, r: f64) -> Self {
        Self::new(nx, ny, nz, r, 0, 1)
    }

    /// Elements in this rank's output partition (`nz_local * ny * nx`).
    pub fn partition_len(&self) -> usize {
        self.nz_local * self.ny * self.nx
    }

    /// First global element index of this rank's partition.
    pub fn partition_offset(&self) -> usize {
        self.z_offset * self.ny * self.nx
    }

    /// Total elements in the global field.
    pub fn global_len(&self) -> usize {
        self.nz_global * self.ny * self.nx
    }

    /// Time-steps advanced so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    fn exchange_halos(&mut self, comm: &mut Communicator) -> CommResult<()> {
        let plane = self.nx * self.ny;
        let nzl = self.nz_local;

        // Even/odd rank phasing avoids head-of-line blocking on the
        // unbuffered cost model; with buffered channels it is still tidy.
        let below = (self.rank > 0).then(|| self.rank - 1);
        let above = (self.rank + 1 < self.size).then(|| self.rank + 1);

        if let Some(above) = above {
            let top_owned = self.grid[nzl * plane..(nzl + 1) * plane].to_vec();
            comm.send(above, TAG_UP, &top_owned)?;
        }
        if let Some(below) = below {
            let bottom_owned = self.grid[plane..2 * plane].to_vec();
            comm.send(below, TAG_DOWN, &bottom_owned)?;
        }
        if let Some(below) = below {
            let ghost: Vec<f64> = comm.recv(below, TAG_UP)?;
            self.grid[..plane].copy_from_slice(&ghost);
        }
        if let Some(above) = above {
            let ghost: Vec<f64> = comm.recv(above, TAG_DOWN)?;
            self.grid[(nzl + 1) * plane..].copy_from_slice(&ghost);
        }
        Ok(())
    }

    fn stencil(&mut self) {
        let (nx, ny) = (self.nx, self.ny);
        let plane = nx * ny;
        let r = self.r;
        for zl in 1..=self.nz_local {
            let zg = self.z_offset + zl - 1;
            for y in 0..ny {
                for x in 0..nx {
                    let idx = zl * plane + y * nx + x;
                    let u = self.grid[idx];
                    // Dirichlet 0 outside the global domain.
                    let xm = if x > 0 { self.grid[idx - 1] } else { 0.0 };
                    let xp = if x + 1 < nx { self.grid[idx + 1] } else { 0.0 };
                    let ym = if y > 0 { self.grid[idx - nx] } else { 0.0 };
                    let yp = if y + 1 < ny { self.grid[idx + nx] } else { 0.0 };
                    let zm = if zg > 0 { self.grid[idx - plane] } else { 0.0 };
                    let zp = if zg + 1 < self.nz_global { self.grid[idx + plane] } else { 0.0 };
                    self.next[idx] = u + r * (xm + xp + ym + yp + zm + zp - 6.0 * u);
                }
            }
        }
        std::mem::swap(&mut self.grid, &mut self.next);
    }

    /// Advance one time-step: halo exchange, stencil, publish output.
    /// Returns the freshly simulated per-rank partition.
    pub fn step(&mut self, comm: &mut Communicator) -> CommResult<&[f64]> {
        if self.size > 1 {
            self.exchange_halos(comm)?;
        }
        self.step_local();
        Ok(&self.out)
    }

    /// Advance one time-step without communication (single-rank runs).
    pub fn step_serial(&mut self) -> &[f64] {
        assert_eq!(self.size, 1, "step_serial on a multi-rank simulation");
        self.step_local();
        &self.out
    }

    fn step_local(&mut self) {
        self.stencil();
        let plane = self.nx * self.ny;
        self.out.copy_from_slice(&self.grid[plane..(self.nz_local + 1) * plane]);
        self.steps_taken += 1;
    }

    /// The most recent time-step's output partition.
    pub fn output(&self) -> &[f64] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_comm::run_cluster;

    #[test]
    fn slab_decomposition_partitions_planes() {
        for nz in [8, 9, 10, 17] {
            for size in [1, 2, 3, 4] {
                let mut total = 0;
                let mut cursor = 0;
                for rank in 0..size {
                    let (mine, offset) = slab(nz, size, rank);
                    assert_eq!(offset, cursor);
                    cursor += mine;
                    total += mine;
                }
                assert_eq!(total, nz);
            }
        }
    }

    #[test]
    fn initial_output_before_step_is_zeroed_buffer() {
        let sim = Heat3D::serial(8, 8, 8, 0.1);
        assert_eq!(sim.output().len(), 512);
        assert_eq!(sim.partition_len(), 512);
        assert_eq!(sim.global_len(), 512);
    }

    #[test]
    fn maximum_principle_holds() {
        // With Dirichlet 0 boundaries and initial values in [0, 100], the
        // explicit stable scheme keeps all values in [0, 100].
        let mut sim = Heat3D::serial(10, 10, 10, 1.0 / 6.0);
        for _ in 0..50 {
            let out = sim.step_serial();
            assert!(out.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    }

    #[test]
    fn heat_diffuses_from_hot_block() {
        let mut sim = Heat3D::serial(12, 12, 12, 0.1);
        let first = sim.step_serial().to_vec();
        for _ in 0..20 {
            sim.step_serial();
        }
        let later = sim.output();
        let max_first = first.iter().cloned().fold(f64::MIN, f64::max);
        let max_later = later.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_later < max_first, "peak must decay: {max_later} vs {max_first}");
        // but total heat persists for a while (boundaries leak slowly)
        let sum_later: f64 = later.iter().sum();
        assert!(sum_later > 0.0);
    }

    #[test]
    fn multi_rank_matches_serial_bit_for_bit() {
        let (nx, ny, nz, r, steps) = (6, 5, 12, 0.12, 8);
        let mut serial = Heat3D::serial(nx, ny, nz, r);
        for _ in 0..steps {
            serial.step_serial();
        }
        let expected = serial.output().to_vec();

        for size in [2, 3, 4] {
            let partials = run_cluster(size, |mut comm| {
                let mut sim = Heat3D::new(nx, ny, nz, r, comm.rank(), comm.size());
                for _ in 0..steps {
                    sim.step(&mut comm).unwrap();
                }
                (sim.partition_offset(), sim.output().to_vec())
            });
            let mut stitched = vec![0.0; nx * ny * nz];
            for (offset, part) in partials {
                stitched[offset..offset + part.len()].copy_from_slice(&part);
            }
            assert_eq!(stitched, expected, "size={size}");
        }
    }

    #[test]
    fn partition_offsets_tile_global_domain() {
        let r = run_cluster(3, |comm| {
            let sim = Heat3D::new(4, 4, 10, 0.1, comm.rank(), comm.size());
            (sim.partition_offset(), sim.partition_len())
        });
        let mut cursor = 0;
        for (offset, len) in r {
            assert_eq!(offset, cursor);
            cursor += len;
        }
        assert_eq!(cursor, 4 * 4 * 10);
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_r_is_rejected() {
        let _ = Heat3D::serial(4, 4, 4, 0.5);
    }

    #[test]
    #[should_panic(expected = "more ranks")]
    fn too_many_ranks_rejected() {
        let _ = Heat3D::new(4, 4, 2, 0.1, 0, 3);
    }
}
