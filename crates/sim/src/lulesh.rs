//! MiniLulesh: an explicit shock-hydrodynamics mini-app (LULESH stand-in).
//!
//! LULESH solves the Sedov blast problem with an explicit Lagrangian scheme
//! on a 3-D mesh. For the Smart experiments only two properties of the
//! simulation matter (paper §5.1): per-node memory grows with the **cube**
//! of the edge size, and the per-step analytics output is moderate. This
//! stand-in keeps both while being a genuine compute- and memory-bound hydro
//! code: it solves the compressible Euler equations
//!
//! ```text
//! ∂U/∂t + ∇·F(U) = 0,    U = (ρ, ρu, ρv, ρw, E)
//! ```
//!
//! with a first-order finite-volume Rusanov (local Lax–Friedrichs) flux on a
//! structured 3-D grid, an ideal-gas EOS `p = (γ-1)(E - ½ρ|u|²)`, a global
//! CFL time-step (an allreduce per step, as in real LULESH), Sedov point
//! energy initialization, and periodic boundaries (which make mass and total
//! energy conservation exact — a strong correctness oracle).
//!
//! Each rank owns an `edge × edge × edge` sub-cube stacked along Z; the
//! per-step analytics output is the rank's energy-density field.

use smart_comm::{CommResult, Communicator, Tag};

const TAG_HALO_UP: Tag = 201;
const TAG_HALO_DOWN: Tag = 202;
const GAMMA: f64 = 1.4;

/// Conserved variables per cell.
const NVARS: usize = 5;

/// Per-rank MiniLulesh state.
#[derive(Debug)]
pub struct MiniLulesh {
    nx: usize,
    ny: usize,
    nz_local: usize,
    rank: usize,
    size: usize,
    cfl: f64,
    /// Cell width (uniform in all directions).
    dx: f64,
    /// State, variable-major: `state[v]` is a `(nz_local + 2) * ny * nx`
    /// plane-major field with one ghost plane on each side.
    state: [Vec<f64>; NVARS],
    next: [Vec<f64>; NVARS],
    /// Per-step analytics output: the energy-density field of owned cells.
    out: Vec<f64>,
    time: f64,
    steps_taken: usize,
}

#[inline]
fn pressure(rho: f64, mx: f64, my: f64, mz: f64, en: f64) -> f64 {
    let kinetic = 0.5 * (mx * mx + my * my + mz * mz) / rho;
    (GAMMA - 1.0) * (en - kinetic)
}

#[inline]
fn sound_speed(rho: f64, p: f64) -> f64 {
    (GAMMA * p.max(1e-12) / rho).sqrt()
}

/// Physical flux of `u` in direction `dir` (0 = x, 1 = y, 2 = z).
#[inline]
fn flux(u: [f64; NVARS], dir: usize, out: &mut [f64; NVARS]) {
    let [rho, mx, my, mz, en] = u;
    let m = [mx, my, mz];
    let vel = m[dir] / rho;
    let p = pressure(rho, mx, my, mz, en);
    out[0] = m[dir];
    out[1] = mx * vel;
    out[2] = my * vel;
    out[3] = mz * vel;
    out[1 + dir] += p;
    out[4] = (en + p) * vel;
}

impl MiniLulesh {
    /// One `edge³` sub-cube per rank, stacked along Z, with a Sedov energy
    /// spike in the global center cell.
    ///
    /// # Panics
    /// Panics on a zero edge, invalid rank, or `cfl` outside `(0, 0.5]`.
    pub fn new(edge: usize, cfl: f64, rank: usize, size: usize) -> Self {
        assert!(edge > 0, "edge must be positive");
        assert!(size > 0 && rank < size, "invalid rank/size");
        assert!(cfl > 0.0 && cfl <= 0.5, "cfl = {cfl} outside (0, 0.5]");

        let (nx, ny, nz_local) = (edge, edge, edge);
        let nz_global = edge * size;
        let plane = nx * ny;
        let cells = (nz_local + 2) * plane;

        let mut state: [Vec<f64>; NVARS] = std::array::from_fn(|_| vec![0.0; cells]);
        // Quiescent background: ρ = 1, u = 0, small internal energy.
        for v in state[0].iter_mut() {
            *v = 1.0;
        }
        let e_background = 1e-2 / (GAMMA - 1.0);
        for v in state[4].iter_mut() {
            *v = e_background;
        }
        // Sedov spike: concentrated energy at the global center cell.
        let (cz, cy, cx) = (nz_global / 2, ny / 2, nx / 2);
        let z_offset = rank * nz_local;
        if cz >= z_offset && cz < z_offset + nz_local {
            let zl = cz - z_offset + 1; // +1: ghost plane
            state[4][zl * plane + cy * nx + cx] = 10.0 / (GAMMA - 1.0);
        }

        let next = state.clone();
        let out = vec![0.0; nz_local * plane];
        MiniLulesh {
            nx,
            ny,
            nz_local,
            rank,
            size,
            cfl,
            dx: 1.0 / edge as f64,
            state,
            next,
            out,
            time: 0.0,
            steps_taken: 0,
        }
    }

    /// Single-rank convenience constructor.
    pub fn serial(edge: usize, cfl: f64) -> Self {
        Self::new(edge, cfl, 0, 1)
    }

    /// Elements in this rank's output partition (`edge³`).
    pub fn partition_len(&self) -> usize {
        self.nz_local * self.ny * self.nx
    }

    /// First global element index of this rank's partition.
    pub fn partition_offset(&self) -> usize {
        self.rank * self.partition_len()
    }

    /// Simulated physical time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Time-steps advanced so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Approximate live bytes of simulation state on this rank.
    pub fn state_bytes(&self) -> usize {
        (2 * NVARS * self.state[0].len() + self.out.len()) * std::mem::size_of::<f64>()
    }

    #[inline]
    fn load(&self, idx: usize) -> [f64; NVARS] {
        std::array::from_fn(|v| self.state[v][idx])
    }

    /// Max signal speed over owned cells (for the CFL condition).
    fn local_max_wavespeed(&self) -> f64 {
        let plane = self.nx * self.ny;
        let mut smax = 1e-12f64;
        for idx in plane..(self.nz_local + 1) * plane {
            let [rho, mx, my, mz, en] = self.load(idx);
            let p = pressure(rho, mx, my, mz, en);
            let a = sound_speed(rho, p);
            let vmax = (mx.abs().max(my.abs()).max(mz.abs())) / rho;
            smax = smax.max(vmax + a);
        }
        smax
    }

    /// Periodic Z wrap within a single rank.
    fn wrap_periodic_local(&mut self) {
        let plane = self.nx * self.ny;
        let nzl = self.nz_local;
        for v in 0..NVARS {
            let (top, bottom): (Vec<f64>, Vec<f64>) = {
                let s = &self.state[v];
                (s[nzl * plane..(nzl + 1) * plane].to_vec(), s[plane..2 * plane].to_vec())
            };
            self.state[v][..plane].copy_from_slice(&top);
            self.state[v][(nzl + 1) * plane..].copy_from_slice(&bottom);
        }
    }

    fn exchange_halos(&mut self, comm: &mut Communicator) -> CommResult<()> {
        let plane = self.nx * self.ny;
        let nzl = self.nz_local;
        debug_assert!(self.size > 1);

        // Periodic ring across ranks.
        let above = (self.rank + 1) % self.size;
        let below = (self.rank + self.size - 1) % self.size;

        let mut top_pack = Vec::with_capacity(NVARS * plane);
        let mut bottom_pack = Vec::with_capacity(NVARS * plane);
        for v in 0..NVARS {
            top_pack.extend_from_slice(&self.state[v][nzl * plane..(nzl + 1) * plane]);
            bottom_pack.extend_from_slice(&self.state[v][plane..2 * plane]);
        }
        comm.send(above, TAG_HALO_UP, &top_pack)?;
        comm.send(below, TAG_HALO_DOWN, &bottom_pack)?;
        let from_below: Vec<f64> = comm.recv(below, TAG_HALO_UP)?;
        let from_above: Vec<f64> = comm.recv(above, TAG_HALO_DOWN)?;
        for v in 0..NVARS {
            self.state[v][..plane].copy_from_slice(&from_below[v * plane..(v + 1) * plane]);
            self.state[v][(nzl + 1) * plane..]
                .copy_from_slice(&from_above[v * plane..(v + 1) * plane]);
        }
        Ok(())
    }

    /// One finite-volume update with time-step `dt`.
    fn update(&mut self, dt: f64) {
        let (nx, ny) = (self.nx, self.ny);
        let plane = nx * ny;
        let lam = dt / self.dx;

        let mut f_l = [0.0; NVARS];
        let mut f_r = [0.0; NVARS];

        for zl in 1..=self.nz_local {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = zl * plane + y * nx + x;
                    let u = self.load(idx);
                    let mut acc = u;

                    // Neighbor indices: periodic in x/y inside the rank,
                    // ghost planes handle z.
                    let neighbors = [
                        (
                            idx - 1 + usize::from(x == 0) * nx,
                            idx + 1 - usize::from(x + 1 == nx) * nx,
                            0,
                        ),
                        (
                            idx - nx + usize::from(y == 0) * plane,
                            idx + nx - usize::from(y + 1 == ny) * plane,
                            1,
                        ),
                        (idx - plane, idx + plane, 2),
                    ];

                    for (lo, hi, dir) in neighbors {
                        let ul = self.load(lo);
                        let uh = self.load(hi);
                        // Rusanov flux at both faces of this cell.
                        acc = rusanov_update(acc, ul, u, uh, dir, lam, &mut f_l, &mut f_r);
                    }
                    for (nxt, value) in self.next.iter_mut().zip(acc) {
                        nxt[idx] = value;
                    }
                }
            }
        }
        for v in 0..NVARS {
            std::mem::swap(&mut self.state[v], &mut self.next[v]);
        }
    }

    fn publish(&mut self) {
        let plane = self.nx * self.ny;
        self.out.copy_from_slice(&self.state[4][plane..(self.nz_local + 1) * plane]);
    }

    /// Advance one time-step in a cluster: halo exchange, global CFL
    /// reduction, update. Returns the freshly simulated energy partition.
    pub fn step(&mut self, comm: &mut Communicator) -> CommResult<&[f64]> {
        if self.size > 1 {
            self.exchange_halos(comm)?;
        } else {
            self.wrap_periodic_local();
        }
        let local = self.local_max_wavespeed();
        let global = if self.size > 1 { comm.allreduce(local, f64::max)? } else { local };
        let dt = self.cfl * self.dx / global;
        self.update(dt);
        self.time += dt;
        self.steps_taken += 1;
        self.publish();
        Ok(&self.out)
    }

    /// Advance one time-step using `threads` workers of `pool` for the
    /// finite-volume update (single-rank runs). This is the knob the
    /// space-sharing experiments turn: the update parallelizes over Z
    /// planes, and like the real LULESH it stops scaling once per-thread
    /// plane counts get small — which is exactly when dedicating leftover
    /// cores to analytics pays off (paper §5.6).
    pub fn step_parallel(&mut self, pool: &smart_pool::ThreadPool, threads: usize) -> &[f64] {
        assert_eq!(self.size, 1, "step_parallel on a multi-rank simulation");
        assert!(threads > 0);
        self.wrap_periodic_local();
        let dt = self.cfl * self.dx / self.local_max_wavespeed();
        self.update_parallel(pool, threads, dt);
        self.time += dt;
        self.steps_taken += 1;
        self.publish();
        &self.out
    }

    /// Plane-parallel version of [`update`](Self::update): each worker owns
    /// a disjoint contiguous band of Z planes, so the writes to `next` are
    /// disjoint by construction.
    fn update_parallel(&mut self, pool: &smart_pool::ThreadPool, threads: usize, dt: f64) {
        let (nx, ny) = (self.nx, self.ny);
        let plane = nx * ny;
        let lam = dt / self.dx;
        let nzl = self.nz_local;

        // Raw shared view over `next`; disjoint plane bands per worker.
        struct NextPtr(*mut f64);
        // SAFETY: the pointer targets `self.next`, which outlives the
        // fork-join below, and each worker writes only its own disjoint
        // plane band — no two threads ever touch the same element.
        unsafe impl Send for NextPtr {}
        // SAFETY: shared access is write-only at per-worker disjoint indices
        // (same argument as for `Send`); nothing reads through the pointer.
        unsafe impl Sync for NextPtr {}
        let next_ptrs: Vec<NextPtr> =
            self.next.iter_mut().map(|v| NextPtr(v.as_mut_ptr())).collect();
        let this = &*self;

        pool.run_on_workers(threads, |tid| {
            let band = smart_pool::split_range(nzl, threads, tid, 1);
            let mut f_l = [0.0; NVARS];
            let mut f_r = [0.0; NVARS];
            for zl in band.start + 1..band.end + 1 {
                for y in 0..ny {
                    for x in 0..nx {
                        let idx = zl * plane + y * nx + x;
                        let u = this.load(idx);
                        let mut acc = u;
                        let neighbors = [
                            (
                                idx - 1 + usize::from(x == 0) * nx,
                                idx + 1 - usize::from(x + 1 == nx) * nx,
                                0,
                            ),
                            (
                                idx - nx + usize::from(y == 0) * plane,
                                idx + nx - usize::from(y + 1 == ny) * plane,
                                1,
                            ),
                            (idx - plane, idx + plane, 2),
                        ];
                        for (lo, hi, dir) in neighbors {
                            let ul = this.load(lo);
                            let uh = this.load(hi);
                            acc = rusanov_update(acc, ul, u, uh, dir, lam, &mut f_l, &mut f_r);
                        }
                        for (ptr, value) in next_ptrs.iter().zip(acc) {
                            // SAFETY: `idx` lies in this worker's disjoint
                            // plane band; no other worker touches it, and
                            // `next` outlives the fork-join.
                            unsafe { *ptr.0.add(idx) = value };
                        }
                    }
                }
            }
        });

        for v in 0..NVARS {
            std::mem::swap(&mut self.state[v], &mut self.next[v]);
        }
    }

    /// Advance one time-step without communication (single-rank runs).
    pub fn step_serial(&mut self) -> &[f64] {
        assert_eq!(self.size, 1, "step_serial on a multi-rank simulation");
        self.wrap_periodic_local();
        let dt = self.cfl * self.dx / self.local_max_wavespeed();
        self.update(dt);
        self.time += dt;
        self.steps_taken += 1;
        self.publish();
        &self.out
    }

    /// The most recent time-step's output partition (energy density).
    pub fn output(&self) -> &[f64] {
        &self.out
    }

    /// Total mass on this rank (owned cells) — conservation oracle.
    pub fn local_mass(&self) -> f64 {
        let plane = self.nx * self.ny;
        self.state[0][plane..(self.nz_local + 1) * plane].iter().sum()
    }

    /// Total energy on this rank (owned cells) — conservation oracle.
    pub fn local_energy(&self) -> f64 {
        let plane = self.nx * self.ny;
        self.state[4][plane..(self.nz_local + 1) * plane].iter().sum()
    }

    /// Minimum density over owned cells — positivity oracle.
    pub fn min_density(&self) -> f64 {
        let plane = self.nx * self.ny;
        self.state[0][plane..(self.nz_local + 1) * plane]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Apply the Rusanov flux difference of one direction to `acc`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn rusanov_update(
    mut acc: [f64; NVARS],
    ul: [f64; NVARS],
    uc: [f64; NVARS],
    uh: [f64; NVARS],
    dir: usize,
    lam: f64,
    f_a: &mut [f64; NVARS],
    f_b: &mut [f64; NVARS],
) -> [f64; NVARS] {
    let speed = |u: [f64; NVARS]| {
        let p = pressure(u[0], u[1], u[2], u[3], u[4]);
        (u[1 + dir] / u[0]).abs() + sound_speed(u[0], p)
    };

    // Face between low neighbor and center.
    flux(ul, dir, f_a);
    flux(uc, dir, f_b);
    let s = speed(ul).max(speed(uc));
    for v in 0..NVARS {
        let f_low = 0.5 * (f_a[v] + f_b[v]) - 0.5 * s * (uc[v] - ul[v]);
        acc[v] += lam * f_low;
    }

    // Face between center and high neighbor.
    flux(uc, dir, f_a);
    flux(uh, dir, f_b);
    let s = speed(uc).max(speed(uh));
    for v in 0..NVARS {
        let f_high = 0.5 * (f_a[v] + f_b[v]) - 0.5 * s * (uh[v] - uc[v]);
        acc[v] -= lam * f_high;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_comm::run_cluster;

    #[test]
    fn partition_geometry() {
        let sim = MiniLulesh::new(6, 0.3, 1, 3);
        assert_eq!(sim.partition_len(), 216);
        assert_eq!(sim.partition_offset(), 216);
        assert_eq!(sim.state_bytes(), (2 * 5 * 8 * 36 + 216) * 8);
    }

    #[test]
    fn memory_grows_cubically_with_edge() {
        let small = MiniLulesh::serial(8, 0.3).state_bytes();
        let big = MiniLulesh::serial(16, 0.3).state_bytes();
        let ratio = big as f64 / small as f64;
        assert!((6.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mass_and_energy_conserved_serial() {
        let mut sim = MiniLulesh::serial(10, 0.3);
        let m0 = sim.local_mass();
        let e0 = sim.local_energy();
        for _ in 0..30 {
            sim.step_serial();
        }
        assert!((sim.local_mass() - m0).abs() / m0 < 1e-10, "mass drift");
        assert!((sim.local_energy() - e0).abs() / e0 < 1e-10, "energy drift");
    }

    #[test]
    fn density_stays_positive_through_blast() {
        let mut sim = MiniLulesh::serial(12, 0.25);
        for _ in 0..50 {
            sim.step_serial();
            assert!(sim.min_density() > 0.0, "negative density at step {}", sim.steps_taken());
        }
    }

    #[test]
    fn blast_wave_actually_propagates() {
        let mut sim = MiniLulesh::serial(10, 0.3);
        sim.step_serial();
        let early: Vec<f64> = sim.output().to_vec();
        for _ in 0..30 {
            sim.step_serial();
        }
        let late = sim.output();
        // Energy spreads: the max drops, the count of cells above background rises.
        let max_e = |f: &[f64]| f.iter().cloned().fold(f64::MIN, f64::max);
        let hot = |f: &[f64]| f.iter().filter(|&&e| e > 0.05).count();
        assert!(max_e(late) < max_e(&early));
        assert!(hot(late) > hot(&early));
        assert!(sim.time() > 0.0);
    }

    #[test]
    fn multi_rank_conserves_globally_and_matches_serial() {
        let (edge, steps) = (6, 10);
        let mut serial = MiniLulesh::serial(edge, 0.3);
        // serial global grid is edge³; build multirank with same global size:
        // 2 ranks of edge 6 give 6×6×12 global, so compare conservation only.
        for _ in 0..steps {
            serial.step_serial();
        }

        let r = run_cluster(3, |mut comm| {
            let mut sim = MiniLulesh::new(edge, 0.3, comm.rank(), comm.size());
            let m0 = sim.local_mass();
            let e0 = sim.local_energy();
            for _ in 0..steps {
                sim.step(&mut comm).unwrap();
            }
            (m0, e0, sim.local_mass(), sim.local_energy())
        });
        let (m0, e0, m1, e1) = r.into_iter().fold((0.0, 0.0, 0.0, 0.0), |acc, (a, b, c, d)| {
            (acc.0 + a, acc.1 + b, acc.2 + c, acc.3 + d)
        });
        assert!((m1 - m0).abs() / m0 < 1e-10, "global mass drift");
        assert!((e1 - e0).abs() / e0 < 1e-10, "global energy drift");
    }

    #[test]
    fn global_dt_is_consistent_across_ranks() {
        let r = run_cluster(2, |mut comm| {
            let mut sim = MiniLulesh::new(6, 0.3, comm.rank(), comm.size());
            for _ in 0..5 {
                sim.step(&mut comm).unwrap();
            }
            sim.time()
        });
        assert!((r[0] - r[1]).abs() < 1e-14, "ranks diverged in time: {r:?}");
    }

    #[test]
    #[should_panic(expected = "cfl")]
    fn bad_cfl_is_rejected() {
        let _ = MiniLulesh::serial(4, 0.9);
    }

    #[test]
    fn parallel_step_matches_serial_bit_for_bit() {
        let pool = smart_pool::ThreadPool::new(4).unwrap();
        for threads in [1, 2, 3, 4] {
            let mut a = MiniLulesh::serial(10, 0.3);
            let mut b = MiniLulesh::serial(10, 0.3);
            for _ in 0..8 {
                a.step_serial();
                b.step_parallel(&pool, threads);
            }
            assert_eq!(a.output(), b.output(), "threads={threads}");
            assert_eq!(a.time(), b.time());
        }
    }

    #[test]
    fn parallel_step_conserves() {
        let pool = smart_pool::ThreadPool::new(3).unwrap();
        let mut sim = MiniLulesh::serial(8, 0.3);
        let m0 = sim.local_mass();
        for _ in 0..20 {
            sim.step_parallel(&pool, 3);
        }
        assert!((sim.local_mass() - m0).abs() / m0 < 1e-10);
    }
}
