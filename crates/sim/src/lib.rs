//! # smart-sim
//!
//! The simulation substrates used by the Smart paper's evaluation (§5.1):
//!
//! * [`heat3d`] — the Heat3D benchmark: explicit 3-D heat diffusion with
//!   slab decomposition and halo exchange. Large output per time-step
//!   (the full temperature field), matching the paper's "Heat3D generates
//!   large volumes of data, e.g. 400 MB per node".
//! * [`lulesh`] — **MiniLulesh**, this reproduction's stand-in for LULESH:
//!   an explicit compressible-Euler shock-hydro mini-app solving the Sedov
//!   blast problem (LULESH's own problem) with a first-order Rusanov flux
//!   on a structured 3-D grid. Its two properties that matter to the Smart
//!   experiments — cubic memory growth in the edge size and a moderate
//!   per-step output — match the original (see DESIGN.md, substitutions).
//! * [`emulator`] — the sequential array emulator used for the Spark
//!   comparison setup (§5.2): normal-distribution doubles, plus labeled
//!   feature vectors and clustered points for the logistic-regression and
//!   k-means workloads.
//!
//! Every simulation exposes the same in-situ contract: `step()` advances one
//! time-step and `output()` borrows the per-rank partition that Smart's
//! time-sharing mode reads without copying.

pub mod emulator;
pub mod heat3d;
pub mod lulesh;

pub use emulator::{ClusteredEmulator, LabeledEmulator, NormalEmulator};
pub use heat3d::Heat3D;
pub use lulesh::MiniLulesh;
