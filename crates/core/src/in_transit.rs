//! In-transit analytics: the third placement, on dedicated staging ranks.
//!
//! The paper's two in-situ modes (§3.2) co-locate analytics with the
//! simulation — time-sharing interleaves them on the same cores,
//! space-sharing splits the cores of each node. The in-situ literature's
//! third placement, *in-transit*, moves analytics off the simulation nodes
//! entirely: a small set of **staging ranks** receives wire-serialized
//! time-step partitions over the interconnect and runs the full Smart
//! pipeline (reduction map → local combination → global combination *among
//! staging ranks only*), while the simulation ranks run unblocked except
//! for streaming backpressure.
//!
//! The moving parts:
//!
//! * [`Topology`] partitions a `producers + staging_ranks` world: producer
//!   world ranks `0..P` each stream to one stager (block mapping, so halo
//!   neighbourhoods stay contiguous), stager world ranks `P..P+S` each
//!   serve a contiguous producer group.
//! * Transport is `smart_comm`'s credit-based stream
//!   ([`smart_comm::StreamSender`]/[`smart_comm::StreamReceiver`]): the
//!   producer's only blocking point is the credit window, so a slow stager
//!   throttles its producers to bounded lookahead instead of OOMing.
//! * Each stager drives one [`Scheduler`] over *all* its producers'
//!   partitions per time-step via
//!   [`Scheduler::run_parts_dist`]/[`Scheduler::run2_parts_dist`], so a
//!   step costs one local + one global combination regardless of the
//!   producer-to-stager fan-in — and the resulting combination map is
//!   identical to what the in-situ placements compute (the equivalence
//!   suite checks this bit-for-bit).
//! * Stagers share a second, staging-only communicator universe for global
//!   combination and for agreeing on termination when streams end raggedly
//!   (an idle stager keeps calling the collectives with an empty partition
//!   set until every stream is dry).
//!
//! [`run_in_transit`] wires it all together on threads, one per world rank,
//! and reports per-rank results plus the stats surface shared with the
//! in-situ modes ([`RunStats`] including the `transit_*` counters).

use crate::api::Analytics;
use crate::error::{SmartError, SmartResult};
use crate::observer::RunStats;
use crate::scheduler::Scheduler;
use crate::step::{KeyMode, StepSpec};
use serde::de::DeserializeOwned;
use serde::Serialize;
use smart_comm::{
    CommConfig, Communicator, StreamConfig, StreamReceiver, StreamRecvStats, StreamSendStats,
    StreamSender,
};

/// Where analytics runs relative to the simulation — the placement axis the
/// benchmark harness sweeps. The two in-situ variants are the paper's §3.2
/// modes; `InTransit` is the dedicated-staging-rank placement this module
/// adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Analytics borrows the simulation's cores and output buffer between
    /// time-steps ([`Scheduler::run_dist`]).
    TimeSharing,
    /// Analytics drains a bounded in-memory buffer on its own core group
    /// ([`crate::space::SpaceShared`]).
    SpaceSharing {
        /// Capacity (in time-steps) of the circular buffer between the
        /// simulation and analytics tasks.
        buffer_capacity: usize,
    },
    /// Analytics runs on dedicated staging ranks fed over the interconnect
    /// ([`run_in_transit`]).
    InTransit {
        /// Number of staging ranks.
        staging_ranks: usize,
        /// Credit window per producer stream (see [`StreamConfig::window`]).
        window: usize,
    },
}

impl Placement {
    /// Short label for tables and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::TimeSharing => "time-sharing",
            Placement::SpaceSharing { .. } => "space-sharing",
            Placement::InTransit { .. } => "in-transit",
        }
    }
}

/// Configuration for one in-transit run.
#[derive(Debug, Clone, Default)]
pub struct InTransitConfig {
    /// Flow-control and coalescing knobs for every producer→stager stream.
    pub stream: StreamConfig,
    /// Communicator configuration for both universes (cost model, lock
    /// mode).
    pub comm: CommConfig,
}

impl InTransitConfig {
    /// Default transport with the given credit window.
    pub fn with_window(window: usize) -> Self {
        InTransitConfig { stream: StreamConfig::with_window(window), ..Default::default() }
    }

    /// Replace the stream configuration.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Replace the communicator configuration.
    pub fn with_comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }
}

/// The producer↔stager partition of a `producers + stagers` world.
///
/// Producers take world ranks `0..producers` (so a simulation written
/// against rank/size halo exchange runs unmodified among them); stagers
/// take world ranks `producers..producers+stagers`. The block mapping
/// assigns each stager a contiguous run of producers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Simulation (producer) rank count.
    pub producers: usize,
    /// Staging (analytics) rank count.
    pub stagers: usize,
}

impl Topology {
    /// A topology of `producers` simulation ranks and `stagers` staging
    /// ranks.
    ///
    /// # Panics
    /// Panics unless `0 < stagers <= producers`.
    pub fn new(producers: usize, stagers: usize) -> Self {
        assert!(stagers > 0, "in-transit needs at least one staging rank");
        assert!(
            stagers <= producers,
            "more stagers ({stagers}) than producers ({producers}) leaves idle stagers"
        );
        Topology { producers, stagers }
    }

    /// Total world size (producers + stagers).
    pub fn world_size(&self) -> usize {
        self.producers + self.stagers
    }

    /// The staging index (`0..stagers`) serving producer `p`.
    pub fn stager_of(&self, p: usize) -> usize {
        debug_assert!(p < self.producers);
        p * self.stagers / self.producers
    }

    /// The world rank of staging index `s`.
    pub fn stager_world_rank(&self, s: usize) -> usize {
        debug_assert!(s < self.stagers);
        self.producers + s
    }

    /// The contiguous producer world ranks served by staging index `s`.
    pub fn producers_of(&self, s: usize) -> std::ops::Range<usize> {
        debug_assert!(s < self.stagers);
        let lo = (s * self.producers).div_ceil(self.stagers);
        let hi = ((s + 1) * self.producers).div_ceil(self.stagers);
        lo..hi
    }

    /// The staging index that serves producer `p` under failures: the first
    /// stager for which `alive` holds, scanning upward (wrapping) from the
    /// block assignment [`stager_of`](Self::stager_of). With every stager
    /// alive this is exactly `stager_of(p)`; after deaths, each orphaned
    /// producer block lands on its clockwise-next surviving stager —
    /// deterministic, so producers and surviving stagers agree on the
    /// healed topology from the alive mask alone, with no coordinator.
    /// Returns `None` when no stager is alive.
    pub fn rebalanced_stager_of(&self, p: usize, alive: impl Fn(usize) -> bool) -> Option<usize> {
        debug_assert!(p < self.producers);
        let start = self.stager_of(p);
        (0..self.stagers).map(|d| (start + d) % self.stagers).find(|&s| alive(s))
    }

    /// The producers a *surviving* stager serves under the
    /// [`rebalanced_stager_of`](Self::rebalanced_stager_of) rule: its own
    /// block plus any orphaned blocks that wrapped onto it.
    pub fn rebalanced_producers_of(&self, s: usize, alive: impl Fn(usize) -> bool) -> Vec<usize> {
        debug_assert!(s < self.stagers);
        (0..self.producers).filter(|&p| self.rebalanced_stager_of(p, &alive) == Some(s)).collect()
    }
}

/// The simulation side's handle inside [`run_in_transit`]: a world
/// communicator (for halo exchange among producers) plus the stream to this
/// producer's stager.
pub struct Producer<In> {
    comm: Communicator,
    tx: Option<StreamSender<In>>,
    index: usize,
    topo: Topology,
    steps_fed: usize,
}

impl<In: Serialize> Producer<In> {
    /// Build a producer handle outside [`run_in_transit`]: `comm` is this
    /// rank's world communicator (world rank `index`), and the stream to
    /// the block-assigned stager is opened with `cfg`. For drivers that
    /// spawn their own rank threads (the service tier's in-transit driver)
    /// but must reuse the exact producer-side transport — same stream,
    /// same error contexts — so the simulation side stays unchanged no
    /// matter how many jobs the stagers serve.
    pub fn attach(comm: Communicator, topo: Topology, index: usize, cfg: StreamConfig) -> Self {
        debug_assert!(index < topo.producers);
        let stager = topo.stager_world_rank(topo.stager_of(index));
        Producer { comm, tx: Some(StreamSender::new(stager, cfg)), index, topo, steps_fed: 0 }
    }

    /// Flush the stream, mark end-of-stream to the stager, and return the
    /// send-side counters. Companion to [`attach`](Self::attach) for
    /// drivers that own the producer lifecycle themselves.
    pub fn finish_stream(self) -> SmartResult<StreamSendStats> {
        self.finish()
    }

    /// This producer's index (also its world rank): `0..producers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Producer count — the `size` a rank/size-partitioned simulation
    /// should use.
    pub fn producers(&self) -> usize {
        self.topo.producers
    }

    /// The world communicator, for producer↔producer traffic (halo
    /// exchanges). Producers occupy world ranks `0..producers`, so
    /// simulations built on rank/size partitioning run unmodified.
    pub fn comm(&mut self) -> &mut Communicator {
        &mut self.comm
    }

    /// Stream one time-step partition to this producer's stager; `offset`
    /// is the partition's first global element index. Returns as soon as
    /// the data is serialized and handed to the transport — blocks only on
    /// the credit window. A dead stager surfaces as
    /// [`SmartError::Context`] naming this producer's world rank and the
    /// time-step being fed, wrapping the transport's `PeerGone`.
    pub fn feed(&mut self, offset: usize, step: &[In]) -> SmartResult<()> {
        // PANIC-FREE: only finish() clears tx, and finish() consumes self, so no later call can observe None.
        let tx = self.tx.as_mut().expect("stream already finished");
        let (rank, at) = (self.index, self.steps_fed);
        tx.feed(&mut self.comm, offset, step).map_err(|e| SmartError::Comm(e).at(rank, at))?;
        self.steps_fed += 1;
        Ok(())
    }

    fn finish(mut self) -> SmartResult<StreamSendStats> {
        // PANIC-FREE: finish() consumes self and is the only place that clears tx, so tx is still Some here.
        let tx = self.tx.take().expect("stream already finished");
        let (rank, at) = (self.index, self.steps_fed);
        tx.finish(&mut self.comm).map_err(|e| SmartError::Comm(e).at(rank, at))
    }
}

/// What one producer rank produced: the simulation closure's return value
/// plus the stream-side counters.
#[derive(Debug)]
pub struct ProducerOutcome<R> {
    /// The producer closure's return value.
    pub result: R,
    /// Producer-side stream counters (send busy time, credit waits, bytes).
    pub stream: StreamSendStats,
}

/// What one staging rank produced.
#[derive(Debug)]
pub struct StagerOutcome<Out> {
    /// The output buffer after the final time-step's conversion.
    pub out: Vec<Out>,
    /// The final combination map in canonical form: `smart_wire` bytes of
    /// the key-sorted entries. Every stager holds the same global map, and
    /// it is byte-comparable against an in-situ run's map.
    pub map_bytes: Vec<u8>,
    /// Time-steps this stager processed (rounds with at least one active
    /// producer anywhere in the staging group).
    pub steps: usize,
    /// Scheduler stats accumulated over all steps, with the `transit_*`
    /// counters filled in ([`RunStats::transit_recv_busy`],
    /// [`RunStats::transit_bytes`]; [`RunStats::transit_send_busy`]
    /// aggregates this stager's producers).
    pub stats: RunStats,
    /// Per-producer stream counters, indexed like
    /// [`Topology::producers_of`].
    pub streams: Vec<StreamRecvStats>,
}

/// Per-rank results of an in-transit run. Errors stay per-rank: a stager
/// failure surfaces as `Err(Comm(PeerGone))` in every affected producer
/// slot rather than poisoning the whole run.
#[derive(Debug)]
pub struct InTransitOutcome<R, Out> {
    /// Producer results, indexed by producer world rank.
    pub producers: Vec<SmartResult<ProducerOutcome<R>>>,
    /// Stager results, indexed by staging index.
    pub stagers: Vec<SmartResult<StagerOutcome<Out>>>,
}

/// The `(producers, stagers)` outcomes of a fully successful in-transit run.
pub type InTransitOk<R, Out> = (Vec<ProducerOutcome<R>>, Vec<StagerOutcome<Out>>);

impl<R, Out> InTransitOutcome<R, Out> {
    /// All-or-nothing view: the per-rank outcomes, or the first error.
    pub fn into_result(self) -> SmartResult<InTransitOk<R, Out>> {
        let mut producers = Vec::with_capacity(self.producers.len());
        for p in self.producers {
            producers.push(p?);
        }
        let mut stagers = Vec::with_capacity(self.stagers.len());
        for s in self.stagers {
            stagers.push(s?);
        }
        Ok((producers, stagers))
    }
}

/// Run an in-transit analytics job: `topo.producers` simulation ranks
/// streaming to `topo.stagers` staging ranks.
///
/// `producer` runs once per simulation rank with a [`Producer`] handle — it
/// drives its simulation partition, calls [`Producer::feed`] once per
/// time-step, and may use [`Producer::comm`] for halo exchange; the stream
/// is flushed and end-of-stream marked when it returns. `make_stager` runs
/// once per staging rank and builds that rank's [`Scheduler`] and output
/// buffer; the driver then consumes one chunk per producer per round and
/// feeds them as one multi-partition step
/// ([`Scheduler::run_parts_dist`]/[`Scheduler::run2_parts_dist`] per
/// `key_mode`), with global combination over the staging-only universe.
///
/// All ranks run as threads of this call; it returns when every rank is
/// done. Failures stay per-rank in the [`InTransitOutcome`] — a dead stager
/// surfaces as `PeerGone` to exactly its producers, never a hang.
pub fn run_in_transit<A, R, FP, FS>(
    topo: Topology,
    config: InTransitConfig,
    key_mode: KeyMode,
    producer: FP,
    make_stager: FS,
) -> InTransitOutcome<R, A::Out>
where
    A: Analytics,
    A::In: Serialize + DeserializeOwned + Clone,
    R: Send,
    FP: Fn(&mut Producer<A::In>) -> SmartResult<R> + Sync,
    FS: Fn(usize) -> SmartResult<(Scheduler<A>, Vec<A::Out>)> + Sync,
{
    let world = smart_comm::universe(topo.world_size(), config.comm.clone());
    let staging = smart_comm::universe(topo.stagers, config.comm.clone());
    let stream_cfg = &config.stream;
    let producer = &producer;
    let make_stager = &make_stager;

    let mut world = world.into_iter();
    let producer_comms: Vec<Communicator> = world.by_ref().take(topo.producers).collect();
    let stager_comms: Vec<(Communicator, Communicator)> = world.zip(staging).collect();

    smart_sync::thread::scope(|scope| {
        let producer_handles: Vec<_> = producer_comms
            .into_iter()
            .enumerate()
            .map(|(p, comm)| {
                let cfg = stream_cfg.clone();
                scope.spawn(move || -> SmartResult<ProducerOutcome<R>> {
                    let mut handle = Producer::attach(comm, topo, p, cfg);
                    let result = producer(&mut handle)?;
                    let stream = handle.finish()?;
                    Ok(ProducerOutcome { result, stream })
                })
            })
            .collect();

        let stager_handles: Vec<_> = stager_comms
            .into_iter()
            .enumerate()
            .map(|(s, (mut comm, mut staging_comm))| {
                scope.spawn(move || -> SmartResult<StagerOutcome<A::Out>> {
                    let (mut sched, mut out) = make_stager(s)?;
                    sched.set_collect_stats(true);
                    let mut rxs: Vec<StreamReceiver<A::In>> =
                        topo.producers_of(s).map(StreamReceiver::new).collect();
                    let mut stats = RunStats::default();
                    let mut steps = 0usize;
                    loop {
                        // One chunk per still-active producer this round.
                        let me = topo.stager_world_rank(s);
                        let mut owned: Vec<(usize, Vec<A::In>)> = Vec::with_capacity(rxs.len());
                        for rx in rxs.iter_mut().filter(|rx| !rx.is_finished()) {
                            if let Some((_step, offset, data)) =
                                rx.recv(&mut comm).map_err(|e| SmartError::Comm(e).at(me, steps))?
                            {
                                owned.push((offset, data));
                            }
                        }
                        // Ragged termination: the staging group keeps
                        // stepping (with empty partition sets where
                        // necessary) until *every* stream is dry, so the
                        // per-step global combination always has all
                        // stagers participating.
                        let active = u64::from(!owned.is_empty());
                        let any = staging_comm
                            .allreduce(active, |a, b| a.max(b))
                            .map_err(|e| SmartError::Comm(e).at(me, steps))?;
                        if any == 0 {
                            break;
                        }
                        let parts: Vec<(usize, &[A::In])> =
                            owned.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                        sched.execute(
                            StepSpec::new(&parts)
                                .with_key_mode(key_mode)
                                .with_comm(Some(&mut staging_comm)),
                            &mut out,
                        )?;
                        stats.absorb(sched.last_stats());
                        steps += 1;
                    }
                    for rx in &rxs {
                        stats.transit_recv_busy += rx.stats().recv_busy;
                        stats.transit_bytes += rx.stats().bytes;
                    }
                    let map_bytes = sched.canonical_map_bytes()?;
                    Ok(StagerOutcome {
                        out,
                        map_bytes,
                        steps,
                        stats,
                        streams: rxs.into_iter().map(|rx| rx.stats().clone()).collect(),
                    })
                })
            })
            .collect();

        let producers: Vec<SmartResult<ProducerOutcome<R>>> = producer_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        let mut stagers: Vec<SmartResult<StagerOutcome<A::Out>>> = stager_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();

        // The simulation-side send time is known only after the producer
        // threads join; fold each staging group's aggregate into its
        // stager's stats so the mode reports one coherent surface.
        for (s, stager) in stagers.iter_mut().enumerate() {
            if let Ok(stager) = stager {
                for p in topo.producers_of(s) {
                    // PANIC-FREE: producers_of yields world ranks < topo.producers = producers.len().
                    if let Ok(prod) = &producers[p] {
                        stager.stats.transit_send_busy += prod.stream.send_busy;
                    }
                }
            }
        }

        InTransitOutcome { producers, stagers }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Chunk, ComMap, Key, RedObj};
    use crate::args::SchedArgs;
    use serde::Deserialize;
    use smart_pool::shared_pool;

    #[test]
    fn topology_block_mapping_is_contiguous_and_total() {
        for (producers, stagers) in [(4, 2), (5, 2), (7, 3), (3, 3), (8, 1)] {
            let topo = Topology::new(producers, stagers);
            let mut seen = Vec::new();
            for s in 0..stagers {
                for p in topo.producers_of(s) {
                    assert_eq!(topo.stager_of(p), s, "P={producers} S={stagers} p={p}");
                    seen.push(p);
                }
            }
            assert_eq!(seen, (0..producers).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "more stagers")]
    fn topology_rejects_more_stagers_than_producers() {
        Topology::new(2, 3);
    }

    /// With every stager alive the rebalanced mapping is the block mapping;
    /// with deaths, every producer lands on a surviving stager and the
    /// per-stager view agrees with the per-producer view (total, no
    /// coordinator needed).
    #[test]
    fn rebalanced_topology_is_total_and_consistent() {
        for (producers, stagers) in [(4, 2), (7, 3), (8, 4), (5, 5)] {
            let topo = Topology::new(producers, stagers);
            for p in 0..producers {
                assert_eq!(topo.rebalanced_stager_of(p, |_| true), Some(topo.stager_of(p)));
            }
            // Kill each stager in turn, then each pair.
            for dead_mask in 1u32..(1 << stagers) {
                let alive = |s: usize| dead_mask & (1 << s) == 0;
                let any_alive = (0..stagers).any(alive);
                let mut seen = Vec::new();
                for s in (0..stagers).filter(|&s| alive(s)) {
                    for p in topo.rebalanced_producers_of(s, alive) {
                        assert_eq!(topo.rebalanced_stager_of(p, alive), Some(s));
                        seen.push(p);
                    }
                }
                seen.sort_unstable();
                if any_alive {
                    assert_eq!(seen, (0..producers).collect::<Vec<_>>(), "mask {dead_mask:b}");
                } else {
                    assert!(seen.is_empty());
                    assert_eq!(topo.rebalanced_stager_of(0, alive), None);
                }
            }
        }
    }

    /// Orphaned producers move clockwise: when stager 1 of 3 dies, its
    /// block lands on stager 2, not stager 0.
    #[test]
    fn rebalance_scans_clockwise_from_the_home_stager() {
        let topo = Topology::new(6, 3);
        let alive = |s: usize| s != 1;
        for p in topo.producers_of(1) {
            assert_eq!(topo.rebalanced_stager_of(p, alive), Some(2));
        }
        // The last stager's orphans wrap around to the first.
        let alive = |s: usize| s != 2;
        for p in topo.producers_of(2) {
            assert_eq!(topo.rebalanced_stager_of(p, alive), Some(0));
        }
    }

    #[derive(Clone, Serialize, Deserialize, Default, Debug)]
    struct Acc {
        sum: f64,
        n: u64,
    }
    impl RedObj for Acc {}

    struct SumPerProducerBlock;
    impl Analytics for SumPerProducerBlock {
        type In = f64;
        type Red = Acc;
        type Out = f64;
        type Extra = ();
        fn gen_key(&self, chunk: &Chunk, _d: &[f64], _com: &ComMap<Acc>) -> Key {
            (chunk.global_start / 8) as Key
        }
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Acc>) {
            let a = obj.get_or_insert_with(Acc::default);
            a.sum += d[c.local_start];
            a.n += 1;
        }
        fn merge(&self, red: &Acc, com: &mut Acc) {
            com.sum += red.sum;
            com.n += red.n;
        }
        fn convert(&self, obj: &Acc, out: &mut f64) {
            *out = obj.sum;
        }
    }

    /// 4 producers × 3 steps of an 8-element partition, 2 stagers: keys are
    /// producer blocks, so the global map must hold every producer's sums
    /// on every stager.
    #[test]
    fn producers_stream_and_stagers_agree_on_the_global_map() {
        let topo = Topology::new(4, 2);
        let steps = 3usize;
        let outcome = run_in_transit(
            topo,
            InTransitConfig::with_window(2),
            KeyMode::Single,
            |prod: &mut Producer<f64>| {
                let offset = prod.index() * 8;
                for t in 0..steps {
                    let data: Vec<f64> =
                        (0..8).map(|i| ((t * 31 + prod.index() * 7 + i) % 13) as f64).collect();
                    prod.feed(offset, &data)?;
                }
                Ok(prod.index())
            },
            |_s| {
                let pool = shared_pool(2)?;
                let sched = Scheduler::new(SumPerProducerBlock, SchedArgs::new(2, 1), pool)?;
                Ok((sched, vec![0.0f64; 4]))
            },
        );
        let (producers, stagers) = outcome.into_result().unwrap();
        assert_eq!(producers.len(), 4);
        for (p, prod) in producers.iter().enumerate() {
            assert_eq!(prod.result, p);
            assert_eq!(prod.stream.steps, steps as u64);
        }
        assert_eq!(stagers.len(), 2);
        // Global combination: both stagers end with the same map and the
        // same converted output.
        assert_eq!(stagers[0].map_bytes, stagers[1].map_bytes);
        assert_eq!(stagers[0].out, stagers[1].out);
        for stager in &stagers {
            assert_eq!(stager.steps, steps);
            assert!(stager.stats.transit_bytes > 0);
            assert_eq!(stager.stats.iters, steps);
            // Expected per-producer sums, computed serially.
            for p in 0..4 {
                let expected: f64 = (0..steps)
                    .flat_map(|t| (0..8).map(move |i| ((t * 31 + p * 7 + i) % 13) as f64))
                    .sum();
                assert_eq!(stager.out[p], expected, "producer {p}");
            }
        }
    }

    /// Producers with different step counts: the staging group must drain
    /// the longer streams without deadlocking on the global combination.
    #[test]
    fn ragged_stream_lengths_terminate_cleanly() {
        let topo = Topology::new(3, 2);
        let outcome = run_in_transit(
            topo,
            InTransitConfig::with_window(1),
            KeyMode::Single,
            |prod: &mut Producer<f64>| {
                let steps = 2 + prod.index() * 2; // 2, 4, 6 steps
                for _ in 0..steps {
                    prod.feed(prod.index() * 8, &[1.0; 8])?;
                }
                Ok(steps)
            },
            |_s| {
                let pool = shared_pool(1)?;
                let sched = Scheduler::new(SumPerProducerBlock, SchedArgs::new(1, 1), pool)?;
                Ok((sched, Vec::new()))
            },
        );
        let (producers, stagers) = outcome.into_result().unwrap();
        let total_steps: usize = producers.iter().map(|p| p.result).sum();
        assert_eq!(total_steps, 2 + 4 + 6);
        // Every stager runs max-stream-length rounds.
        assert_eq!(stagers[0].steps, 6);
        assert_eq!(stagers[1].steps, 6);
        assert_eq!(stagers[0].map_bytes, stagers[1].map_bytes);
        let delivered: u64 = stagers.iter().flat_map(|s| s.streams.iter().map(|st| st.steps)).sum();
        assert_eq!(delivered, 12);
    }

    /// A stager that dies at startup must surface as *contextual* errors:
    /// its producer reports its own rank and the step it was feeding, the
    /// surviving stager reports its world rank and round — never a bare
    /// `PeerGone`.
    #[test]
    fn stager_death_surfaces_with_rank_and_step_context() {
        let topo = Topology::new(2, 2);
        let outcome = run_in_transit(
            topo,
            InTransitConfig::with_window(1),
            KeyMode::Single,
            |prod: &mut Producer<f64>| {
                for _ in 0..50 {
                    prod.feed(prod.index() * 8, &[1.0; 8])?;
                }
                Ok(())
            },
            |s| {
                if s == 1 {
                    return Err(SmartError::BadArgs("stager 1 refused to start".into()));
                }
                let pool = shared_pool(1)?;
                let sched = Scheduler::new(SumPerProducerBlock, SchedArgs::new(1, 1), pool)?;
                Ok((sched, Vec::new()))
            },
        );
        // Producer 1 fed the dead stager: its error names producer rank 1.
        let err = outcome.producers[1].as_ref().expect_err("producer 1 lost its stager");
        match err {
            SmartError::Context { rank: 1, source, .. } => {
                assert!(matches!(**source, SmartError::Comm(_)), "{source}");
            }
            other => panic!("expected contextual error, got {other}"),
        }
        assert!(err.to_string().contains("rank 1"), "{err}");
        // Stager 0's staging-group collective lost its peer: its error
        // carries location context too (rank + step are in the message).
        let err = outcome.stagers[0].as_ref().expect_err("stager 0 lost its staging peer");
        assert!(matches!(err, SmartError::Context { .. }), "{err}");
        assert!(err.to_string().contains("step"), "{err}");
    }
}
