//! Input staging — the first layer of the execution core.
//!
//! Time sharing is zero-copy by design (the scheduler borrows the
//! simulation's output partition directly, Fig. 3); `SchedArgs::copy_input`
//! opts into the extra staging copy the paper's Fig. 9 baseline pays. This
//! module owns that choice: [`validate`] checks every partition against the
//! chunk size, and [`stage`] either passes the caller's partitions through
//! untouched or copies them back-to-back into the scheduler's reusable
//! staging buffer and re-cuts the slices from it.

use crate::error::{SmartError, SmartResult};

/// Reject partitions whose length is not a whole number of unit chunks.
///
/// Public so the service tier (`smart-serve`) can validate a step once
/// before fanning it out to every admitted job.
pub fn validate<In>(parts: &[(usize, &[In])], chunk_size: usize) -> SmartResult<()> {
    for &(_, input) in parts {
        if input.len() % chunk_size != 0 {
            return Err(SmartError::ChunkMismatch { input_len: input.len(), chunk_size });
        }
    }
    Ok(())
}

/// Stage the step's partitions. Returns `None` in zero-copy mode (reduce
/// straight from the caller's slices); in copy mode, fills `buf` with all
/// partitions back-to-back and returns slices re-cut from it, preserving
/// each partition's global offset.
///
/// Public so the service tier can stage *once* per time-step and run every
/// admitted job's reduction against the same staged buffer (shared scan).
pub fn stage<'a, In: Clone>(
    copy_input: bool,
    buf: &'a mut Vec<In>,
    parts: &[(usize, &[In])],
) -> Option<Vec<(usize, &'a [In])>> {
    if !copy_input {
        return None;
    }
    buf.clear();
    let mut ranges = Vec::with_capacity(parts.len());
    for &(offset, input) in parts {
        let start = buf.len();
        buf.extend_from_slice(input);
        ranges.push((offset, start..buf.len()));
    }
    // Re-cut only once the buffer stops growing, so no slice dangles across
    // a reallocation.
    let buf: &'a Vec<In> = buf;
    // PANIC-FREE: every range was cut from buf.len() as it grew, so all lie inside the final buffer.
    Some(ranges.into_iter().map(|(offset, r)| (offset, &buf[r])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_mode_passes_through() {
        let data = [1, 2, 3, 4];
        let mut buf: Vec<i32> = Vec::new();
        assert!(stage(false, &mut buf, &[(0, &data[..])]).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn copy_mode_concatenates_and_recuts() {
        let (a, b) = ([1, 2, 3], [7, 8]);
        let mut buf: Vec<i32> = vec![99; 16]; // stale contents from a prior step
        let staged = stage(true, &mut buf, &[(0, &a[..]), (10, &b[..])]).unwrap();
        assert_eq!(staged.len(), 2);
        assert_eq!(staged[0], (0, &[1, 2, 3][..]));
        assert_eq!(staged[1], (10, &[7, 8][..]));
    }

    #[test]
    fn validate_rejects_ragged_partitions() {
        let ok = [0.0f64; 6];
        let bad = [0.0f64; 5];
        assert!(validate(&[(0, &ok[..])], 3).is_ok());
        let err = validate(&[(0, &ok[..]), (6, &bad[..])], 3).unwrap_err();
        assert!(matches!(err, SmartError::ChunkMismatch { input_len: 5, chunk_size: 3 }));
    }
}
