//! Runtime error type.

use std::fmt;

/// Result alias for Smart runtime operations.
pub type SmartResult<T> = std::result::Result<T, SmartError>;

/// Errors surfaced by the Smart scheduler.
#[derive(Debug)]
pub enum SmartError {
    /// Scheduler arguments were inconsistent.
    BadArgs(String),
    /// The input length is not a multiple of the configured chunk size.
    ChunkMismatch {
        /// Input elements supplied.
        input_len: usize,
        /// Configured unit-chunk size.
        chunk_size: usize,
    },
    /// `convert` targeted `out[key]` with a key outside the output buffer.
    KeyOutOfRange {
        /// The offending key.
        key: i64,
        /// Output buffer length.
        out_len: usize,
    },
    /// `accumulate` returned without creating/updating the reduction object.
    EmptyAccumulate {
        /// The key whose slot was left empty.
        key: i64,
    },
    /// A communication failure during global combination.
    Comm(smart_comm::CommError),
    /// The space-sharing input stream was closed by the producer.
    StreamClosed,
    /// Thread-pool misuse (e.g. more threads requested than exist).
    Pool(smart_pool::PoolError),
}

impl fmt::Display for SmartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmartError::BadArgs(m) => write!(f, "bad scheduler arguments: {m}"),
            SmartError::ChunkMismatch { input_len, chunk_size } => write!(
                f,
                "input length {input_len} is not a multiple of the unit chunk size {chunk_size}"
            ),
            SmartError::KeyOutOfRange { key, out_len } => {
                write!(f, "convert targeted key {key} but the output buffer has {out_len} slots")
            }
            SmartError::EmptyAccumulate { key } => {
                write!(f, "accumulate left the reduction object for key {key} empty")
            }
            SmartError::Comm(e) => write!(f, "global combination failed: {e}"),
            SmartError::StreamClosed => write!(f, "space-sharing input stream is closed"),
            SmartError::Pool(e) => write!(f, "thread pool error: {e}"),
        }
    }
}

impl std::error::Error for SmartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmartError::Comm(e) => Some(e),
            SmartError::Pool(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smart_comm::CommError> for SmartError {
    fn from(e: smart_comm::CommError) -> Self {
        SmartError::Comm(e)
    }
}

impl From<smart_pool::PoolError> for SmartError {
    fn from(e: smart_pool::PoolError) -> Self {
        SmartError::Pool(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = SmartError::ChunkMismatch { input_len: 10, chunk_size: 3 };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
        let e = SmartError::KeyOutOfRange { key: -2, out_len: 5 };
        assert!(e.to_string().contains("-2"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: SmartError = smart_comm::CommError::SelfMessage(0).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: SmartError = smart_pool::PoolError::ZeroWorkers.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
