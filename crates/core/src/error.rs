//! Runtime error type.

use std::fmt;

/// Result alias for Smart runtime operations.
pub type SmartResult<T> = std::result::Result<T, SmartError>;

/// Errors surfaced by the Smart scheduler.
#[derive(Debug)]
pub enum SmartError {
    /// Scheduler arguments were inconsistent.
    BadArgs(String),
    /// The input length is not a multiple of the configured chunk size.
    ChunkMismatch {
        /// Input elements supplied.
        input_len: usize,
        /// Configured unit-chunk size.
        chunk_size: usize,
    },
    /// `convert` targeted `out[key]` with a key outside the output buffer.
    KeyOutOfRange {
        /// The offending key.
        key: i64,
        /// Output buffer length.
        out_len: usize,
    },
    /// `accumulate` returned without creating/updating the reduction object.
    EmptyAccumulate {
        /// The key whose slot was left empty.
        key: i64,
    },
    /// A communication failure during global combination.
    Comm(smart_comm::CommError),
    /// The space-sharing input stream was closed by the producer.
    StreamClosed,
    /// Thread-pool misuse (e.g. more threads requested than exist).
    Pool(smart_pool::PoolError),
    /// An error annotated with where it happened: which rank, at which
    /// step/round. Wraps the underlying failure so a `PeerGone` deep inside
    /// a distributed drive reports *who* observed it and *when* instead of a
    /// bare variant. Built with [`SmartError::at`].
    Context {
        /// World rank that observed the failure.
        rank: usize,
        /// Step (in-situ) or round (in-transit) the rank was executing.
        step: usize,
        /// The underlying failure.
        source: Box<SmartError>,
    },
    /// A deterministic fault-injection point fired (test harnesses only —
    /// see `smart-ft`'s `inject` module).
    Injected {
        /// Rank that was killed.
        rank: usize,
        /// Step at which the fault plan fired.
        step: usize,
    },
    /// Service admission: the job registry is at its active-job capacity.
    /// The submission is rejected instead of queued unboundedly; resubmit
    /// after a job retires (`smart-serve`).
    Busy {
        /// Jobs currently admitted (active + pending).
        active: usize,
        /// The registry's capacity.
        cap: usize,
    },
    /// Service admission: the tenant's token bucket cannot cover the job's
    /// cost. Buckets refill per processed time-step (`smart-serve`).
    QuotaExceeded {
        /// The tenant whose bucket ran dry.
        tenant: String,
        /// Tokens the submission needed.
        needed: u32,
        /// Tokens the bucket held.
        available: u32,
    },
    /// A submitted job was cancelled before completing (`smart-serve`).
    Cancelled {
        /// The cancelled job's id.
        job: u64,
    },
    /// A submitted job was still running past its deadline step and was
    /// retired by the service driver (`smart-serve`).
    DeadlineExceeded {
        /// The retired job's id.
        job: u64,
        /// The deadline (absolute driver step index) that passed.
        deadline: usize,
    },
    /// The live reduction map crossed the configured memory budget with
    /// spilling disabled (`SMART_MEM_BUDGET` /
    /// `Scheduler::set_mem_budget`). Raise the budget, or enable the
    /// spilling shuffle (`SMART_SPILL_BUDGET` /
    /// `Scheduler::set_spill_budget`) to reduce out-of-core instead.
    MemBudget {
        /// The configured budget in bytes.
        limit: usize,
        /// Live reduction-map bytes when the budget tripped.
        used: usize,
    },
    /// The spilling shuffle failed to write, validate, or merge an
    /// on-disk run.
    Spill(smart_spill::RunError),
}

impl SmartError {
    /// Annotate this error with the observing rank and the step/round it was
    /// executing. Already-annotated errors are returned unchanged so nested
    /// drives don't stack redundant frames.
    pub fn at(self, rank: usize, step: usize) -> SmartError {
        match self {
            SmartError::Context { .. } => self,
            other => SmartError::Context { rank, step, source: Box::new(other) },
        }
    }
}

impl fmt::Display for SmartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmartError::BadArgs(m) => write!(f, "bad scheduler arguments: {m}"),
            SmartError::ChunkMismatch { input_len, chunk_size } => write!(
                f,
                "input length {input_len} is not a multiple of the unit chunk size {chunk_size}"
            ),
            SmartError::KeyOutOfRange { key, out_len } => {
                write!(f, "convert targeted key {key} but the output buffer has {out_len} slots")
            }
            SmartError::EmptyAccumulate { key } => {
                write!(f, "accumulate left the reduction object for key {key} empty")
            }
            SmartError::Comm(e) => write!(f, "global combination failed: {e}"),
            SmartError::StreamClosed => write!(f, "space-sharing input stream is closed"),
            SmartError::Pool(e) => write!(f, "thread pool error: {e}"),
            SmartError::Context { rank, step, source } => {
                write!(f, "rank {rank} at step {step}: {source}")
            }
            SmartError::Injected { rank, step } => {
                write!(f, "injected fault killed rank {rank} at step {step}")
            }
            SmartError::Busy { active, cap } => {
                write!(f, "service registry is busy: {active} of {cap} job slots in use")
            }
            SmartError::QuotaExceeded { tenant, needed, available } => write!(
                f,
                "tenant `{tenant}` exceeded its quota: job costs {needed} token(s), \
                 bucket holds {available}"
            ),
            SmartError::Cancelled { job } => write!(f, "job {job} was cancelled"),
            SmartError::DeadlineExceeded { job, deadline } => {
                write!(f, "job {job} missed its deadline (step {deadline})")
            }
            SmartError::MemBudget { limit, used } => write!(
                f,
                "reduction map holds {used} bytes, over the {limit}-byte memory budget \
                 (enable spilling with SMART_SPILL_BUDGET to reduce out-of-core)"
            ),
            SmartError::Spill(e) => write!(f, "spilling shuffle failed: {e}"),
        }
    }
}

impl std::error::Error for SmartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmartError::Comm(e) => Some(e),
            SmartError::Pool(e) => Some(e),
            SmartError::Spill(e) => Some(e),
            SmartError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<smart_comm::CommError> for SmartError {
    fn from(e: smart_comm::CommError) -> Self {
        SmartError::Comm(e)
    }
}

impl From<smart_pool::PoolError> for SmartError {
    fn from(e: smart_pool::PoolError) -> Self {
        SmartError::Pool(e)
    }
}

impl From<smart_spill::RunError> for SmartError {
    fn from(e: smart_spill::RunError) -> Self {
        SmartError::Spill(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = SmartError::ChunkMismatch { input_len: 10, chunk_size: 3 };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
        let e = SmartError::KeyOutOfRange { key: -2, out_len: 5 };
        assert!(e.to_string().contains("-2"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: SmartError = smart_comm::CommError::SelfMessage(0).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: SmartError = smart_pool::PoolError::ZeroWorkers.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn context_names_rank_step_and_underlying_error() {
        let inner: SmartError = smart_comm::CommError::PeerGone { peer: 3 }.into();
        let e = inner.at(1, 7);
        let msg = e.to_string();
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("step 7"), "{msg}");
        assert!(msg.contains('3'), "must still name the dead peer: {msg}");
        // The source chain reaches the CommError.
        let src = std::error::Error::source(&e).expect("context has a source");
        assert!(src.to_string().contains('3'), "{src}");
    }

    #[test]
    fn context_does_not_stack() {
        let e = SmartError::StreamClosed.at(0, 1).at(5, 9);
        match e {
            SmartError::Context { rank: 0, step: 1, .. } => {}
            other => panic!("re-annotation must keep the innermost frame, got {other:?}"),
        }
    }

    #[test]
    fn admission_errors_name_the_offender() {
        let e = SmartError::Busy { active: 4, cap: 4 };
        assert!(e.to_string().contains("4 of 4"), "{e}");
        let e = SmartError::QuotaExceeded { tenant: "viz".into(), needed: 2, available: 1 };
        let msg = e.to_string();
        assert!(msg.contains("viz") && msg.contains('2') && msg.contains('1'), "{msg}");
        let e = SmartError::Cancelled { job: 9 };
        assert!(e.to_string().contains("job 9"), "{e}");
        let e = SmartError::DeadlineExceeded { job: 3, deadline: 17 };
        let msg = e.to_string();
        assert!(msg.contains("job 3") && msg.contains("step 17"), "{msg}");
    }

    #[test]
    fn budget_and_spill_errors_are_specific() {
        let e = SmartError::MemBudget { limit: 1024, used: 4096 };
        let msg = e.to_string();
        assert!(msg.contains("4096") && msg.contains("1024"), "{msg}");
        assert!(msg.contains("SMART_SPILL_BUDGET"), "must point at the fix: {msg}");
        let e: SmartError = smart_spill::RunError::CorruptCrc { stored: 1, computed: 2 }.into();
        assert!(e.to_string().contains("mismatch"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn injected_fault_displays_location() {
        let e = SmartError::Injected { rank: 2, step: 4 };
        assert!(e.to_string().contains("rank 2"));
        assert!(e.to_string().contains("step 4"));
    }
}
