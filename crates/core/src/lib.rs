//! # smart-core
//!
//! The **Smart** runtime — a MapReduce-like framework for in-situ scientific
//! analytics (Wang, Agrawal, Bicer, Jiang; SC 2015), reproduced in Rust.
//!
//! Smart replaces MapReduce's *emit key-value pairs → shuffle → reduce*
//! pipeline with in-place reduction on two map structures:
//!
//! * every thread owns a **reduction map** (`key → reduction object`); for
//!   each unit chunk the user's [`Analytics::gen_key`] (or
//!   [`Analytics::gen_keys`]) picks the key(s) and
//!   [`Analytics::accumulate`] folds the chunk into the object in place —
//!   **no intermediate key-value pair is ever materialized**, which is what
//!   keeps the analytics footprint small enough to co-exist with a
//!   memory-bound simulation (paper §2.3.3, §3.1);
//! * a **local combination** merges the per-thread reduction maps into one
//!   combination map with [`Analytics::merge`] — pairwise in parallel on
//!   the pool by default (see [`CombineStrategy`]);
//! * a **global combination** merges the per-rank combination maps across
//!   the cluster — by default a shard-partitioned ring allreduce that
//!   spreads traffic evenly across ranks (binomial tree + broadcast as the
//!   [`CombineStrategy::Serial`] fallback), serializing reduction objects
//!   with `smart-wire` (§5.3 notes this serialization cost);
//! * [`Analytics::post_combine`] updates the map between iterations
//!   (e.g. recomputing k-means centroids), and [`Analytics::convert`]
//!   extracts the final output.
//!
//! Two in-situ modes (§3.2):
//!
//! * **time sharing** — [`Scheduler::run`]/[`Scheduler::run_dist`] borrow
//!   the simulation's output buffer directly (`&[In]`): the zero-copy *read
//!   pointer* of Fig. 3. Rust's borrow checker statically enforces the
//!   paper's constraint that analytics must finish before the simulation
//!   overwrites the buffer. `SchedArgs::copy_input` opts into the extra
//!   copy for the Fig. 9 comparison.
//! * **space sharing** — [`space::SpaceShared`] decouples a simulation task
//!   feeding a bounded [`space::CircularBuffer`] from an analytics task
//!   draining it (Fig. 4), each on its own core group.
//!
//! Plus the in-situ literature's third placement, beyond the paper:
//!
//! * **in-transit** — [`in_transit::run_in_transit`] streams time-step
//!   partitions from simulation ranks to dedicated staging ranks over a
//!   credit-windowed transport; the staging ranks run the full Smart
//!   pipeline among themselves and produce the same combination map as the
//!   in-situ modes, bit for bit.
//!
//! The window-analytics optimization (§4) is [`RedObj::trigger`]: when an
//! object reports itself complete during reduction it is immediately
//! [`Analytics::convert`]ed into the output and erased, capping live
//! reduction objects at the window size instead of the input size.
//!
//! ## Example: histogram in ~20 lines (paper Listing 3)
//!
//! ```
//! use serde::{Serialize, Deserialize};
//! use smart_core::{Analytics, Chunk, ComMap, Key, RedObj, SchedArgs, Scheduler};
//!
//! #[derive(Clone, Serialize, Deserialize, Default)]
//! struct Bucket { count: u64 }
//! impl RedObj for Bucket {}
//!
//! struct Histogram { min: f64, width: f64, buckets: usize }
//!
//! impl Analytics for Histogram {
//!     type In = f64;
//!     type Red = Bucket;
//!     type Out = u64;
//!     type Extra = ();
//!
//!     fn gen_key(&self, chunk: &Chunk, data: &[f64], _com: &ComMap<Bucket>) -> Key {
//!         let bucket = (data[chunk.local_start] - self.min) / self.width;
//!         (bucket as usize).min(self.buckets - 1) as Key
//!     }
//!     fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, obj: &mut Option<Bucket>) {
//!         obj.get_or_insert_with(Bucket::default).count += 1;
//!     }
//!     fn merge(&self, red: &Bucket, com: &mut Bucket) { com.count += red.count; }
//!     fn convert(&self, obj: &Bucket, out: &mut u64) { *out = obj.count; }
//! }
//!
//! let pool = smart_pool::shared_pool(2).unwrap();
//! let hist = Histogram { min: 0.0, width: 0.25, buckets: 4 };
//! let mut smart = Scheduler::new(hist, SchedArgs::new(2, 1), pool).unwrap();
//! let data = [0.1, 0.3, 0.6, 0.9, 0.95, 0.2];
//! let mut out = [0u64; 4];
//! smart.run(&data, &mut out).unwrap();
//! assert_eq!(out, [2, 1, 1, 2]);
//! ```

mod api;
mod args;
mod combine;
mod error;
pub mod in_transit;
mod observer;
pub mod pipeline;
mod redmap;
mod reduce;
mod scheduler;
mod shared_slice;
pub mod space;
mod spill;
pub mod stage;
mod step;

pub use api::{Analytics, Chunk, ComMap, Key, RedObj};
pub use args::SchedArgs;
pub use combine::{fold_entries_view, CombineStrategy};
pub use error::{SmartError, SmartResult};
pub use in_transit::{
    run_in_transit, InTransitConfig, InTransitOk, InTransitOutcome, Placement, Producer,
    ProducerOutcome, StagerOutcome, Topology,
};
pub use observer::{JobLane, NoopObserver, PhaseObserver, RunStats};
pub use pipeline::Pipeline;
pub use redmap::{RedMap, DENSE_KEY_CAP};
pub use reduce::{Batch, BatchSink};
pub use scheduler::Scheduler;
pub use shared_slice::SharedSlice;
pub use step::{KeyMode, StepSpec};
