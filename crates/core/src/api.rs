//! The user-facing Smart API: reduction objects, analytics callbacks, and
//! the combination map (paper Table 1, "functions implemented by the user").

use crate::redmap::RedMap;
use crate::reduce::{Batch, BatchSink};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Reduction-map key. The paper uses `int`; window-based analytics index
/// keys by global element position, so we use a 64-bit signed integer.
pub type Key = i64;

/// A unit chunk: the fixed-size processing unit of one reduction step
/// (one histogram element, one k-means point, one labeled feature vector…).
///
/// Unlike conventional MapReduce records, chunks preserve *array positional
/// information* (paper §5.8): `global_start` is the chunk's element index in
/// the whole distributed dataset, which window-based and structural
/// analytics key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the chunk's first element within the local partition slice
    /// passed to the callbacks.
    pub local_start: usize,
    /// Index of the chunk's first element within the global dataset.
    pub global_start: usize,
    /// Elements in the chunk (the `chunk_size` of [`crate::SchedArgs`]).
    pub len: usize,
}

impl Chunk {
    /// The chunk's elements within the local partition.
    // PANIC-FREE: the scheduler only emits chunks whose range lies inside the partition it was built from.
    #[inline]
    pub fn slice<'a, T>(&self, data: &'a [T]) -> &'a [T] {
        &data[self.local_start..self.local_start + self.len]
    }

    /// The chunk's *unit index* in the global dataset (element index divided
    /// by chunk length) — handy as a key for per-record outputs.
    #[inline]
    pub fn global_unit(&self) -> usize {
        self.global_start / self.len.max(1)
    }
}

/// A reduction object: the accumulated value associated with one key
/// (paper §3.1). Implementations must be cheap to clone (they are
/// redistributed to per-thread maps each iteration) and serializable (they
/// are shipped between ranks during global combination).
pub trait RedObj: Send + Sync + Clone + Serialize + DeserializeOwned + 'static {
    /// Early-emission condition (paper §4, Algorithm 2). When this returns
    /// `true` during the reduction phase the runtime immediately converts
    /// the object into its output slot and erases it from the reduction
    /// map. The default — never trigger — preserves the unoptimized
    /// behaviour.
    fn trigger(&self) -> bool {
        false
    }
}

/// The combination map: `key → reduction object`, shared by local and
/// global combination. A thin veneer over [`RedMap`] so user callbacks
/// (like k-means `gen_key` scanning centroids) get a read interface.
pub type ComMap<R> = RedMap<R>;

/// One analytics application, written in the sequential programming view.
///
/// Mirrors the paper's user API (Table 1): `gen_key`/`gen_keys`,
/// `accumulate`, `merge`, `process_extra_data`, `post_combine`, `convert`.
/// One deviation, documented in DESIGN.md: `accumulate` receives the `key`
/// being accumulated, which offset-dependent window kernels (Savitzky–Golay,
/// Gaussian) need; the paper's C++ runtime can smuggle the key inside the
/// freshly constructed reduction object instead. Applications that do not
/// care (all of the paper's listings) simply ignore the parameter.
pub trait Analytics: Send + Sync {
    /// Input element type (the simulation output array's element).
    type In: Send + Sync;
    /// Reduction object type.
    type Red: RedObj;
    /// Output slot type (`convert` writes `out[key]`).
    type Out: Send + Sync;
    /// Extra input processed before the first iteration (e.g. initial
    /// k-means centroids). Use `()` when not needed.
    type Extra: Send + Sync;

    /// Generate the single key for a unit chunk ([`crate::Scheduler::run`]).
    /// Default: everything reduces under key `0`.
    fn gen_key(&self, _chunk: &Chunk, _data: &[Self::In], _com: &ComMap<Self::Red>) -> Key {
        0
    }

    /// Generate multiple keys for a unit chunk ([`crate::Scheduler::run2`];
    /// the paper likens it to Scala's `flatMap`). Push keys into `keys`,
    /// which arrives empty. Default: delegate to [`gen_key`](Self::gen_key).
    fn gen_keys(
        &self,
        chunk: &Chunk,
        data: &[Self::In],
        com: &ComMap<Self::Red>,
        keys: &mut Vec<Key>,
    ) {
        keys.push(self.gen_key(chunk, data, com));
    }

    /// Fold the chunk into the reduction object for `key`. `obj` is `None`
    /// the first time the key is seen in this thread's reduction map — the
    /// implementation must create it (the paper's `red_obj.reset(new …)`).
    fn accumulate(&self, chunk: &Chunk, data: &[Self::In], key: Key, obj: &mut Option<Self::Red>);

    /// Exclusive upper bound on the keys this analytics generates, when one
    /// is statically known (histogram bucket count, k-means `k`, grid cell
    /// count). Declaring a bound lets the runtime give worker reduction
    /// maps the dense direct-indexed backend
    /// ([`RedMap::with_key_bound`](crate::RedMap::with_key_bound)) — a pure
    /// optimization: keys escaping the bound spill the map back to hashing
    /// with identical observable behaviour. Default: unknown (`None`).
    fn key_bound(&self) -> Option<usize> {
        None
    }

    /// Reduce a whole batch of unit chunks into `sink` — the hot-loop seam.
    ///
    /// The runtime drives each worker's split through this method in
    /// [`Batch`]-sized runs instead of calling `gen_key`/`accumulate` chunk
    /// by chunk itself. The default walks the batch exactly like the
    /// classic loop ([`BatchSink::reduce_default`]); override it with an
    /// explicit kernel (SIMD bucket search, hoisted single-key folds, …)
    /// when profiling says the per-chunk walk dominates.
    ///
    /// Contract: an override must produce a reduction map **bit-identical**
    /// to the default walk — same keys, same objects, same early emissions —
    /// for every key mode it claims (fall back to
    /// [`BatchSink::reduce_default`] for the rest). The equivalence suite
    /// in `smart-analytics` pins this for the in-tree kernels.
    fn reduce_batch(&self, data: &[Self::In], batch: &Batch, sink: &mut BatchSink<'_, '_, Self>)
    where
        Self: Sized,
    {
        sink.reduce_default(self, data, batch);
    }

    /// Merge `red` into the combination object `com` (associative and
    /// commutative over the distributive fields).
    fn merge(&self, red: &Self::Red, com: &mut Self::Red);

    /// Merge one *encoded* reduction object, positioned under `de`, into
    /// `com` — the zero-copy seam of global combination's wire-view receive
    /// path. The default decodes an owned `Self::Red` and delegates to
    /// [`merge`](Self::merge), which is always correct; analytics with
    /// heap-bearing reduction objects (k-means clusters and their
    /// per-dimension vectors) override it to fold the encoded fields
    /// directly into `com`, allocating nothing.
    ///
    /// Contract: the implementation must consume **exactly one** encoded
    /// `Self::Red` from `de` and leave `com` bit-identical to
    /// `merge(&decoded, com)`. The wire-view proptests in `smart-core`
    /// and the analytics equivalence suite pin this for in-tree overrides.
    fn merge_wire(
        &self,
        de: &mut smart_wire::Deserializer<'_>,
        com: &mut Self::Red,
    ) -> smart_wire::Result<()> {
        use serde::Deserialize;
        let red = Self::Red::deserialize(&mut *de)?;
        self.merge(&red, com);
        Ok(())
    }

    /// Whether this analytics tolerates the spilling shuffle. Opt-in
    /// (`false` by default) because spilling changes *when* reduction
    /// objects merge: one key's chunks may land in several run fragments
    /// that are only folded together at merge time, so correctness needs
    ///
    /// * `accumulate` to distribute over `merge` — folding chunk sets
    ///   separately and merging must equal folding them all into one
    ///   object (exact for integer-carried state, the repo's convention
    ///   for cross-strategy bit-identity);
    /// * no early emission ([`RedObj::trigger`] never fires);
    /// * `gen_key`/`accumulate` not reading the combination map (a
    ///   spilled com map is on disk during reduction);
    /// * `post_combine` to be the identity (the combined map may never be
    ///   resident in one piece).
    ///
    /// The scheduler engages spilling only when a budget is set *and* this
    /// returns `true`; otherwise the run stays resident (and a mem budget,
    /// if set, still guards it).
    fn spill_safe(&self) -> bool {
        false
    }

    /// Seed the combination map from extra input before the first
    /// iteration (e.g. initial centroids). Default: nothing.
    fn process_extra_data(&self, _extra: Option<&Self::Extra>, _com: &mut ComMap<Self::Red>) {}

    /// Update the combination map after each iteration's combination phase
    /// (e.g. recompute centroids from sums). Default: nothing.
    fn post_combine(&self, _com: &mut ComMap<Self::Red>) {}

    /// Convert a finished reduction object into its output slot.
    /// Default: nothing (applications that read the combination map
    /// directly, like mutual information, skip conversion).
    fn convert(&self, _obj: &Self::Red, _out: &mut Self::Out) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_slice_and_unit() {
        let data = [10, 11, 12, 13, 14, 15];
        let c = Chunk { local_start: 2, global_start: 8, len: 2 };
        assert_eq!(c.slice(&data), &[12, 13]);
        assert_eq!(c.global_unit(), 4);
    }

    #[test]
    fn chunk_unit_with_len_one() {
        let c = Chunk { local_start: 0, global_start: 5, len: 1 };
        assert_eq!(c.global_unit(), 5);
    }

    #[derive(Clone, serde::Serialize, serde::Deserialize)]
    struct Sum(u64);
    impl RedObj for Sum {}

    struct CountAll;
    impl Analytics for CountAll {
        type In = u64;
        type Red = Sum;
        type Out = u64;
        type Extra = ();
        fn accumulate(&self, _c: &Chunk, _d: &[u64], _k: Key, obj: &mut Option<Sum>) {
            obj.get_or_insert(Sum(0)).0 += 1;
        }
        fn merge(&self, red: &Sum, com: &mut Sum) {
            com.0 += red.0;
        }
    }

    #[test]
    fn default_gen_key_is_zero_and_gen_keys_delegates() {
        let a = CountAll;
        let com = ComMap::new();
        let c = Chunk { local_start: 0, global_start: 0, len: 1 };
        assert_eq!(a.gen_key(&c, &[1], &com), 0);
        let mut keys = Vec::new();
        a.gen_keys(&c, &[1], &com, &mut keys);
        assert_eq!(keys, vec![0]);
    }

    #[test]
    fn default_trigger_is_false() {
        assert!(!Sum(3).trigger());
    }
}
