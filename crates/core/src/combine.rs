//! The combination pipeline — Algorithm 1 lines 11–17, both layers.
//!
//! [`local_combine`] merges the per-thread partial maps from
//! [`crate::reduce`] into one *delta* map (the step's contribution only —
//! the persistent combination map is merged afterwards, so global
//! combination never re-sums state previous steps already made global).
//! [`global_combine`] merges the delta across ranks; afterwards every rank
//! holds the same global delta. [`CombineStrategy`] selects how far along
//! the parallel pipeline to go; all strategies produce identical maps (see
//! DESIGN.md, "Combination pipeline").

use crate::api::{Analytics, ComMap, Key};
use crate::error::SmartResult;
use crate::observer::{PhaseObserver, Stopwatch};
use crate::redmap::RedMap;
use smart_comm::{CommResult, Communicator};
use smart_pool::SharedPool;
use smart_wire::EntriesCursor;

/// How the combination pipeline executes — the local merge of per-thread
/// partial maps and the global merge across ranks. All three strategies
/// produce identical combination maps; they differ only in parallelism and
/// communication pattern (see DESIGN.md, "Combination pipeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineStrategy {
    /// Sequential local merge on the driver thread; reduce-to-root +
    /// broadcast allreduce globally. The paper's baseline pipeline
    /// (Algorithm 1 run literally).
    Serial,
    /// Pairwise parallel tree merge of per-thread partials on the pool
    /// (⌈log₂ t⌉ rounds); same global allreduce as `Serial`.
    Tree,
    /// Tree local merge plus shard-partitioned global combination: entries
    /// are hash-partitioned by key across ranks, reduced with a ring
    /// reduce-scatter, and reassembled with a ring allgather, so per-rank
    /// traffic is bounded by ~2× the serialized map regardless of rank
    /// count. The default.
    #[default]
    Sharded,
    /// Tree local merge plus a direct all-to-all global combination over
    /// the ranks the communicator believes alive
    /// (`Communicator::allgather_alive`). Ships the whole delta to every
    /// peer — O(n) traffic per rank, worse than `Sharded` — but it is the
    /// only strategy that survives rank death: the tree and ring patterns
    /// wedge or poison a round when a peer vanishes, while the direct
    /// exchange surfaces the death symmetrically on every survivor and can
    /// simply be retried over the surviving subset. Used by the
    /// fault-tolerance layer's self-healing in-transit drive.
    Gossip,
}

/// Layer 1: merge the per-thread partial maps into the step's delta map.
///
/// The partials are the scheduler's lent *shells* — combination drains
/// them in place (borrow, don't consume) so their table allocations stay
/// in the shell pool for the next step. The one exception is the tree
/// winner: its allocation leaves as the delta (`mem::take`), so exactly
/// one shell per step is reborn empty. Busy time reports through
/// `observer` as [`PhaseObserver::local_merge_done`].
pub(crate) fn local_combine<A: Analytics>(
    analytics: &A,
    pool: &SharedPool,
    strategy: CombineStrategy,
    partials: &mut [RedMap<A::Red>],
    observer: &mut dyn PhaseObserver,
) -> SmartResult<RedMap<A::Red>> {
    let measure = observer.enabled();
    let sw = Stopwatch::new(measure);
    let delta = match strategy {
        CombineStrategy::Serial => {
            let mut d = RedMap::new();
            for partial in partials.iter_mut() {
                merge_from(analytics, partial, &mut d);
            }
            d
        }
        CombineStrategy::Tree | CombineStrategy::Sharded | CombineStrategy::Gossip => {
            tree_merge(analytics, pool, partials.iter_mut().collect())?
        }
    };
    if measure {
        observer.local_merge_done(sw.elapsed());
    }
    Ok(delta)
}

/// Pairwise parallel tree merge on the pool: ⌈log₂ t⌉ rounds with pairs
/// merging concurrently. Each pair reuses the larger map's allocation as
/// the destination and pre-reserves for the smaller one, so no merge grows
/// through intermediate capacities (see `RedMap::reserve`). The winning
/// map is taken out of its shell; every losing shell is left drained but
/// allocated.
fn tree_merge<A: Analytics>(
    analytics: &A,
    pool: &SharedPool,
    parts: Vec<&mut RedMap<A::Red>>,
) -> SmartResult<RedMap<A::Red>> {
    let merged = pool.tree_reduce(parts, |a, b| {
        let (dst, src) = if a.capacity() >= b.capacity() { (a, b) } else { (b, a) };
        merge_from(analytics, src, dst);
        dst
    })?;
    Ok(merged.map(std::mem::take).unwrap_or_default())
}

/// Layer 2: merge the delta across ranks (same merge operator, applied to
/// serialized entries); every rank returns the same global delta. Entries
/// travel as key-sorted vectors merged with a streaming join — no `RedMap`
/// rebuild inside the collective. Payload/wire bytes and busy time report
/// through `observer` as [`PhaseObserver::global_combine_done`].
pub(crate) fn global_combine<A: Analytics>(
    analytics: &A,
    strategy: CombineStrategy,
    comm: &mut Communicator,
    mut delta: RedMap<A::Red>,
    wire_view: bool,
    observer: &mut dyn PhaseObserver,
) -> SmartResult<RedMap<A::Red>> {
    let mut local = delta.drain_entries();
    local.sort_unstable_by_key(|&(k, _)| k);
    let merged = global_combine_entries(analytics, strategy, comm, local, wire_view, observer)?;
    Ok(RedMap::from_entries(merged))
}

/// [`global_combine`] on already-sorted entry vectors: the spilling path
/// merges its on-disk runs straight into a sorted delta vector and feeds
/// it here, skipping the `RedMap` rebuild on both sides. Dispatch,
/// measurement, and merge order are byte-for-byte those of the resident
/// path — this *is* the resident path, minus the map shells around it.
pub(crate) fn global_combine_entries<A: Analytics>(
    analytics: &A,
    strategy: CombineStrategy,
    comm: &mut Communicator,
    local: Vec<(Key, A::Red)>,
    wire_view: bool,
    observer: &mut dyn PhaseObserver,
) -> SmartResult<Vec<(Key, A::Red)>> {
    let measure = observer.enabled();
    let sw = Stopwatch::new(measure);
    let wire_before = if measure { comm.sent_bytes() } else { 0 };
    // lint:allow(measured-paths): gated on `measure` — zero work when stats are off
    let payload = if measure { smart_wire::encoded_len(&local).unwrap_or(0) } else { 0 };
    let merged = if wire_view {
        global_combine_view(analytics, strategy, comm, local)?
    } else {
        global_combine_owned(analytics, strategy, comm, local)?
    };
    if measure {
        observer.global_combine_done(payload, comm.sent_bytes() - wire_before, sw.elapsed());
    }
    Ok(merged)
}

/// The owned receive path: every hop decodes incoming entries into a
/// `Vec<(Key, Red)>` before merging. Kept as the `wire_view: false`
/// reference implementation the view path is proptested against.
fn global_combine_owned<A: Analytics>(
    analytics: &A,
    strategy: CombineStrategy,
    comm: &mut Communicator,
    local: Vec<(Key, A::Red)>,
) -> SmartResult<Vec<(Key, A::Red)>> {
    Ok(match strategy {
        CombineStrategy::Serial | CombineStrategy::Tree => comm.allreduce(local, |acc, inc| {
            smart_comm::merge_sorted_entries(acc, inc, |com, red| analytics.merge(&red, com))
        })?,
        CombineStrategy::Sharded => {
            comm.allreduce_sharded(local, |com, red| analytics.merge(&red, com))?
        }
        CombineStrategy::Gossip => {
            let contributions = comm.allgather_alive(local)?;
            // Fold in ascending rank order so every survivor computes the
            // byte-identical merged map.
            let mut acc: Vec<(i64, A::Red)> = Vec::new();
            for (_rank, entries) in contributions {
                acc = smart_comm::merge_sorted_entries(acc, entries, |com, red| {
                    analytics.merge(&red, com)
                });
            }
            acc
        }
    })
}

/// The zero-copy receive path: incoming payloads are validated once and
/// folded through [`fold_entries_view`] — existing keys merge in place via
/// [`Analytics::merge_wire`] with no per-entry decode, and only genuinely
/// new keys pay an owned decode. Every strategy applies merges in exactly
/// the same order as [`global_combine_owned`], so the two paths are
/// bit-identical for deterministic merge operators.
fn global_combine_view<A: Analytics>(
    analytics: &A,
    strategy: CombineStrategy,
    comm: &mut Communicator,
    mut local: Vec<(Key, A::Red)>,
) -> SmartResult<Vec<(Key, A::Red)>> {
    let rank = comm.rank();
    Ok(match strategy {
        CombineStrategy::Serial | CombineStrategy::Tree => {
            // Binomial reduce to rank 0 (children folded in mask order,
            // exactly like the typed reduce), then broadcast of the
            // encoded result.
            let reduced = comm.reduce_bytes_with(
                0,
                local,
                |acc| Ok(smart_wire::to_bytes(acc)?),
                |acc, bytes| fold_entries_view(analytics, acc, &bytes),
            )?;
            match reduced {
                Some(entries) => {
                    comm.broadcast_bytes(
                        0,
                        smart_wire::to_bytes(&entries).map_err(smart_comm::CommError::from)?,
                    )?;
                    entries
                }
                None => {
                    let bytes = comm.broadcast_bytes(0, Vec::new())?;
                    fold_entries_view(analytics, Vec::new(), &bytes)?
                }
            }
        }
        CombineStrategy::Sharded => {
            let n = comm.size();
            if n == 1 {
                local
            } else {
                // Same partitioning as `allreduce_sharded`: keys are unique
                // (drained from a map) and sorted, so no local coalescing
                // is needed before sharding.
                let mut shards: Vec<Vec<(Key, A::Red)>> = (0..n).map(|_| Vec::new()).collect();
                for (k, v) in local {
                    // PANIC-FREE: shard_of reduces mod n = shards.len(), so the index is in bounds.
                    shards[smart_comm::shard_of(k, n)].push((k, v));
                }
                let mine = comm.reduce_scatter_bytes_with(
                    shards,
                    |block| Ok(smart_wire::to_bytes(block)?),
                    |block, bytes| fold_entries_view(analytics, block, &bytes),
                )?;
                let all = comm.allgather_ring_bytes(
                    smart_wire::to_bytes(&mine).map_err(smart_comm::CommError::from)?,
                )?;
                let mut out: Vec<(Key, A::Red)> = Vec::new();
                let mut mine = Some(mine);
                for (r, bytes) in all.into_iter().enumerate() {
                    if r == rank {
                        // Own shard is still owned: no need to re-decode it.
                        // PANIC-FREE: r == rank happens exactly once in the enumeration, so mine is still Some here.
                        out.append(&mut mine.take().expect("own shard"));
                    } else {
                        out.extend(fold_entries_view(analytics, Vec::new(), &bytes)?);
                    }
                }
                // Shards partition by hash, not range: restore key order.
                out.sort_unstable_by_key(|&(k, _)| k);
                out
            }
        }
        CombineStrategy::Gossip => {
            let payload = smart_wire::to_bytes(&local).map_err(smart_comm::CommError::from)?;
            let contributions = comm.allgather_alive_bytes(payload)?;
            // Ascending rank order, like the owned path; the local
            // contribution folds from its owned entries rather than its
            // encoded copy.
            let mut acc: Vec<(i64, A::Red)> = Vec::new();
            for (r, bytes) in contributions {
                if r == rank {
                    acc = smart_comm::merge_sorted_entries(
                        acc,
                        std::mem::take(&mut local),
                        |com, red| analytics.merge(&red, com),
                    );
                } else {
                    acc = fold_entries_view(analytics, acc, &bytes)?;
                }
            }
            acc
        }
    })
}

/// Fold an encoded, key-sorted entry payload into the key-sorted `acc`
/// through a validating wire view: a streaming merge-join where keys
/// already in `acc` merge **in place** via [`Analytics::merge_wire`]
/// (no per-entry allocation) and only keys absent from `acc` decode an
/// owned value. Produces exactly what
/// `merge_sorted_entries(acc, from_bytes(bytes), |com, red| merge(&red, com))`
/// would — the proptests in `tests/wire_view.rs` pin the equivalence —
/// without materializing the incoming vector.
///
/// Public for the combine-pipeline benches and equivalence tests; the
/// scheduler reaches it through `global_combine`'s `wire_view` flag.
pub fn fold_entries_view<A: Analytics>(
    analytics: &A,
    acc: Vec<(Key, A::Red)>,
    bytes: &[u8],
) -> CommResult<Vec<(Key, A::Red)>> {
    let mut cur = EntriesCursor::new(bytes).map_err(smart_comm::CommError::from)?;
    let mut out: Vec<(Key, A::Red)> = Vec::with_capacity(acc.len().max(cur.remaining()));
    let mut ai = acc.into_iter().peekable();
    while let Some(key) = cur.next_key().map_err(smart_comm::CommError::from)? {
        while ai.peek().is_some_and(|(ka, _)| *ka < key) {
            // PANIC-FREE: the loop condition just peeked Some.
            out.push(ai.next().expect("peeked"));
        }
        match ai.peek() {
            Some((ka, _)) if *ka == key => {
                // PANIC-FREE: this match arm just peeked Some.
                let (k, mut com) = ai.next().expect("peeked");
                analytics.merge_wire(cur.de(), &mut com).map_err(smart_comm::CommError::from)?;
                out.push((k, com));
            }
            _ => {
                let red = cur.value::<A::Red>().map_err(smart_comm::CommError::from)?;
                out.push((key, red));
            }
        }
    }
    out.extend(ai);
    cur.finish().map_err(smart_comm::CommError::from)?;
    Ok(out)
}

/// Merge `src` into `dst` with the analytics' merge operator
/// (lines 11–17: merge when the key exists, move otherwise).
pub(crate) fn merge_into<A: Analytics>(
    analytics: &A,
    mut src: RedMap<A::Red>,
    dst: &mut ComMap<A::Red>,
) {
    merge_from(analytics, &mut src, dst);
}

/// [`merge_into`], borrowing form: drains `src` in place so its table
/// allocation survives — the shell-reuse path through [`local_combine`].
pub(crate) fn merge_from<A: Analytics>(
    analytics: &A,
    src: &mut RedMap<A::Red>,
    dst: &mut ComMap<A::Red>,
) {
    // Pre-size: src arrives in hash order; letting dst grow through
    // smaller capacities turns that order quadratic (see RedMap::reserve).
    dst.reserve(src.len());
    for (key, obj) in src.drain_entries() {
        match dst.get_mut(key) {
            Some(com) => analytics.merge(&obj, com),
            None => {
                dst.insert(key, obj);
            }
        }
    }
}
