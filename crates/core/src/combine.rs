//! The combination pipeline — Algorithm 1 lines 11–17, both layers.
//!
//! [`local_combine`] merges the per-thread partial maps from
//! [`crate::reduce`] into one *delta* map (the step's contribution only —
//! the persistent combination map is merged afterwards, so global
//! combination never re-sums state previous steps already made global).
//! [`global_combine`] merges the delta across ranks; afterwards every rank
//! holds the same global delta. [`CombineStrategy`] selects how far along
//! the parallel pipeline to go; all strategies produce identical maps (see
//! DESIGN.md, "Combination pipeline").

use crate::api::{Analytics, ComMap};
use crate::error::SmartResult;
use crate::observer::{PhaseObserver, Stopwatch};
use crate::redmap::RedMap;
use smart_comm::Communicator;
use smart_pool::SharedPool;

/// How the combination pipeline executes — the local merge of per-thread
/// partial maps and the global merge across ranks. All three strategies
/// produce identical combination maps; they differ only in parallelism and
/// communication pattern (see DESIGN.md, "Combination pipeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineStrategy {
    /// Sequential local merge on the driver thread; reduce-to-root +
    /// broadcast allreduce globally. The paper's baseline pipeline
    /// (Algorithm 1 run literally).
    Serial,
    /// Pairwise parallel tree merge of per-thread partials on the pool
    /// (⌈log₂ t⌉ rounds); same global allreduce as `Serial`.
    Tree,
    /// Tree local merge plus shard-partitioned global combination: entries
    /// are hash-partitioned by key across ranks, reduced with a ring
    /// reduce-scatter, and reassembled with a ring allgather, so per-rank
    /// traffic is bounded by ~2× the serialized map regardless of rank
    /// count. The default.
    #[default]
    Sharded,
    /// Tree local merge plus a direct all-to-all global combination over
    /// the ranks the communicator believes alive
    /// (`Communicator::allgather_alive`). Ships the whole delta to every
    /// peer — O(n) traffic per rank, worse than `Sharded` — but it is the
    /// only strategy that survives rank death: the tree and ring patterns
    /// wedge or poison a round when a peer vanishes, while the direct
    /// exchange surfaces the death symmetrically on every survivor and can
    /// simply be retried over the surviving subset. Used by the
    /// fault-tolerance layer's self-healing in-transit drive.
    Gossip,
}

/// Layer 1: merge the per-thread partial maps into the step's delta map.
///
/// The partials are the scheduler's lent *shells* — combination drains
/// them in place (borrow, don't consume) so their table allocations stay
/// in the shell pool for the next step. The one exception is the tree
/// winner: its allocation leaves as the delta (`mem::take`), so exactly
/// one shell per step is reborn empty. Busy time reports through
/// `observer` as [`PhaseObserver::local_merge_done`].
pub(crate) fn local_combine<A: Analytics>(
    analytics: &A,
    pool: &SharedPool,
    strategy: CombineStrategy,
    partials: &mut [RedMap<A::Red>],
    observer: &mut dyn PhaseObserver,
) -> SmartResult<RedMap<A::Red>> {
    let measure = observer.enabled();
    let sw = Stopwatch::new(measure);
    let delta = match strategy {
        CombineStrategy::Serial => {
            let mut d = RedMap::new();
            for partial in partials.iter_mut() {
                merge_from(analytics, partial, &mut d);
            }
            d
        }
        CombineStrategy::Tree | CombineStrategy::Sharded | CombineStrategy::Gossip => {
            tree_merge(analytics, pool, partials.iter_mut().collect())?
        }
    };
    if measure {
        observer.local_merge_done(sw.elapsed());
    }
    Ok(delta)
}

/// Pairwise parallel tree merge on the pool: ⌈log₂ t⌉ rounds with pairs
/// merging concurrently. Each pair reuses the larger map's allocation as
/// the destination and pre-reserves for the smaller one, so no merge grows
/// through intermediate capacities (see `RedMap::reserve`). The winning
/// map is taken out of its shell; every losing shell is left drained but
/// allocated.
fn tree_merge<A: Analytics>(
    analytics: &A,
    pool: &SharedPool,
    parts: Vec<&mut RedMap<A::Red>>,
) -> SmartResult<RedMap<A::Red>> {
    let merged = pool.tree_reduce(parts, |a, b| {
        let (dst, src) = if a.capacity() >= b.capacity() { (a, b) } else { (b, a) };
        merge_from(analytics, src, dst);
        dst
    })?;
    Ok(merged.map(std::mem::take).unwrap_or_default())
}

/// Layer 2: merge the delta across ranks (same merge operator, applied to
/// serialized entries); every rank returns the same global delta. Entries
/// travel as key-sorted vectors merged with a streaming join — no `RedMap`
/// rebuild inside the collective. Payload/wire bytes and busy time report
/// through `observer` as [`PhaseObserver::global_combine_done`].
pub(crate) fn global_combine<A: Analytics>(
    analytics: &A,
    strategy: CombineStrategy,
    comm: &mut Communicator,
    mut delta: RedMap<A::Red>,
    observer: &mut dyn PhaseObserver,
) -> SmartResult<RedMap<A::Red>> {
    let measure = observer.enabled();
    let sw = Stopwatch::new(measure);
    let wire_before = if measure { comm.sent_bytes() } else { 0 };
    let mut local = delta.drain_entries();
    local.sort_unstable_by_key(|&(k, _)| k);
    // lint:allow(measured-paths): gated on `measure` — zero work when stats are off
    let payload = if measure { smart_wire::encoded_len(&local).unwrap_or(0) } else { 0 };
    let merged = match strategy {
        CombineStrategy::Serial | CombineStrategy::Tree => comm.allreduce(local, |acc, inc| {
            smart_comm::merge_sorted_entries(acc, inc, |com, red| analytics.merge(&red, com))
        })?,
        CombineStrategy::Sharded => {
            comm.allreduce_sharded(local, |com, red| analytics.merge(&red, com))?
        }
        CombineStrategy::Gossip => {
            let contributions = comm.allgather_alive(local)?;
            // Fold in ascending rank order so every survivor computes the
            // byte-identical merged map.
            let mut acc: Vec<(i64, A::Red)> = Vec::new();
            for (_rank, entries) in contributions {
                acc = smart_comm::merge_sorted_entries(acc, entries, |com, red| {
                    analytics.merge(&red, com)
                });
            }
            acc
        }
    };
    if measure {
        observer.global_combine_done(payload, comm.sent_bytes() - wire_before, sw.elapsed());
    }
    Ok(RedMap::from_entries(merged))
}

/// Merge `src` into `dst` with the analytics' merge operator
/// (lines 11–17: merge when the key exists, move otherwise).
pub(crate) fn merge_into<A: Analytics>(
    analytics: &A,
    mut src: RedMap<A::Red>,
    dst: &mut ComMap<A::Red>,
) {
    merge_from(analytics, &mut src, dst);
}

/// [`merge_into`], borrowing form: drains `src` in place so its table
/// allocation survives — the shell-reuse path through [`local_combine`].
pub(crate) fn merge_from<A: Analytics>(
    analytics: &A,
    src: &mut RedMap<A::Red>,
    dst: &mut ComMap<A::Red>,
) {
    // Pre-size: src arrives in hash order; letting dst grow through
    // smaller capacities turns that order quadratic (see RedMap::reserve).
    dst.reserve(src.len());
    for (key, obj) in src.drain_entries() {
        match dst.get_mut(key) {
            Some(com) => analytics.merge(&obj, com),
            None => {
                dst.insert(key, obj);
            }
        }
    }
}
