//! Scheduler arguments (paper Table 1, runtime function 1: `SchedArgs`).

/// Configuration for one Smart scheduler instance.
///
/// Mirrors the paper's `SchedArgs(num_threads, chunk_size, extra_data,
/// num_iters)` constructor, plus two reproduction-only switches used by the
/// evaluation harness:
///
/// * [`copy_input`](Self::with_copy_input) — time-sharing *with* an extra
///   input copy, the baseline Fig. 9 compares the zero-copy design against;
/// * [`disable_trigger`](Self::with_trigger_disabled) — ignore
///   [`crate::RedObj::trigger`], the baseline Fig. 11 compares the
///   early-emission optimization against.
#[derive(Debug, Clone)]
pub struct SchedArgs<Extra = ()> {
    /// Worker threads used for the reduction phase.
    pub num_threads: usize,
    /// Elements per unit chunk (e.g. the feature-vector length).
    pub chunk_size: usize,
    /// Extra analytics input (e.g. initial centroids).
    pub extra_data: Option<Extra>,
    /// Iterations over each input block (iterative analytics).
    pub num_iters: usize,
    /// Copy the input into a runtime-owned buffer before reducing.
    pub copy_input: bool,
    /// Ignore `RedObj::trigger` (disable early emission).
    pub disable_trigger: bool,
    /// First global element index of this rank's partition (window-based
    /// analytics key on global positions).
    pub partition_offset: usize,
    /// Total elements across all ranks' partitions; `0` means "infer from
    /// the local input length" (correct for single-rank runs).
    pub total_len: usize,
}

impl<Extra> SchedArgs<Extra> {
    /// Arguments with the paper's defaults: no extra data, one iteration.
    pub fn new(num_threads: usize, chunk_size: usize) -> Self {
        SchedArgs {
            num_threads,
            chunk_size,
            extra_data: None,
            num_iters: 1,
            copy_input: false,
            disable_trigger: false,
            partition_offset: 0,
            total_len: 0,
        }
    }

    /// Attach extra analytics input.
    pub fn with_extra(mut self, extra: Extra) -> Self {
        self.extra_data = Some(extra);
        self
    }

    /// Set the iteration count.
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.num_iters = iters;
        self
    }

    /// Enable the extra input copy (Fig. 9 baseline).
    pub fn with_copy_input(mut self, copy: bool) -> Self {
        self.copy_input = copy;
        self
    }

    /// Disable early emission (Fig. 11 baseline).
    pub fn with_trigger_disabled(mut self, disabled: bool) -> Self {
        self.disable_trigger = disabled;
        self
    }

    /// Declare this rank's slice of the global element space.
    pub fn with_partition(mut self, offset: usize, total_len: usize) -> Self {
        self.partition_offset = offset;
        self.total_len = total_len;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let a: SchedArgs = SchedArgs::new(8, 4);
        assert_eq!(a.num_threads, 8);
        assert_eq!(a.chunk_size, 4);
        assert!(a.extra_data.is_none());
        assert_eq!(a.num_iters, 1);
        assert!(!a.copy_input);
        assert!(!a.disable_trigger);
        assert_eq!((a.partition_offset, a.total_len), (0, 0));
    }

    #[test]
    fn builder_chains() {
        let a = SchedArgs::new(2, 3)
            .with_extra(vec![1.0f64])
            .with_iters(10)
            .with_copy_input(true)
            .with_trigger_disabled(true)
            .with_partition(100, 400);
        assert_eq!(a.extra_data.as_deref(), Some(&[1.0][..]));
        assert_eq!(a.num_iters, 10);
        assert!(a.copy_input && a.disable_trigger);
        assert_eq!((a.partition_offset, a.total_len), (100, 400));
    }
}
