//! Space-sharing mode (paper §3.2, Fig. 4).
//!
//! In space-sharing mode the cores of a node are split into two groups:
//! simulation keeps running on one group while analytics consumes completed
//! time-steps on the other. The decoupling point is a bounded
//! [`CircularBuffer`]: the simulation [`Feeder::feed`]s each time-step's
//! output (this mode *does* copy — that is its cost relative to time
//! sharing), blocking when the buffer is full, exactly like the paper's
//! producer/consumer circular buffer.

use crate::api::Analytics;
use crate::error::{SmartError, SmartResult};
use crate::scheduler::Scheduler;
use crate::step::{KeyMode, StepSpec};
use smart_comm::Communicator;
use smart_sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;

struct BufferState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue: the circular buffer between the simulation
/// task (producer) and the Smart analytics task (consumer).
pub struct CircularBuffer<T> {
    state: Mutex<BufferState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> CircularBuffer<T> {
    /// A buffer holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "circular buffer capacity must be positive");
        CircularBuffer {
            state: Mutex::new(BufferState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum items the buffer holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue an item, blocking while the buffer is full ("simulation
    /// program will be blocked until a cell becomes available").
    ///
    /// Returns `Err(StreamClosed)` if the buffer was closed.
    pub fn push(&self, item: T) -> SmartResult<()> {
        let mut state = self.state.lock();
        while state.queue.len() >= self.capacity && !state.closed {
            self.not_full.wait(&mut state);
        }
        if state.closed {
            return Err(SmartError::StreamClosed);
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue an item, blocking while the buffer is empty. Returns `None`
    /// once the buffer is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Close the buffer: producers fail fast, consumers drain then see
    /// end-of-stream.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Producer-side handle held by the simulation task.
pub struct Feeder<T> {
    buffer: Arc<CircularBuffer<Vec<T>>>,
}

impl<T> Clone for Feeder<T> {
    fn clone(&self) -> Self {
        Feeder { buffer: Arc::clone(&self.buffer) }
    }
}

impl<T: Clone> Feeder<T> {
    /// Copy one time-step's output partition into the buffer
    /// (paper Table 1, runtime function 7: `feed`).
    pub fn feed(&self, partition: &[T]) -> SmartResult<()> {
        self.buffer.push(partition.to_vec())
    }

    /// Move an owned time-step into the buffer (no extra copy when the
    /// producer can relinquish the allocation).
    pub fn feed_owned(&self, partition: Vec<T>) -> SmartResult<()> {
        self.buffer.push(partition)
    }

    /// Signal end-of-simulation.
    pub fn close(&self) {
        self.buffer.close();
    }
}

/// A Smart scheduler driven by a circular buffer — the analytics half of
/// space-sharing mode.
pub struct SpaceShared<A: Analytics>
where
    A::In: Clone,
{
    scheduler: Scheduler<A>,
    buffer: Arc<CircularBuffer<Vec<A::In>>>,
}

impl<A: Analytics> SpaceShared<A>
where
    A::In: Clone,
{
    /// Wrap `scheduler` with a circular buffer of `capacity` time-steps.
    pub fn new(scheduler: Scheduler<A>, capacity: usize) -> Self {
        SpaceShared { scheduler, buffer: Arc::new(CircularBuffer::new(capacity)) }
    }

    /// A producer handle for the simulation task.
    pub fn feeder(&self) -> Feeder<A::In> {
        Feeder { buffer: Arc::clone(&self.buffer) }
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &Scheduler<A> {
        &self.scheduler
    }

    /// Mutable access to the wrapped scheduler.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<A> {
        &mut self.scheduler
    }

    /// Pop one buffered time-step and execute it under `key_mode`,
    /// distributed when `comm` is supplied. Every `run*_step` variant is a
    /// one-line delegation onto this.
    fn step_inner(
        &mut self,
        key_mode: KeyMode,
        comm: Option<&mut Communicator>,
        out: &mut [A::Out],
    ) -> SmartResult<bool> {
        match self.buffer.pop() {
            Some(step) => {
                let offset = self.scheduler.args().partition_offset;
                self.scheduler.execute(
                    StepSpec::new(&[(offset, &step)]).with_key_mode(key_mode).with_comm(comm),
                    out,
                )?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drain the stream to completion, counting time-steps — the shared
    /// loop behind every `run*_to_end` variant.
    fn drain_inner(
        &mut self,
        key_mode: KeyMode,
        mut comm: Option<&mut Communicator>,
        out: &mut [A::Out],
    ) -> SmartResult<usize> {
        let mut steps = 0;
        while self.step_inner(key_mode, comm.as_deref_mut(), out)? {
            steps += 1;
        }
        Ok(steps)
    }

    /// Process the next buffered time-step with single-key analytics
    /// (paper Table 1, runtime function 8). Returns `Ok(false)` at
    /// end-of-stream.
    pub fn run_step(&mut self, out: &mut [A::Out]) -> SmartResult<bool> {
        self.step_inner(KeyMode::Single, None, out)
    }

    /// Process the next buffered time-step with multi-key analytics
    /// (paper Table 1, runtime function 9).
    pub fn run2_step(&mut self, out: &mut [A::Out]) -> SmartResult<bool> {
        self.step_inner(KeyMode::Multi, None, out)
    }

    /// Distributed variant of [`run_step`](Self::run_step).
    pub fn run_step_dist(
        &mut self,
        comm: &mut Communicator,
        out: &mut [A::Out],
    ) -> SmartResult<bool> {
        self.step_inner(KeyMode::Single, Some(comm), out)
    }

    /// Distributed variant of [`run2_step`](Self::run2_step).
    pub fn run2_step_dist(
        &mut self,
        comm: &mut Communicator,
        out: &mut [A::Out],
    ) -> SmartResult<bool> {
        self.step_inner(KeyMode::Multi, Some(comm), out)
    }

    /// Drain the stream to completion with single-key analytics, returning
    /// the number of time-steps processed.
    pub fn run_to_end(&mut self, out: &mut [A::Out]) -> SmartResult<usize> {
        self.drain_inner(KeyMode::Single, None, out)
    }

    /// Drain the stream to completion with multi-key analytics, returning
    /// the number of time-steps processed.
    pub fn run2_to_end(&mut self, out: &mut [A::Out]) -> SmartResult<usize> {
        self.drain_inner(KeyMode::Multi, None, out)
    }

    /// Distributed variant of [`run_to_end`](Self::run_to_end). Every rank
    /// must see the same number of time-steps, or the lagging ranks block
    /// in global combination.
    pub fn run_to_end_dist(
        &mut self,
        comm: &mut Communicator,
        out: &mut [A::Out],
    ) -> SmartResult<usize> {
        self.drain_inner(KeyMode::Single, Some(comm), out)
    }

    /// Distributed variant of [`run2_to_end`](Self::run2_to_end).
    pub fn run2_to_end_dist(
        &mut self,
        comm: &mut Communicator,
        out: &mut [A::Out],
    ) -> SmartResult<usize> {
        self.drain_inner(KeyMode::Multi, Some(comm), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Chunk, ComMap, Key, RedObj};
    use crate::args::SchedArgs;
    use serde::{Deserialize, Serialize};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn buffer_fifo_order() {
        let buf = CircularBuffer::new(4);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.pop(), Some(1));
        assert_eq!(buf.pop(), Some(2));
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: CircularBuffer<u8> = CircularBuffer::new(0);
    }

    #[test]
    fn push_blocks_when_full_until_pop() {
        let buf = Arc::new(CircularBuffer::new(1));
        buf.push(1).unwrap();
        let produced = Arc::new(AtomicUsize::new(0));
        let b2 = Arc::clone(&buf);
        let p2 = Arc::clone(&produced);
        let producer = std::thread::spawn(move || {
            b2.push(2).unwrap(); // blocks until the consumer pops
            p2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(produced.load(Ordering::SeqCst), 0, "producer should still be blocked");
        assert_eq!(buf.pop(), Some(1));
        producer.join().unwrap();
        assert_eq!(produced.load(Ordering::SeqCst), 1);
        assert_eq!(buf.pop(), Some(2));
    }

    #[test]
    fn close_wakes_producer_and_consumer() {
        let buf: Arc<CircularBuffer<u8>> = Arc::new(CircularBuffer::new(1));
        let b2 = Arc::clone(&buf);
        let consumer = std::thread::spawn(move || b2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        buf.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert!(matches!(buf.push(1), Err(SmartError::StreamClosed)));
    }

    #[test]
    fn close_lets_consumer_drain_first() {
        let buf = CircularBuffer::new(4);
        buf.push(7).unwrap();
        buf.close();
        assert_eq!(buf.pop(), Some(7));
        assert_eq!(buf.pop(), None);
    }

    // Minimal counting analytics for the SpaceShared tests.
    #[derive(Clone, Serialize, Deserialize, Default)]
    struct Count {
        n: u64,
    }
    impl RedObj for Count {}
    struct Counter;
    impl Analytics for Counter {
        type In = f64;
        type Red = Count;
        type Out = u64;
        type Extra = ();
        fn gen_key(&self, _c: &Chunk, _d: &[f64], _m: &ComMap<Count>) -> Key {
            0
        }
        fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, obj: &mut Option<Count>) {
            obj.get_or_insert_with(Count::default).n += 1;
        }
        fn merge(&self, red: &Count, com: &mut Count) {
            com.n += red.n;
        }
        fn convert(&self, obj: &Count, out: &mut u64) {
            *out = obj.n;
        }
    }

    #[test]
    fn producer_consumer_pipeline_counts_all_steps() {
        let pool = smart_pool::shared_pool(2).unwrap();
        let scheduler = Scheduler::new(Counter, SchedArgs::new(2, 1), pool).unwrap();
        let mut shared = SpaceShared::new(scheduler, 2);
        let feeder = shared.feeder();

        let steps = 10usize;
        let producer = std::thread::spawn(move || {
            for t in 0..steps {
                feeder.feed(&vec![t as f64; 64]).unwrap();
            }
            feeder.close();
        });

        let mut out = [0u64];
        let processed = shared.run_to_end(&mut out).unwrap();
        producer.join().unwrap();
        assert_eq!(processed, steps);
        assert_eq!(out[0], (steps * 64) as u64);
    }

    #[test]
    fn run_step_reports_end_of_stream() {
        let pool = smart_pool::shared_pool(1).unwrap();
        let scheduler = Scheduler::new(Counter, SchedArgs::new(1, 1), pool).unwrap();
        let mut shared = SpaceShared::new(scheduler, 1);
        let feeder = shared.feeder();
        feeder.feed_owned(vec![1.0, 2.0]).unwrap();
        feeder.close();
        let mut out = [0u64];
        assert!(shared.run_step(&mut out).unwrap());
        assert!(!shared.run_step(&mut out).unwrap());
        assert_eq!(out[0], 2);
    }
}
