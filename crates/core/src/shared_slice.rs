//! A write-disjoint shared slice for early emission.
//!
//! During the parallel reduction phase, a triggered reduction object is
//! converted straight into `out[key]` from a worker thread (Algorithm 2).
//! Different workers can trigger different keys concurrently, but never the
//! same key: a key triggers only when one split has accumulated *all* of its
//! contributions, and splits own disjoint contiguous element ranges, so at
//! most one split can ever complete a given key (see `DESIGN.md`). That
//! disjointness is exactly the contract `SharedSlice` encodes.

use std::cell::UnsafeCell;

/// A `&mut [T]` that may be written from multiple threads **at pairwise
/// distinct indices**.
///
/// Under `cfg(loom)` every write additionally registers with a per-index
/// access tracker, so the model checker turns any schedule in which two
/// threads touch the same index concurrently into a hard test failure — the
/// disjointness contract becomes machine-checked instead of comment-checked.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
    #[cfg(loom)]
    track: smart_sync::track::AccessSet,
}

// SAFETY: writes are restricted to distinct indices per the `write`
// contract, and the borrow of the underlying slice outlives the workers
// (the pool's fork-join blocks until they finish).
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
// SAFETY: moving the wrapper only moves the borrow; the `T: Send` bound
// keeps cross-thread writes of `T` values sound (same argument as `Sync`).
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap an exclusive slice for disjoint parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        #[cfg(loom)]
        let track = smart_sync::track::AccessSet::new(slice.len());
        // SAFETY: `&mut [T]` and `&[UnsafeCell<T>]` have identical layout,
        // and wrapping an exclusive borrow means no other alias exists.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice {
            data,
            #[cfg(loom)]
            track,
        }
    }

    /// Slice length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` concurrently; callers must
    /// guarantee all concurrent writes target pairwise distinct indices.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub unsafe fn write(&self, index: usize, value: T) {
        #[cfg(loom)]
        self.track.acquire_mut(index);
        // SAFETY: the caller guarantees no concurrent access to `index`, so
        // this is the only live reference to the slot.
        unsafe {
            // PANIC-FREE: out-of-bounds panics here are the documented "# Panics" contract.
            *self.data[index].get() = value;
        }
        #[cfg(loom)]
        self.track.release_mut(index);
    }

    /// Apply `f` to the slot at `index`.
    ///
    /// # Safety
    /// Same disjointness contract as [`write`](Self::write).
    pub unsafe fn with_mut<R>(&self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(loom)]
        self.track.acquire_mut(index);
        // SAFETY: as for `write` — the disjointness contract makes this the
        // sole reference to the slot for the duration of `f`.
        // PANIC-FREE: out-of-bounds panics follow write()'s documented "# Panics" contract.
        let r = unsafe { f(&mut *self.data[index].get()) };
        #[cfg(loom)]
        self.track.release_mut(index);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_at_their_indices() {
        let mut buf = vec![0u64; 8];
        {
            let shared = SharedSlice::new(&mut buf);
            assert_eq!(shared.len(), 8);
            assert!(!shared.is_empty());
            for i in 0..8 {
                // SAFETY: single thread, distinct indices.
                unsafe { shared.write(i, i as u64 * 3) };
            }
        }
        assert_eq!(buf, vec![0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    fn concurrent_disjoint_writes_are_correct() {
        let n = 10_000;
        let mut buf = vec![0usize; n];
        {
            let shared = SharedSlice::new(&mut buf);
            let shared = &shared;
            std::thread::scope(|s| {
                for t in 0..4 {
                    s.spawn(move || {
                        for i in (t..n).step_by(4) {
                            // SAFETY: threads write interleaved, disjoint indices.
                            unsafe { shared.write(i, i + 1) };
                        }
                    });
                }
            });
        }
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn with_mut_reads_previous_value() {
        let mut buf = vec![5u32; 3];
        let shared = SharedSlice::new(&mut buf);
        // SAFETY: single thread.
        let doubled = unsafe {
            shared.with_mut(1, |v| {
                *v *= 2;
                *v
            })
        };
        assert_eq!(doubled, 10);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut buf = vec![0u8; 2];
        let shared = SharedSlice::new(&mut buf);
        // SAFETY: bounds check fires before any write.
        unsafe { shared.write(2, 1) };
    }
}
