//! Chained Smart jobs — the paper's "MapReduce pipeline" deployment (§3.1):
//!
//! > "in many cases where the in-situ analytics tasks are deployed as a
//! > MapReduce pipeline, some preprocessing steps like smoothing, filtering,
//! > and reorganization, only have a local output on each partition. For
//! > this case, by turning off the global combination process, the user can
//! > retrieve the output directly in the parallel code region, and then
//! > feed the output to the next Smart job."
//!
//! [`Pipeline`] packages exactly that: stage one runs with global
//! combination **off** (its per-element output stays on the rank that
//! produced it), its output buffer becomes stage two's input, and stage two
//! combines globally as usual.

use crate::api::Analytics;
use crate::error::SmartResult;
use crate::scheduler::Scheduler;
use crate::step::StepSpec;
use smart_comm::Communicator;

pub use crate::step::KeyMode;

/// A two-stage in-situ pipeline: preprocessing (local) → analytics (global).
pub struct Pipeline<A, B>
where
    A: Analytics,
    B: Analytics<In = A::Out>,
{
    first: Scheduler<A>,
    second: Scheduler<B>,
    first_mode: KeyMode,
    second_mode: KeyMode,
    /// Stage one's per-rank output, reused across time-steps.
    intermediate: Vec<A::Out>,
    /// Slice of the intermediate buffer stage two consumes. Window-style
    /// preprocessing writes into a global-key-indexed buffer; each rank's
    /// meaningful slice is its own partition range.
    second_input: std::ops::Range<usize>,
}

impl<A, B> Pipeline<A, B>
where
    A: Analytics,
    A::In: Clone,
    A::Out: Clone + Default,
    B: Analytics<In = A::Out>,
{
    /// Build a pipeline. `first` is forced into local-only mode
    /// (`set_global_combination(false)`); `intermediate_len` sizes its
    /// per-rank output buffer (usually the partition length for
    /// element-wise preprocessing).
    pub fn new(
        mut first: Scheduler<A>,
        second: Scheduler<B>,
        first_mode: KeyMode,
        second_mode: KeyMode,
        intermediate_len: usize,
    ) -> Self {
        first.set_global_combination(false);
        Pipeline {
            first,
            second,
            first_mode,
            second_mode,
            intermediate: vec![A::Out::default(); intermediate_len],
            second_input: 0..intermediate_len,
        }
    }

    /// Restrict stage two's input to a slice of the intermediate buffer
    /// (a rank's own partition range when stage one keys globally).
    ///
    /// # Panics
    /// Panics if the range exceeds the intermediate buffer.
    pub fn with_second_input_range(mut self, range: std::ops::Range<usize>) -> Self {
        assert!(range.end <= self.intermediate.len(), "range exceeds intermediate buffer");
        self.second_input = range;
        self
    }

    /// The preprocessing stage.
    pub fn first(&self) -> &Scheduler<A> {
        &self.first
    }

    /// The analytics stage.
    pub fn second(&self) -> &Scheduler<B> {
        &self.second
    }

    /// Mutable access to the analytics stage (e.g. to read its combination
    /// map between steps).
    pub fn second_mut(&mut self) -> &mut Scheduler<B> {
        &mut self.second
    }

    /// Stage one's most recent per-rank output.
    pub fn intermediate(&self) -> &[A::Out] {
        &self.intermediate
    }

    /// Reset both stages' analytics state (window pipelines do this
    /// between independent time-steps).
    pub fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
    }

    /// Drive both stages through [`Scheduler::execute`]: stage one reduces
    /// into the intermediate buffer (global combination is off, so a `comm`
    /// handed to it is never used for combination), whose configured slice
    /// becomes stage two's input partition.
    fn drive(
        &mut self,
        mut comm: Option<&mut Communicator>,
        input: &[A::In],
        out: &mut [B::Out],
    ) -> SmartResult<()> {
        let offset = self.first.args().partition_offset;
        self.first.execute(
            StepSpec::new(&[(offset, input)])
                .with_key_mode(self.first_mode)
                .with_comm(comm.as_deref_mut()),
            &mut self.intermediate,
        )?;
        // PANIC-FREE: second_input is validated against intermediate.len() at construction.
        let stage2_in = &self.intermediate[self.second_input.clone()];
        let offset = self.second.args().partition_offset;
        self.second.execute(
            StepSpec::new(&[(offset, stage2_in)]).with_key_mode(self.second_mode).with_comm(comm),
            out,
        )
    }

    /// Run both stages on one block, single rank.
    pub fn run(&mut self, input: &[A::In], out: &mut [B::Out]) -> SmartResult<()> {
        self.drive(None, input, out)
    }

    /// Run both stages on one block: stage one stays rank-local, stage two
    /// combines across the cluster.
    pub fn run_dist(
        &mut self,
        comm: &mut Communicator,
        input: &[A::In],
        out: &mut [B::Out],
    ) -> SmartResult<()> {
        self.drive(Some(comm), input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Chunk, ComMap, Key, RedObj};
    use crate::args::SchedArgs;
    use serde::{Deserialize, Serialize};
    use smart_pool::shared_pool;

    /// Stage 1: per-element doubling, keyed by global position.
    #[derive(Clone, Serialize, Deserialize, Default)]
    struct Val {
        v: f64,
        done: bool,
    }
    impl RedObj for Val {
        fn trigger(&self) -> bool {
            self.done
        }
    }
    struct Double;
    impl Analytics for Double {
        type In = f64;
        type Red = Val;
        type Out = f64;
        type Extra = ();
        fn gen_keys(&self, c: &Chunk, _d: &[f64], _m: &ComMap<Val>, keys: &mut Vec<Key>) {
            // Local output: key by *local* position so each rank fills its
            // own buffer 0..len.
            keys.push(c.local_start as Key);
        }
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Val>) {
            *obj = Some(Val { v: 2.0 * d[c.local_start], done: true });
        }
        fn merge(&self, red: &Val, com: &mut Val) {
            com.v = red.v;
        }
        fn convert(&self, obj: &Val, out: &mut f64) {
            *out = obj.v;
        }
    }

    /// Stage 2: global sum.
    #[derive(Clone, Serialize, Deserialize, Default)]
    struct Sum {
        total: f64,
    }
    impl RedObj for Sum {}
    struct Total;
    impl Analytics for Total {
        type In = f64;
        type Red = Sum;
        type Out = f64;
        type Extra = ();
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Sum>) {
            obj.get_or_insert_with(Sum::default).total += d[c.local_start];
        }
        fn merge(&self, red: &Sum, com: &mut Sum) {
            com.total += red.total;
        }
        fn convert(&self, obj: &Sum, out: &mut f64) {
            *out = obj.total;
        }
    }

    fn pipeline(len: usize) -> Pipeline<Double, Total> {
        let p1 = Scheduler::new(Double, SchedArgs::new(2, 1), shared_pool(2).unwrap()).unwrap();
        let p2 = Scheduler::new(Total, SchedArgs::new(2, 1), shared_pool(2).unwrap()).unwrap();
        Pipeline::new(p1, p2, KeyMode::Multi, KeyMode::Single, len)
    }

    #[test]
    fn two_stage_local_pipeline() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut p = pipeline(data.len());
        let mut out = [0.0f64];
        p.run(&data, &mut out).unwrap();
        // Σ 2i for i in 0..100
        assert_eq!(out[0], 2.0 * (99.0 * 100.0 / 2.0));
        assert_eq!(p.intermediate()[3], 6.0);
    }

    #[test]
    fn distributed_pipeline_stage_one_stays_local() {
        let results = smart_comm::run_cluster(3, |mut comm| {
            let data = vec![(comm.rank() + 1) as f64; 10];
            let mut p = pipeline(data.len());
            let mut out = [0.0f64];
            p.run_dist(&mut comm, &data, &mut out).unwrap();
            (p.intermediate().to_vec(), out[0])
        });
        // Stage 1 outputs are rank-local (rank r sees only 2(r+1))...
        for (rank, (intermediate, _)) in results.iter().enumerate() {
            assert!(intermediate.iter().all(|&v| v == 2.0 * (rank + 1) as f64));
        }
        // ...but stage 2's sum is global and identical everywhere.
        let expected: f64 = (1..=3).map(|r| 2.0 * r as f64 * 10.0).sum();
        for (_, total) in &results {
            assert_eq!(*total, expected);
        }
    }

    #[test]
    fn pipeline_reset_clears_both_stages() {
        let data = vec![1.0; 4];
        let mut p = pipeline(data.len());
        let mut out = [0.0f64];
        p.run(&data, &mut out).unwrap();
        p.run(&data, &mut out).unwrap();
        // Without reset the sum accumulates across steps.
        assert_eq!(out[0], 16.0);
        p.reset();
        p.run(&data, &mut out).unwrap();
        assert_eq!(out[0], 8.0);
    }

    #[test]
    fn accessors_expose_stages() {
        let p = pipeline(4);
        assert_eq!(p.first().args().chunk_size, 1);
        assert_eq!(p.second().args().num_threads, 2);
    }
}
