//! The reduction phase — Algorithm 1 lines 7–10 plus the Algorithm 2
//! early-emission extension.
//!
//! One split per worker thread, each with a private reduction map: for
//! every unit chunk the analytics picks key(s) and folds the chunk into the
//! keyed reduction object in place — no intermediate key-value pair is ever
//! materialized. A triggered object ([`crate::RedObj::trigger`]) is
//! converted straight into the output through a write-disjoint
//! [`SharedSlice`] and erased, capping live objects at the window size.
//! The step's partitions run one after another over the same pool, feeding
//! a single local combination downstream ([`crate::combine`]).

use crate::api::{Analytics, Chunk, ComMap, Key, RedObj};
use crate::error::{SmartError, SmartResult};
use crate::observer::{PhaseObserver, Stopwatch};
use crate::redmap::RedMap;
use crate::shared_slice::SharedSlice;
use crate::step::KeyMode;
use smart_pool::{split_range, SharedPool};

/// Everything the reduction phase reads — borrowed from the scheduler for
/// the duration of one step.
pub(crate) struct ReduceCfg<'a, A: Analytics> {
    pub analytics: &'a A,
    /// The persistent combination map, read-only here: `gen_key(s)` may
    /// consult it, and distribution-on steps seed each reduction map from
    /// it (Algorithm 1 line 6).
    pub com_map: &'a ComMap<A::Red>,
    pub nthreads: usize,
    pub chunk_size: usize,
    /// Seed per-thread reduction maps with the combination map (iterative
    /// analytics reading state like k-means centroids).
    pub distribute: bool,
    pub key_mode: KeyMode,
    /// Early emission is live (trigger honoured and an output buffer
    /// exists).
    pub emission_enabled: bool,
    /// Observer gating: when false, workers never read the clock.
    pub measure: bool,
}

/// Reduce every partition of the step on the pool, returning the
/// per-thread partial maps (one per worker per partition, in partition
/// then thread order — the deterministic merge order local combination
/// relies on). Worker busy times report through `observer`.
pub(crate) fn reduce_parts<A: Analytics>(
    cfg: &ReduceCfg<'_, A>,
    pool: &SharedPool,
    parts: &[(usize, &[A::In])],
    out: &SharedSlice<'_, A::Out>,
    observer: &mut dyn PhaseObserver,
) -> SmartResult<Vec<RedMap<A::Red>>> {
    let mut partial_maps: Vec<RedMap<A::Red>> = Vec::with_capacity(cfg.nthreads * parts.len());
    for &(offset, data) in parts {
        let worker = |tid: usize| reduce_split(cfg, tid, offset, data, out);
        let partials = pool.try_run_on_workers(cfg.nthreads, worker)?;
        for (tid, partial) in partials.into_iter().enumerate() {
            let (partial, busy) = partial?;
            if cfg.measure {
                observer.split_done(tid, busy);
            }
            partial_maps.push(partial);
        }
    }
    Ok(partial_maps)
}

/// One worker's split of one partition: reduce chunk by chunk into a
/// private map, emitting triggered objects early.
fn reduce_split<A: Analytics>(
    cfg: &ReduceCfg<'_, A>,
    tid: usize,
    offset: usize,
    data: &[A::In],
    out: &SharedSlice<'_, A::Out>,
) -> SmartResult<(RedMap<A::Red>, std::time::Duration)> {
    let sw = Stopwatch::new(cfg.measure);
    let chunk_size = cfg.chunk_size;
    let analytics = cfg.analytics;
    let range = split_range(data.len(), cfg.nthreads, tid, chunk_size);
    let mut red: RedMap<A::Red> = if cfg.distribute { cfg.com_map.clone() } else { RedMap::new() };
    let mut keys: Vec<Key> = Vec::with_capacity(8);
    let mut cursor = range.start;
    while cursor + chunk_size <= range.end {
        let chunk = Chunk { local_start: cursor, global_start: offset + cursor, len: chunk_size };
        keys.clear();
        match cfg.key_mode {
            KeyMode::Multi => analytics.gen_keys(&chunk, data, cfg.com_map, &mut keys),
            KeyMode::Single => keys.push(analytics.gen_key(&chunk, data, cfg.com_map)),
        }
        for &key in &keys {
            let slot = red.slot_mut(key);
            analytics.accumulate(&chunk, data, key, slot);
            let Some(obj) = slot.as_ref() else {
                return Err(SmartError::EmptyAccumulate { key });
            };
            if cfg.emission_enabled && obj.trigger() {
                let idx = checked_index(key, out.len())?;
                // SAFETY: splits own disjoint contiguous element ranges, so
                // only the split holding *all* of a key's contributions can
                // trigger it — one writer per index (see shared_slice docs).
                unsafe { out.with_mut(idx, |o| analytics.convert(obj, o)) };
                red.remove(key);
            }
        }
        cursor += chunk_size;
    }
    Ok((red, sw.elapsed()))
}

/// Algorithm 1 lines 20–23: convert the combination map's remaining
/// reduction objects into the output buffer. Runs on the driver thread
/// after the parallel phase.
pub(crate) fn convert_remaining<A: Analytics>(
    analytics: &A,
    com_map: &ComMap<A::Red>,
    out: &SharedSlice<'_, A::Out>,
) -> SmartResult<()> {
    for (key, obj) in com_map.iter() {
        let idx = checked_index(key, out.len())?;
        // SAFETY: the parallel phase is over; this thread is the only
        // writer.
        unsafe { out.with_mut(idx, |o| analytics.convert(obj, o)) };
    }
    Ok(())
}

/// Map a key onto an output index, rejecting keys outside the buffer.
fn checked_index(key: Key, out_len: usize) -> SmartResult<usize> {
    usize::try_from(key)
        .ok()
        .filter(|&i| i < out_len)
        .ok_or(SmartError::KeyOutOfRange { key, out_len })
}
