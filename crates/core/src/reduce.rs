//! The reduction phase — Algorithm 1 lines 7–10 plus the Algorithm 2
//! early-emission extension.
//!
//! One split per worker thread, each with a private reduction map: for
//! every unit chunk the analytics picks key(s) and folds the chunk into the
//! keyed reduction object in place — no intermediate key-value pair is ever
//! materialized. A triggered object ([`crate::RedObj::trigger`]) is
//! converted straight into the output through a write-disjoint
//! [`SharedSlice`] and erased, capping live objects at the window size.
//! The step's partitions run one after another over the same pool, feeding
//! a single local combination downstream ([`crate::combine`]).
//!
//! ## The batched hot loop
//!
//! Workers hand the analytics whole [`Batch`]es of unit chunks through
//! [`Analytics::reduce_batch`] instead of calling `gen_key`/`accumulate`
//! chunk by chunk from the runtime. The default implementation walks the
//! batch exactly like the classic loop (via [`BatchSink::reduce_default`]),
//! so analytics that don't care see identical behaviour; analytics that do
//! care override it with an explicit kernel — SIMD bucket search for
//! histogram, hoisted-slot folds for single-key stats — that must produce
//! bit-identical reduction maps (enforced by the equivalence suite in
//! `smart-analytics`).
//!
//! ## Per-thread map reuse
//!
//! Workers no longer allocate a fresh reduction map per split. The
//! scheduler owns one map *shell* per (partition, thread) slot and lends
//! them out each step through a write-disjoint [`SharedSlice`];
//! [`prepare_shells`] clears (never frees) each shell, so a steady-state
//! step performs zero map allocations and the previous step's high-water
//! capacity is the pre-size. Shells are born dense when the analytics
//! declares a [`Analytics::key_bound`] (see [`crate::RedMap::with_key_bound`]).

use crate::api::{Analytics, Chunk, ComMap, Key, RedObj};
use crate::error::{SmartError, SmartResult};
use crate::observer::{PhaseObserver, Stopwatch};
use crate::redmap::RedMap;
use crate::shared_slice::SharedSlice;
use crate::spill::{self, SpillPlan};
use crate::step::KeyMode;
use smart_pool::{split_range, SharedPool};
use std::time::Duration;

/// Unit chunks handed to one [`Analytics::reduce_batch`] call. Large enough
/// to amortize the call and let kernels stream, small enough that early
/// emission still drains triggered objects promptly.
const BATCH_CHUNKS: usize = 4096;

/// Everything the reduction phase reads — borrowed from the scheduler for
/// the duration of one step.
pub(crate) struct ReduceCfg<'a, A: Analytics> {
    pub analytics: &'a A,
    /// The persistent combination map, read-only here: `gen_key(s)` may
    /// consult it, and distribution-on steps seed each reduction map from
    /// it (Algorithm 1 line 6).
    pub com_map: &'a ComMap<A::Red>,
    pub nthreads: usize,
    pub chunk_size: usize,
    /// Seed per-thread reduction maps with the combination map (iterative
    /// analytics reading state like k-means centroids).
    pub distribute: bool,
    pub key_mode: KeyMode,
    /// Early emission is live (trigger honoured and an output buffer
    /// exists).
    pub emission_enabled: bool,
    /// Observer gating: when false, workers never read the clock.
    pub measure: bool,
    /// Force the default per-chunk walk even when the analytics provides a
    /// batched kernel (ablation / debugging knob).
    pub scalar_reduce: bool,
    /// Honour [`Analytics::key_bound`] and give shells the dense
    /// direct-indexed backend.
    pub dense_maps: bool,
    /// When set, a worker shell crossing the plan's per-shell byte
    /// threshold is drained into a sorted on-disk run at the next batch
    /// boundary (see [`crate::spill`]).
    pub spill: Option<SpillPlan<'a>>,
}

/// What one worker split reports back: its busy time, plus what it
/// spilled (all zero when spilling is off or the shell stayed under
/// budget).
pub(crate) struct SplitReport {
    pub busy: Duration,
    pub runs: usize,
    pub bytes: u64,
    pub spill_busy: Duration,
}

/// Aggregate spill activity of one [`reduce_parts`] call, reported to the
/// observer once per iteration by the scheduler.
#[derive(Default)]
pub(crate) struct SpillTally {
    pub runs: usize,
    pub bytes: u64,
    pub busy: Duration,
}

/// A run of consecutive whole unit chunks inside one worker's split —
/// the unit of work handed to [`Analytics::reduce_batch`].
#[derive(Debug, Clone, Copy)]
pub struct Batch {
    /// First element of the batch within the local partition slice.
    pub local_start: usize,
    /// First element of the batch within the global dataset.
    pub global_start: usize,
    /// Elements per unit chunk.
    pub chunk_size: usize,
    /// Whole chunks in the batch.
    pub chunks: usize,
}

impl Batch {
    /// The `i`-th unit chunk of the batch.
    #[inline]
    pub fn chunk_at(&self, i: usize) -> Chunk {
        let off = i * self.chunk_size;
        Chunk {
            local_start: self.local_start + off,
            global_start: self.global_start + off,
            len: self.chunk_size,
        }
    }

    /// Total elements covered by the batch's whole chunks.
    #[inline]
    pub fn elements(&self) -> usize {
        self.chunks * self.chunk_size
    }
}

/// The runtime side of a [`Analytics::reduce_batch`] call: the worker's
/// reduction map, the read-only combination map, the early-emission output
/// channel, and reusable scratch. Kernels fold chunks in through
/// [`accumulate_keyed`](Self::accumulate_keyed) (which preserves the exact
/// slot/trigger semantics of the classic loop) or fall back to
/// [`reduce_default`](Self::reduce_default) for shapes they don't handle.
///
/// Errors (`EmptyAccumulate`, `KeyOutOfRange`) are recorded internally —
/// the first one wins — and surfaced by the runtime after the batch
/// returns, so kernel signatures stay `()`-returning and branch-free.
pub struct BatchSink<'s, 'out, A: Analytics> {
    com: &'s ComMap<A::Red>,
    red: &'s mut RedMap<A::Red>,
    out: &'s SharedSlice<'out, A::Out>,
    key_mode: KeyMode,
    emission_enabled: bool,
    /// Scratch for `gen_keys` in the default walk.
    keys: Vec<Key>,
    /// Reusable numeric scratch for kernels (e.g. flattened k-means
    /// centroids) — lets kernel bodies stay heap-allocation-free, which
    /// `cargo xtask lint` enforces.
    scratch: Vec<f64>,
    error: Option<SmartError>,
}

impl<'s, 'out, A: Analytics> BatchSink<'s, 'out, A> {
    fn new(
        com: &'s ComMap<A::Red>,
        red: &'s mut RedMap<A::Red>,
        out: &'s SharedSlice<'out, A::Out>,
        key_mode: KeyMode,
        emission_enabled: bool,
    ) -> Self {
        BatchSink {
            com,
            red,
            out,
            key_mode,
            emission_enabled,
            keys: Vec::with_capacity(8),
            scratch: Vec::new(),
            error: None,
        }
    }

    /// The persistent combination map (read-only; `gen_key` may consult it).
    #[inline]
    pub fn com_map(&self) -> &ComMap<A::Red> {
        self.com
    }

    /// The key mode of the running step. Kernels specialised for one mode
    /// must check this and fall back to
    /// [`reduce_default`](Self::reduce_default) for the other.
    #[inline]
    pub fn key_mode(&self) -> KeyMode {
        self.key_mode
    }

    /// Take the reusable `f64` scratch buffer (cleared). Return it with
    /// [`restore_scratch`](Self::restore_scratch) so the allocation
    /// survives to the next batch.
    #[inline]
    pub fn take_scratch(&mut self) -> Vec<f64> {
        let mut s = std::mem::take(&mut self.scratch);
        s.clear();
        s
    }

    /// Hand the scratch buffer back after [`take_scratch`](Self::take_scratch).
    #[inline]
    pub fn restore_scratch(&mut self, scratch: Vec<f64>) {
        self.scratch = scratch;
    }

    /// Fold `chunk` into the reduction object for `key` — the exact
    /// slot/accumulate/trigger sequence of the classic per-chunk loop.
    #[inline]
    pub fn accumulate_keyed(&mut self, analytics: &A, chunk: &Chunk, data: &[A::In], key: Key) {
        let slot = self.red.slot_mut(key);
        analytics.accumulate(chunk, data, key, slot);
        let Some(obj) = slot.as_ref() else {
            self.record(SmartError::EmptyAccumulate { key });
            return;
        };
        if self.emission_enabled && obj.trigger() {
            match checked_index(key, self.out.len()) {
                Ok(idx) => {
                    // SAFETY: splits own disjoint contiguous element ranges,
                    // so only the split holding *all* of a key's
                    // contributions can trigger it — one writer per index
                    // (see shared_slice docs).
                    unsafe { self.out.with_mut(idx, |o| analytics.convert(obj, o)) };
                    self.red.remove(key);
                }
                Err(e) => self.record(e),
            }
        }
    }

    /// The generic batch walk: per chunk, `gen_key`/`gen_keys` then
    /// [`accumulate_keyed`](Self::accumulate_keyed). This is what the
    /// default [`Analytics::reduce_batch`] runs, and what explicit kernels
    /// fall back to for shapes they don't specialise.
    pub fn reduce_default(&mut self, analytics: &A, data: &[A::In], batch: &Batch) {
        for i in 0..batch.chunks {
            let chunk = batch.chunk_at(i);
            let mut keys = std::mem::take(&mut self.keys);
            keys.clear();
            match self.key_mode {
                KeyMode::Multi => analytics.gen_keys(&chunk, data, self.com, &mut keys),
                KeyMode::Single => keys.push(analytics.gen_key(&chunk, data, self.com)),
            }
            for &key in &keys {
                self.accumulate_keyed(analytics, &chunk, data, key);
            }
            self.keys = keys;
        }
    }

    #[inline]
    fn record(&mut self, e: SmartError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn take_error(&mut self) -> SmartResult<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Bytes currently held by the worker's reduction map — the spill
    /// threshold check, run between batches.
    fn red_bytes(&self) -> usize {
        self.red.retained_bytes()
    }

    /// Drain the worker's reduction map for a spill, *freeing* its table
    /// (a drained-but-retained table would keep the shell over threshold
    /// and re-trip the check every batch).
    fn drain_red(&mut self) -> Vec<(Key, A::Red)> {
        let entries = self.red.drain_entries();
        *self.red = RedMap::new();
        entries
    }
}

/// Build a fresh map for one shell slot: dense when the analytics declares
/// a key bound (and the knob allows it), hash otherwise.
fn make_map<A: Analytics>(cfg: &ReduceCfg<'_, A>) -> RedMap<A::Red> {
    match cfg.dense_maps.then(|| cfg.analytics.key_bound()).flatten() {
        Some(bound) => RedMap::with_key_bound(bound),
        None => RedMap::new(),
    }
}

/// Bring the scheduler's shell pool up to `parts * nthreads` slots and
/// ready every shell for this step: allocations (and the dense/hash choice)
/// from previous steps are reused — clear, don't free — and
/// distribution-on steps are seeded from the combination map in place.
pub(crate) fn prepare_shells<A: Analytics>(
    cfg: &ReduceCfg<'_, A>,
    nparts: usize,
    shells: &mut Vec<RedMap<A::Red>>,
) {
    let want = nparts * cfg.nthreads;
    shells.truncate(want);
    while shells.len() < want {
        shells.push(make_map(cfg));
    }
    for shell in shells.iter_mut() {
        if shell.capacity() == 0 {
            *shell = make_map(cfg);
        } else {
            shell.clear();
        }
        if cfg.distribute {
            // Algorithm 1 line 6 — seed the thread map with the shared
            // state (e.g. current centroids), reusing the retained table.
            shell.reserve(cfg.com_map.len());
            for (k, v) in cfg.com_map.iter() {
                shell.insert(k, v.clone());
            }
        }
    }
}

/// Reduce every partition of the step on the pool, filling the lent
/// per-thread shells (one per worker per partition, in partition then
/// thread order — the deterministic merge order local combination relies
/// on). Worker busy times report through `observer`; spill activity is
/// tallied and returned for the scheduler to report once per iteration.
pub(crate) fn reduce_parts<A: Analytics>(
    cfg: &ReduceCfg<'_, A>,
    pool: &SharedPool,
    parts: &[(usize, &[A::In])],
    out: &SharedSlice<'_, A::Out>,
    shells: &mut Vec<RedMap<A::Red>>,
    observer: &mut dyn PhaseObserver,
) -> SmartResult<SpillTally> {
    prepare_shells(cfg, parts.len(), shells);
    let mut tally = SpillTally::default();
    for (part_idx, &(offset, data)) in parts.iter().enumerate() {
        let base = part_idx * cfg.nthreads;
        // PANIC-FREE: prepare_shells sized shells to parts.len() × nthreads, covering every window.
        let lent = SharedSlice::new(&mut shells[base..base + cfg.nthreads]);
        let worker = |tid: usize| {
            // SAFETY: worker `tid` touches only shell index `tid` of this
            // partition's lent window — indices are disjoint across the
            // scoped workers (see shared_slice docs).
            unsafe {
                lent.with_mut(tid, |shell| {
                    reduce_split(cfg, part_idx, tid, offset, data, out, shell)
                })
            }
        };
        let reports = pool.try_run_on_workers(cfg.nthreads, worker)?;
        for (tid, report) in reports.into_iter().enumerate() {
            let report = report?;
            if cfg.measure {
                observer.split_done(tid, report.busy);
            }
            tally.runs += report.runs;
            tally.bytes += report.bytes;
            tally.busy += report.spill_busy;
        }
    }
    Ok(tally)
}

/// One worker's split of one partition: reduce batch by batch into the
/// lent shell, emitting triggered objects early and draining the shell
/// into sorted runs whenever it crosses the spill threshold.
fn reduce_split<A: Analytics>(
    cfg: &ReduceCfg<'_, A>,
    part: usize,
    tid: usize,
    offset: usize,
    data: &[A::In],
    out: &SharedSlice<'_, A::Out>,
    red: &mut RedMap<A::Red>,
) -> SmartResult<SplitReport> {
    let sw = Stopwatch::new(cfg.measure);
    let chunk_size = cfg.chunk_size;
    let analytics = cfg.analytics;
    let range = split_range(data.len(), cfg.nthreads, tid, chunk_size);
    let whole_chunks = (range.end - range.start) / chunk_size;
    let mut sink = BatchSink::new(cfg.com_map, red, out, cfg.key_mode, cfg.emission_enabled);
    let mut report =
        SplitReport { busy: Duration::ZERO, runs: 0, bytes: 0, spill_busy: Duration::ZERO };
    let mut seq = 0u64;
    let mut done = 0usize;
    while done < whole_chunks {
        let chunks = (whole_chunks - done).min(BATCH_CHUNKS);
        let local_start = range.start + done * chunk_size;
        let batch = Batch { local_start, global_start: offset + local_start, chunk_size, chunks };
        if cfg.scalar_reduce {
            sink.reduce_default(analytics, data, &batch);
        } else {
            analytics.reduce_batch(data, &batch, &mut sink);
        }
        sink.take_error()?;
        done += chunks;
        if let Some(plan) = &cfg.spill {
            if sink.red_bytes() > plan.shell_budget {
                let spill_sw = Stopwatch::new(cfg.measure);
                let mut entries = sink.drain_red();
                entries.sort_unstable_by_key(|&(k, _)| k);
                seq += 1;
                let name = spill::run_name(plan.epoch, part, tid, seq);
                let summary = spill::write_run(plan.store, &name, &entries)?;
                report.runs += 1;
                report.bytes += summary.file_len;
                report.spill_busy += spill_sw.elapsed();
            }
        }
    }
    report.busy = sw.elapsed();
    Ok(report)
}

/// Algorithm 1 lines 20–23: convert the combination map's remaining
/// reduction objects into the output buffer. Runs on the driver thread
/// after the parallel phase.
pub(crate) fn convert_remaining<A: Analytics>(
    analytics: &A,
    com_map: &ComMap<A::Red>,
    out: &SharedSlice<'_, A::Out>,
) -> SmartResult<()> {
    for (key, obj) in com_map.iter() {
        let idx = checked_index(key, out.len())?;
        // SAFETY: the parallel phase is over; this thread is the only
        // writer.
        unsafe { out.with_mut(idx, |o| analytics.convert(obj, o)) };
    }
    Ok(())
}

/// Map a key onto an output index, rejecting keys outside the buffer.
pub(crate) fn checked_index(key: Key, out_len: usize) -> SmartResult<usize> {
    usize::try_from(key)
        .ok()
        .filter(|&i| i < out_len)
        .ok_or(SmartError::KeyOutOfRange { key, out_len })
}
